"""The Profit scheduler (Section 4.3, Theorem 4.11).

Profit is the paper's strongest clairvoyant scheduler.  It runs in
iterations anchored by **flag jobs**:

* When a pending job hits its starting deadline it becomes a flag job and
  starts immediately (ties broken towards the *longest* processing
  length; per the paper's footnote 3 the shorter tied jobs are then
  profitable to the flag and start in the same iteration).
* At the flag's start time ``d(Jf)``, every pending job ``J`` with
  ``p(J) <= k·p(Jf)`` starts alongside it — at least ``1/k`` of its active
  interval is guaranteed to overlap the flag's.
* While a flag ``Jf`` runs, an arriving job ``J`` with
  ``p(J) <= k·(d(Jf) + p(Jf) - a(J))`` starts immediately — again at
  least a ``1/k`` fraction of its interval overlaps the flag's.

Jobs satisfying either condition are *profitable* to the flag.  Several
flags may run concurrently (a non-profitable pending job can hit its own
deadline during another flag's run, opening a new iteration); an arrival
profitable to *any* active flag starts at once.

Theorem 4.11 proves Profit is ``(2k + 2 + 1/(k-1))``-competitive,
minimised to ``4 + 2√2 ≈ 6.83`` at ``k = 1 + √2/2``.

The scheduler records flag jobs (and each job's attributed flag) so the
analysis module can rebuild the flag forest of Lemma 4.7 and verify
Lemmas 4.6–4.9 empirically.
"""

from __future__ import annotations

import math
from typing import ClassVar

from ..core.engine import JobView, SchedulerContext
from .base import OnlineScheduler

__all__ = ["Profit", "OPTIMAL_PROFIT_K"]

#: The k minimising the Theorem 4.11 bound ``2k + 2 + 1/(k-1)``.
OPTIMAL_PROFIT_K = 1.0 + math.sqrt(2.0) / 2.0


class _ActiveFlag:
    """A flag job currently running: ``[start, end)`` with its length."""

    __slots__ = ("job_id", "start", "end", "length")

    def __init__(self, job_id: int, start: float, length: float) -> None:
        self.job_id = job_id
        self.start = start
        self.end = start + length
        self.length = length


class Profit(OnlineScheduler):
    """Profit: start jobs only when at least ``1/k`` of their run overlaps
    a flag job's run (or when they become flags themselves).

    Parameters
    ----------
    k:
        The profitability parameter (``> 1``).  Defaults to the
        bound-minimising ``1 + √2/2``.
    """

    name: ClassVar[str] = "profit"
    requires_clairvoyance: ClassVar[bool] = True

    def __init__(self, k: float = OPTIMAL_PROFIT_K) -> None:
        super().__init__()
        if k <= 1:
            raise ValueError(f"k must exceed 1, got {k}")
        self.k = k
        self._active_flags: dict[int, _ActiveFlag] = {}
        self._pending: dict[int, JobView] = {}
        #: job id -> flag job id it was attributed to (flags map to themselves)
        self.attribution: dict[int, int] = {}

    def clone(self) -> "Profit":
        return Profit(k=self.k)

    def reset(self) -> None:
        super().reset()
        self._active_flags = {}
        self._pending = {}
        self.attribution = {}

    # -- profitability tests ---------------------------------------------------
    def _profitable_flag_for_arrival(self, job: JobView, now: float) -> int | None:
        """An active flag ``f`` with ``p(J) <= k·(end_f - a(J))``, if any.

        The arrival time equals ``now`` when this is called from
        ``on_arrival``.  Deterministically prefers the flag with the
        latest end (most slack), breaking ties by id.
        """
        best: _ActiveFlag | None = None
        for flag in self._active_flags.values():
            if job.length <= self.k * (flag.end - now):
                if best is None or (flag.end, -flag.job_id) > (best.end, -best.job_id):
                    best = flag
        return best.job_id if best is not None else None

    # -- hooks -------------------------------------------------------------------
    def on_arrival(self, ctx: SchedulerContext, job: JobView) -> None:
        flag_id = self._profitable_flag_for_arrival(job, ctx.now)
        if flag_id is not None:
            self.attribution[job.id] = flag_id
            if self.obs.enabled:
                flag = self._active_flags[flag_id]
                self.obs.decision(
                    "profit-gain",
                    job=job.id,
                    t=ctx.now,
                    scheduler=self._obs_scheduler,
                    flag=flag_id,
                    test="arrival",
                    length=job.length,
                    slack=flag.end - ctx.now,
                    k=self.k,
                )
            ctx.start(job.id)
        else:
            self._pending[job.id] = job

    def on_deadline(self, ctx: SchedulerContext, job: JobView) -> None:
        # ``job`` pends and has hit its starting deadline.  Among pending
        # jobs sharing this deadline the paper designates the longest as
        # the flag; the others are then profitable to it (p <= p_f < k·p_f)
        # and start in the same iteration either way, so selecting the
        # longest tied job preserves the paper's flag-job set exactly.
        now = ctx.now
        tied = [
            j
            for j in self._pending.values()
            if j.deadline == job.deadline
        ]
        flag_job = max(tied, key=lambda j: (j.length, j.id))
        self._pending.pop(flag_job.id, None)
        self.flag_job_ids.append(flag_job.id)
        self.attribution[flag_job.id] = flag_job.id
        flag = _ActiveFlag(flag_job.id, now, flag_job.length)
        self._active_flags[flag_job.id] = flag
        obs = self.obs
        if obs.enabled:
            obs.decision(
                "deadline-flag",
                job=flag_job.id,
                t=now,
                scheduler=self._obs_scheduler,
                deadline=flag_job.deadline,
                length=flag.length,
            )
        ctx.start(flag_job.id)

        # Start every pending job profitable to the new flag.
        threshold = self.k * flag.length
        for other in list(self._pending.values()):
            if other.length <= threshold:
                del self._pending[other.id]
                self.attribution[other.id] = flag.job_id
                if obs.enabled:
                    obs.decision(
                        "profit-gain",
                        job=other.id,
                        t=now,
                        scheduler=self._obs_scheduler,
                        flag=flag.job_id,
                        test="flag-start",
                        length=other.length,
                        threshold=threshold,
                        k=self.k,
                    )
                ctx.start(other.id)

    def on_completion(self, ctx: SchedulerContext, job: JobView) -> None:
        self._active_flags.pop(job.id, None)

    # -- inspection ---------------------------------------------------------------
    @property
    def num_pending(self) -> int:
        return len(self._pending)

    def describe(self) -> str:
        return f"Profit (k={self.k:.4f})"
