"""The Eager baseline: start every job immediately at its arrival.

Section 3.2 of the paper observes that Eager "cannot achieve any bounded
competitive ratio even for any given μ, because it does not make use of
any laxity to boost the concurrency of job execution."  Experiment E7
demonstrates this empirically: on a staircase family of instances Eager's
span ratio grows linearly with the number of jobs at fixed μ.

Eager is also the unique *rigid-job* scheduler: with zero laxity every
scheduler degenerates to it, which is the regime prior busy-time work
([22] in the paper) assumed.
"""

from __future__ import annotations

from typing import ClassVar

from ..core.engine import JobView, SchedulerContext
from .base import OnlineScheduler

__all__ = ["Eager"]


class Eager(OnlineScheduler):
    """Start each job the moment it arrives."""

    name: ClassVar[str] = "eager"
    requires_clairvoyance: ClassVar[bool] = False

    def on_arrival(self, ctx: SchedulerContext, job: JobView) -> None:
        ctx.start(job.id)

    def describe(self) -> str:
        return "Eager (start at arrival)"
