"""WaitScale: the generalized wait-proportional-to-length family.

An ablation axis for the Doubler reconstruction (experiment E13): each
job waits ``β · p(J)`` before starting (clipped to its window),

    start(J) = min(d(J), a(J) + β·p(J)),

optionally piggybacking for free whenever its whole run would fall
inside already-committed busy time.  ``β = 1`` with piggybacking is
exactly :class:`~repro.schedulers.doubler.Doubler`; ``β = 0`` is Eager;
``β → ∞`` approaches Lazy.  Sweeping β exposes the trade-off the
rent-or-buy argument balances: waiting longer creates more overlap
opportunities but pays more serialised delay.
"""

from __future__ import annotations

from typing import ClassVar

from ..core.engine import JobView, SchedulerContext
from ..core.intervals import Interval, IntervalUnion
from .base import OnlineScheduler

__all__ = ["WaitScale"]


class WaitScale(OnlineScheduler):
    """Start each job after waiting ``β`` times its own length.

    Parameters
    ----------
    beta:
        Waiting factor (``>= 0``).
    piggyback:
        When true (default), a job whose full run is already covered by
        committed busy time starts immediately (zero added span).
    """

    name: ClassVar[str] = "wait-scale"
    requires_clairvoyance: ClassVar[bool] = True

    def __init__(self, beta: float = 1.0, piggyback: bool = True) -> None:
        super().__init__()
        if beta < 0:
            raise ValueError(f"beta must be non-negative, got {beta}")
        self.beta = beta
        self.piggyback = piggyback
        self._committed = IntervalUnion()

    def clone(self) -> "WaitScale":
        return WaitScale(beta=self.beta, piggyback=self.piggyback)

    def reset(self) -> None:
        super().reset()
        self._committed = IntervalUnion()

    def _covered(self, start: float, length: float) -> bool:
        iv = Interval(start, start + length)
        return self._committed.intersection_length(iv) >= length - 1e-12

    def _start(self, ctx: SchedulerContext, job: JobView) -> None:
        self._committed = self._committed.insert(
            Interval(ctx.now, ctx.now + job.length)
        )
        ctx.start(job.id)

    def on_arrival(self, ctx: SchedulerContext, job: JobView) -> None:
        if self.piggyback and self._covered(ctx.now, job.length):
            self._start(ctx, job)
            return
        wake = min(job.deadline, job.arrival + self.beta * job.length)
        if wake <= ctx.now:
            self._start(ctx, job)
        else:
            ctx.set_timer(wake, job.id)

    def on_timer(self, ctx: SchedulerContext, tag: int) -> None:
        if ctx.is_started(tag):
            return
        for job in ctx.pending():
            if job.id == tag:
                self._start(ctx, job)
                return

    def on_deadline(self, ctx: SchedulerContext, job: JobView) -> None:
        # Deadline events outrank equal-time timers; start now.
        self._start(ctx, job)

    def describe(self) -> str:
        return (
            f"WaitScale (β={self.beta:g}, "
            f"piggyback={'on' if self.piggyback else 'off'})"
        )
