"""Scheduler base class and shared behaviour.

Every online scheduler in the library derives from
:class:`OnlineScheduler`, which provides no-op default hooks, a fresh
:meth:`clone` for reuse across simulations (schedulers are stateful — one
object per run), and declarative metadata (name, information-model
requirement) used by the registry, the CLI, and the benchmark harness.

Schedulers that designate *flag jobs* (Batch, Batch+, CDB, Profit) record
them in ``self.flag_job_ids`` in designation order; the analysis module
consumes this to verify the paper's structural lemmas.
"""

from __future__ import annotations

import copy
from typing import Any, ClassVar

from ..core.engine import JobView, SchedulerContext
from ..obs.recorder import NULL_RECORDER, Recorder

__all__ = ["OnlineScheduler"]


class OnlineScheduler:
    """Base class for online FJS schedulers.

    Class attributes
    ----------------
    name:
        Short registry identifier (e.g. ``"batch+"``).
    requires_clairvoyance:
        ``True`` for schedulers that read ``job.length`` at arrival (CDB,
        Profit, Doubler); the simulator must then run with
        ``clairvoyant=True``.
    """

    name: ClassVar[str] = "base"
    requires_clairvoyance: ClassVar[bool] = False

    def __init__(self) -> None:
        #: Flag jobs in designation order (meaningful for batch-style
        #: schedulers; empty otherwise).
        self.flag_job_ids: list[int] = []
        #: Decision-provenance channel.  The engine replaces this with the
        #: armed recorder before the run starts (``Simulator.__init__``);
        #: disarmed it stays the shared ``NULL_RECORDER``, and
        #: instrumentation sites guard with ``if self.obs.enabled`` so a
        #: disarmed scheduler pays one attribute read per decision site.
        self.obs: Recorder = NULL_RECORDER
        #: Label used in decision records.  Defaults to the registry
        #: ``name``; composite schedulers (CDB) relabel their inner
        #: per-category instances (e.g. ``"cdb/cat3"``).
        self._obs_scheduler: str = type(self).name

    # -- lifecycle ---------------------------------------------------------
    def setup(self, ctx: SchedulerContext) -> None:
        """Called once before the first event."""

    def clone(self) -> "OnlineScheduler":
        """A fresh scheduler with the same configuration, no run state.

        The default implementation deep-copies the object as constructed;
        subclasses with non-trivial constructor arguments override this.
        """
        fresh = copy.copy(self)
        fresh.reset()
        return fresh

    def reset(self) -> None:
        """Clear per-run state.  Subclasses must call ``super().reset()``."""
        self.flag_job_ids = []
        self.obs = NULL_RECORDER

    # -- hooks (no-op defaults) ---------------------------------------------
    def on_arrival(self, ctx: SchedulerContext, job: JobView) -> None:
        """A job became known (and startable)."""

    def on_deadline(self, ctx: SchedulerContext, job: JobView) -> None:
        """An unstarted job reached its starting deadline (last chance)."""

    def on_completion(self, ctx: SchedulerContext, job: JobView) -> None:
        """A running job finished; its length is now visible."""

    def on_timer(self, ctx: SchedulerContext, tag: Any) -> None:
        """A previously requested timer fired."""

    # -- cosmetics -----------------------------------------------------------
    def describe(self) -> str:
        """Human-readable one-line description (parameters included)."""
        return type(self).__name__

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.describe()}>"


# The engine resolves hooks once per run and skips inherited no-op
# defaults entirely (no Python call per event, and the columnar core can
# vectorise a cohort only when no per-job callback is due).  Overriding a
# hook — even with ``super()`` delegation — clears the marker, because the
# override is a different function object.
for _hook in (
    OnlineScheduler.on_arrival,
    OnlineScheduler.on_deadline,
    OnlineScheduler.on_completion,
    OnlineScheduler.on_timer,
):
    setattr(_hook, "_repro_noop_hook", True)
del _hook
