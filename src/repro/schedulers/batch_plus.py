"""The Batch+ scheduler (Section 3.2, Theorem 3.5).

Batch+ refines Batch with an *open phase*: in each iteration it waits for
a pending job to hit its starting deadline (the **flag job**), starts all
pending jobs together with the flag, and then — while the flag job is
running — starts every newly arriving job immediately.  Only when the
flag job completes does Batch+ return to buffering arrivals and waiting
for a new flag.

The paper proves Batch+ achieves a *tight* competitive ratio of
``μ + 1`` in the non-clairvoyant setting (Theorem 3.5): every job of an
iteration starts no later than the flag's completion ``d(Jf) + p(Jf)``,
so the iteration's span is at most ``(μ+1)·p(Jf)``, while the flag jobs of
consecutive iterations can never overlap under any scheduler.  The
two-group instance of Figure 3 (``batchplus_tightness_instance``) forces
the ratio arbitrarily close to ``μ + 1``.

Implementation notes
--------------------
* Batch+ is non-clairvoyant: it does not know the flag's completion time
  in advance, so the open phase is closed by the flag's *completion
  event*.  During the open phase no job pends (arrivals start instantly),
  hence the pending set is empty when the phase closes and the next
  deadline event designates the next flag.
* Batch+ tracks its own pending set instead of querying the engine's
  global one, because Classify-by-Duration Batch+ runs one Batch+
  instance per duration category over a *shared* engine: each instance
  must only ever batch-start the jobs routed to it.
"""

from __future__ import annotations

from typing import ClassVar

from ..core.engine import JobView, SchedulerContext
from .base import OnlineScheduler
from .stats import IterationRecord

__all__ = ["BatchPlus"]


class BatchPlus(OnlineScheduler):
    """Batch+: batch at flag deadlines, start arrivals during the flag run."""

    name: ClassVar[str] = "batch+"
    requires_clairvoyance: ClassVar[bool] = False

    def __init__(self) -> None:
        super().__init__()
        self._active_flag: int | None = None
        self._pending: dict[int, JobView] = {}
        #: Per-iteration records, in iteration order.
        self.iterations: list[IterationRecord] = []

    def reset(self) -> None:
        super().reset()
        self._active_flag = None
        self._pending = {}
        self.iterations = []

    @property
    def open_phase(self) -> bool:
        """Whether a flag job is currently running (arrivals start at once)."""
        return self._active_flag is not None

    def on_arrival(self, ctx: SchedulerContext, job: JobView) -> None:
        if self._active_flag is not None:
            self.iterations[-1].open_started_job_ids.append(job.id)
            if self.obs.enabled:
                self.obs.decision(
                    "open-phase",
                    job=job.id,
                    t=ctx.now,
                    scheduler=self._obs_scheduler,
                    flag=self._active_flag,
                )
            ctx.start(job.id)
        else:
            # Buffer: the job pends until some pending job's deadline fires.
            self._pending[job.id] = job

    def on_deadline(self, ctx: SchedulerContext, job: JobView) -> None:
        # A pending job hit its starting deadline: it becomes the new flag.
        # (During an open phase nothing pends, so this only fires while
        # buffering — i.e. at iteration boundaries.)
        self._active_flag = job.id
        self.flag_job_ids.append(job.id)
        record = IterationRecord(flag_id=job.id, start_time=ctx.now)
        self.iterations.append(record)
        batch = self._pending
        self._pending = {}
        obs = self.obs
        if obs.enabled:
            now = ctx.now
            label = self._obs_scheduler
            for pending in batch.values():
                if pending.id == job.id:
                    obs.decision(
                        "deadline-flag",
                        job=pending.id,
                        t=now,
                        scheduler=label,
                        deadline=pending.deadline,
                    )
                else:
                    obs.decision(
                        "batch-start",
                        job=pending.id,
                        t=now,
                        scheduler=label,
                        flag=job.id,
                    )
                record.batch_job_ids.append(pending.id)
                ctx.start(pending.id)
        else:
            # Vectorised cohort start: the buffer's keys are the job ids
            # in arrival (insertion) order — identical to the view loop.
            ids = list(batch)
            record.batch_job_ids.extend(ids)
            ctx.start_batch(ids)

    def on_completion(self, ctx: SchedulerContext, job: JobView) -> None:
        if job.id == self._active_flag:
            self._active_flag = None

    def describe(self) -> str:
        return "Batch+ (batch at flag deadline, open during flag run)"
