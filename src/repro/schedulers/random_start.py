"""RandomStart baseline: start at a uniformly random time in the window.

Not from the paper — a sanity baseline for the comparison experiment
(E10) sitting between Eager (always the window's left end) and Lazy
(always the right end).  Deterministic given its seed.
"""

from __future__ import annotations

from typing import ClassVar

import numpy as np

from ..core.engine import JobView, SchedulerContext
from .base import OnlineScheduler

__all__ = ["RandomStart"]


class RandomStart(OnlineScheduler):
    """Start each job at an independent uniform time in ``[a(J), d(J)]``."""

    name: ClassVar[str] = "random"
    requires_clairvoyance: ClassVar[bool] = False

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def clone(self) -> "RandomStart":
        return RandomStart(seed=self.seed)

    def reset(self) -> None:
        super().reset()
        self._rng = np.random.default_rng(self.seed)

    def on_arrival(self, ctx: SchedulerContext, job: JobView) -> None:
        if job.laxity == 0:
            ctx.start(job.id)
            return
        target = job.arrival + float(self._rng.uniform(0.0, job.laxity))
        ctx.set_timer(target, job.id)

    def on_timer(self, ctx: SchedulerContext, tag: int) -> None:
        if not ctx.is_started(tag):
            ctx.start(tag)

    def on_deadline(self, ctx: SchedulerContext, job: JobView) -> None:
        # Deadline events outrank timer events at equal times; start now.
        ctx.start(job.id)

    def describe(self) -> str:
        return f"RandomStart (seed={self.seed})"
