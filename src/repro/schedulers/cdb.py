"""Classify-by-Duration Batch+ (Section 4.2, Theorem 4.4).

In the clairvoyant setting the processing length is known at arrival, so
jobs can be partitioned into duration categories with bounded internal
max/min length ratio ``α``, breaking the non-clairvoyant ``μ`` barrier.
CDB places each arriving job with length ``p`` into the category

    ``i = ceil(log_α(p / b))``        (category covers ``(b·α^(i-1), b·α^i]``)

for a base length ``b``, and runs an *independent* Batch+ instance per
category over the shared timeline.  Theorem 4.4 proves CDB is
``(3α + 4 + 2/(α-1))``-competitive, minimised to ``7 + 2√6 ≈ 11.90`` at
``α = 1 + √(2/3)``.

Implementation notes
--------------------
* Categories are created lazily on first use; the index computation uses
  a small relative tolerance so that a length lying exactly on a category
  boundary ``b·α^i`` lands in category ``i`` (not ``i+1``) despite
  floating-point log rounding.
* Each category's Batch+ tracks its own pending set, so the shared engine
  events can be routed by job id without cross-talk.
"""

from __future__ import annotations

import math
from typing import ClassVar

from ..core.engine import JobView, SchedulerContext
from .base import OnlineScheduler
from .batch_plus import BatchPlus

__all__ = ["ClassifyByDurationBatchPlus", "OPTIMAL_CDB_ALPHA", "duration_category"]

#: The α minimising the Theorem 4.4 bound ``3α + 4 + 2/(α-1)``.
OPTIMAL_CDB_ALPHA = 1.0 + math.sqrt(2.0 / 3.0)

#: Relative tolerance for boundary-exact lengths in the category index.
_BOUNDARY_RTOL = 1e-12


def duration_category(length: float, alpha: float, base: float = 1.0) -> int:
    """The category index ``i`` such that ``b·α^(i-1) < length <= b·α^i``.

    The paper classifies "all the jobs with processing length between
    ``b·α^(i-1)`` and ``b·α^i``" into category ``i``; we take the
    half-open-from-below convention so each length belongs to exactly one
    category.
    """
    if length <= 0:
        raise ValueError("length must be positive")
    if alpha <= 1:
        raise ValueError("alpha must exceed 1")
    if base <= 0:
        raise ValueError("base must be positive")
    raw = math.log(length / base) / math.log(alpha)
    i = math.ceil(raw - _BOUNDARY_RTOL)
    # Guard against floating error pushing the length outside (α^(i-1), α^i].
    while length > base * alpha**i * (1 + _BOUNDARY_RTOL):
        i += 1
    while i > 0 and length <= base * alpha ** (i - 1) * (1 + _BOUNDARY_RTOL):
        i -= 1
    return i


class ClassifyByDurationBatchPlus(OnlineScheduler):
    """CDB: one Batch+ per duration category of internal ratio ``α``.

    Parameters
    ----------
    alpha:
        Max/min processing-length ratio per category (``> 1``).  Defaults
        to the bound-minimising ``1 + √(2/3)``.
    base:
        The base length ``b`` anchoring category boundaries.
    """

    name: ClassVar[str] = "cdb"
    requires_clairvoyance: ClassVar[bool] = True

    def __init__(self, alpha: float = OPTIMAL_CDB_ALPHA, base: float = 1.0) -> None:
        super().__init__()
        if alpha <= 1:
            raise ValueError(f"alpha must exceed 1, got {alpha}")
        if base <= 0:
            raise ValueError(f"base must be positive, got {base}")
        self.alpha = alpha
        self.base = base
        self._categories: dict[int, BatchPlus] = {}
        self._job_category: dict[int, int] = {}

    def clone(self) -> "ClassifyByDurationBatchPlus":
        return ClassifyByDurationBatchPlus(alpha=self.alpha, base=self.base)

    def reset(self) -> None:
        super().reset()
        self._categories = {}
        self._job_category = {}

    # -- routing -------------------------------------------------------------
    def _category_of(self, job: JobView) -> BatchPlus:
        cat = self._job_category.get(job.id)
        if cat is None:
            cat = duration_category(job.length, self.alpha, self.base)
            self._job_category[job.id] = cat
        sub = self._categories.get(cat)
        if sub is None:
            sub = BatchPlus()
            # Propagate the decision-provenance channel: the category's
            # Batch+ emits the actual start rules, labelled with its
            # category so the narrative reads "cdb/cat3 batched J17".
            sub.obs = self.obs
            sub._obs_scheduler = f"{self._obs_scheduler}/cat{cat}"
            self._categories[cat] = sub
        return sub

    def on_arrival(self, ctx: SchedulerContext, job: JobView) -> None:
        if self.obs.enabled and job.id not in self._job_category:
            cat = duration_category(job.length, self.alpha, self.base)
            self._job_category[job.id] = cat
            self.obs.decision(
                "class-boundary",
                job=job.id,
                t=ctx.now,
                scheduler=self._obs_scheduler,
                category=cat,
                length=job.length,
                alpha=self.alpha,
                base=self.base,
            )
        self._category_of(job).on_arrival(ctx, job)

    def on_deadline(self, ctx: SchedulerContext, job: JobView) -> None:
        sub = self._category_of(job)
        before = len(sub.flag_job_ids)
        sub.on_deadline(ctx, job)
        # Mirror newly designated flags into the top-level record, so that
        # analysis sees the union F = ∪ F_i the paper works with.
        self.flag_job_ids.extend(sub.flag_job_ids[before:])

    def on_completion(self, ctx: SchedulerContext, job: JobView) -> None:
        self._category_of(job).on_completion(ctx, job)

    # -- inspection ------------------------------------------------------------
    @property
    def category_flag_jobs(self) -> dict[int, list[int]]:
        """Flag-job ids per category index (the paper's ``F_i`` sets)."""
        return {
            cat: list(sub.flag_job_ids) for cat, sub in sorted(self._categories.items())
        }

    @property
    def num_categories(self) -> int:
        """Number of non-empty categories materialised so far."""
        return len(self._categories)

    def describe(self) -> str:
        return f"Classify-by-Duration Batch+ (α={self.alpha:.4f}, b={self.base:g})"
