"""EpochBatch: cron-style fixed-period batching.

The batching rule operators actually deploy: collect arrivals and start
everything pending every ``T`` time units (with the starting deadline as
a per-job backstop).  Unlike the paper's Batch — whose batch points are
*deadline-driven* and hence adapt to the instance — EpochBatch's points
are blind, so it carries no competitive guarantee: a short epoch
degenerates towards Eager, a long epoch towards deadline-forced starts.
Included as the practitioner's baseline in the comparison suite.
"""

from __future__ import annotations

from typing import Any, ClassVar

from ..core.engine import JobView, SchedulerContext
from .base import OnlineScheduler

__all__ = ["EpochBatch"]

_EPOCH_TAG = "__epoch__"


class EpochBatch(OnlineScheduler):
    """Start all pending jobs at fixed epochs ``T, 2T, 3T, …``.

    Parameters
    ----------
    period:
        The epoch length ``T > 0``.
    """

    name: ClassVar[str] = "epoch-batch"
    requires_clairvoyance: ClassVar[bool] = False

    def __init__(self, period: float = 1.0) -> None:
        super().__init__()
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.period = period
        self._epoch_armed = False

    def clone(self) -> "EpochBatch":
        return EpochBatch(period=self.period)

    def reset(self) -> None:
        super().reset()
        self._epoch_armed = False

    def _next_epoch(self, now: float) -> float:
        k = int(now / self.period) + 1
        return k * self.period

    def on_arrival(self, ctx: SchedulerContext, job: JobView) -> None:
        if not self._epoch_armed:
            self._epoch_armed = True
            ctx.set_timer(self._next_epoch(ctx.now), _EPOCH_TAG)

    def on_timer(self, ctx: SchedulerContext, tag: Any) -> None:
        if tag != _EPOCH_TAG:
            return
        obs = self.obs
        if obs.enabled:
            pending = ctx.pending()
            for job in pending:
                # a pending job whose deadline precedes the *next* epoch
                # must not wait for it (its own deadline backstop would
                # fire, but batching it now keeps starts aligned to
                # epochs).
                obs.decision(
                    "epoch",
                    job=job.id,
                    t=ctx.now,
                    scheduler=self._obs_scheduler,
                    period=self.period,
                )
                ctx.start(job.id)
            started = bool(pending)
        else:
            # Vectorised cohort start (same order as the view loop).
            ids = ctx.pending_ids()
            ctx.start_batch(ids)
            started = bool(ids)
        if started:
            # keep ticking while there was work; otherwise re-arm lazily
            ctx.set_timer(self._next_epoch(ctx.now), _EPOCH_TAG)
        else:
            self._epoch_armed = False

    def on_deadline(self, ctx: SchedulerContext, job: JobView) -> None:
        # Backstop: a deadline strictly between epochs forces the start.
        if self.obs.enabled:
            self.obs.decision(
                "deadline-backstop",
                job=job.id,
                t=ctx.now,
                scheduler=self._obs_scheduler,
                deadline=job.deadline,
                period=self.period,
            )
        ctx.start(job.id)

    def describe(self) -> str:
        return f"EpochBatch (T={self.period:g})"
