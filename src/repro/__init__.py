"""repro — reproduction of *Online Flexible Job Scheduling for Minimum
Span* (Ren & Tang, SPAA 2017).

The library implements the paper's full system:

* the FJS model (jobs with arrival, starting deadline, processing length)
  and span objective — :mod:`repro.core`;
* every scheduler the paper defines or compares against —
  :mod:`repro.schedulers`;
* the adaptive lower-bound adversaries and tightness constructions —
  :mod:`repro.adversaries`;
* exact offline optima and certified lower bounds for competitive-ratio
  measurement — :mod:`repro.offline`;
* synthetic workload generators — :mod:`repro.workloads`;
* the MinUsageTime Dynamic Bin Packing extension of the paper's
  concluding remarks — :mod:`repro.dbp`;
* structural analysis (flag forests, theory bounds, reports) —
  :mod:`repro.analysis`;
* the performance layer (process-pool sweeps, reference memoization,
  the pinned benchmark suite) — :mod:`repro.perf`.

Quickstart
----------
>>> import repro
>>> inst = repro.Instance.from_triples([(0, 5, 2), (1, 4, 3), (2, 0, 1)])
>>> result = repro.simulate(repro.BatchPlus(), inst)
>>> result.span <= (inst.mu + 1) * repro.exact_optimal_span(inst)
True
"""

from .core import (
    Instance,
    Interval,
    IntervalUnion,
    Job,
    Schedule,
    SimulationResult,
    Simulator,
    simulate,
    span_ratio,
    union_measure,
)
from .offline import (
    best_offline_span,
    chain_lower_bound,
    exact_optimal_span,
    span_lower_bound,
)
from .perf import (
    ParallelRunner,
    ReferenceCache,
    cached_reference,
    instance_fingerprint,
)
from .schedulers import (
    Batch,
    BatchPlus,
    ClassifyByDurationBatchPlus,
    Doubler,
    Eager,
    Lazy,
    OnlineScheduler,
    Profit,
    RandomStart,
    make_scheduler,
    scheduler_names,
)

__version__ = "1.0.0"

__all__ = [
    "Instance",
    "Interval",
    "IntervalUnion",
    "Job",
    "Schedule",
    "SimulationResult",
    "Simulator",
    "simulate",
    "span_ratio",
    "union_measure",
    "OnlineScheduler",
    "Batch",
    "BatchPlus",
    "ClassifyByDurationBatchPlus",
    "Profit",
    "Doubler",
    "Eager",
    "Lazy",
    "RandomStart",
    "make_scheduler",
    "scheduler_names",
    "exact_optimal_span",
    "chain_lower_bound",
    "span_lower_bound",
    "best_offline_span",
    "ParallelRunner",
    "ReferenceCache",
    "cached_reference",
    "instance_fingerprint",
    "__version__",
]
