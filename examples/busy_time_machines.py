#!/usr/bin/env python
"""Busy-time scheduling on capacity-g machines (Koehler–Khuller setting).

The paper's concluding remarks note that the online busy-time problem of
Koehler and Khuller — machines running up to ``g`` jobs concurrently,
minimise total machine busy time — contains Clairvoyant FJS as its
``g = ∞`` case.  The finite-``g`` case maps exactly onto our
MinUsageTime DBP substrate with **unit job sizes and bin capacity g**:
each bin is a machine, bin usage time is machine busy time.

This example runs the full pipeline matrix (span scheduler × g) and
shows the two regimes:

* ``g = ∞`` (here: g >= n): busy time == span, so the paper's span
  schedulers are optimal-competitive;
* small ``g``: the work bound ``Σ p / g`` takes over and scheduling
  matters less than packing.

Run:  python examples/busy_time_machines.py
"""

from __future__ import annotations

import _bootstrap  # noqa: F401  (sys.path setup: run from any cwd, no install)

from repro.analysis import Table
from repro.core import Instance, Job
from repro.dbp import FirstFit, run_pipeline
from repro.offline import span_lower_bound
from repro.schedulers import BatchPlus, Eager, Profit
from repro.workloads import poisson_instance


def with_unit_sizes(instance: Instance) -> Instance:
    """Copy an instance with every job's resource demand set to 1
    (busy-time scheduling counts *jobs per machine*, not sizes)."""
    return Instance(
        (
            Job(
                id=j.id,
                arrival=j.arrival,
                deadline=j.deadline,
                length=j.known_length,
                size=1.0,
            )
            for j in instance
        ),
        name=f"{instance.name}/unit-size",
    )


def main() -> None:
    inst = with_unit_sizes(poisson_instance(120, seed=11, laxity_scale=3.0))
    total_work = inst.total_work
    span_lb = span_lower_bound(inst)
    print(
        f"busy-time instance: {len(inst)} unit-size jobs, "
        f"Σp = {total_work:.0f}, span LB = {span_lb:.1f}\n"
    )

    for g in (2, 8, 32, len(inst)):
        g_label = "∞ (=n)" if g == len(inst) else str(g)
        # certified busy-time LB: max(span LB, Σp / g)
        lb = max(span_lb, total_work / g)
        table = Table(
            ["scheduler", "busy time", "machines", "vs LB"],
            title=f"machine capacity g = {g_label} — busy-time LB {lb:.1f}",
            precision=2,
        )
        for sched in (Eager(), BatchPlus(), Profit()):
            result = run_pipeline(sched, FirstFit(float(g)), inst)
            table.add(
                sched.describe(),
                result.total_usage_time,
                result.bins_used,
                result.total_usage_time / lb,
            )
        table.print()
        print()

    print(
        "At g = ∞ the busy time equals the span, so Batch+/Profit's "
        "competitive guarantees for FJS carry over verbatim — exactly the "
        "reduction the concluding remarks describe."
    )


if __name__ == "__main__":
    main()
