#!/usr/bin/env python
"""Adversary showdown: replay the paper's lower-bound constructions.

Pits every scheduler against the two adaptive adversaries and prints the
forced span ratios next to the theory:

* §3.1 non-clairvoyant adversary — forces any deterministic scheduler
  towards ratio μ (Theorem 3.3);
* §4.1 clairvoyant adversary — forces any deterministic scheduler
  towards the golden ratio φ ≈ 1.618 (Theorem 4.1).

Run:  python examples/adversary_showdown.py
"""

from __future__ import annotations

import _bootstrap  # noqa: F401  (sys.path setup: run from any cwd, no install)

from repro.adversaries import (
    ClairvoyantLowerBoundAdversary,
    NonClairvoyantLowerBoundAdversary,
    geometric_profile,
)
from repro.adversaries import PHI
from repro.analysis import Table, clairvoyant_adversary_ratio, nonclairvoyant_lower_bound
from repro.core import simulate
from repro.schedulers import make_scheduler, scheduler_names


def nonclairvoyant_showdown(mu: float, k: int, m: int) -> None:
    profile = geometric_profile(k, m)
    counts = [it.count for it in profile.iterations]
    theory = nonclairvoyant_lower_bound(k, mu, counts)
    table = Table(
        ["scheduler", "iters", "jobs", "online span", "witness span", "ratio"],
        title=(
            f"§3.1 adversary: μ={mu:g}, k={k}, {m*m} jobs/iteration — "
            f"theory forces >= {theory:.3f} (→ μ as k→∞)"
        ),
        precision=3,
    )
    for name in scheduler_names():
        sched = make_scheduler(name)
        if type(sched).requires_clairvoyance:
            continue  # the adversary assigns lengths adaptively
        adv = NonClairvoyantLowerBoundAdversary(mu, profile)
        result = simulate(sched, adversary=adv, clairvoyant=False)
        witness = adv.paper_optimal_schedule(result.instance)
        table.add(
            name,
            adv.iterations_released,
            len(result.instance),
            result.span,
            witness.span,
            result.span / witness.span,
        )
    table.print()
    print()


def clairvoyant_showdown(n: int) -> None:
    theory = clairvoyant_adversary_ratio(n)
    table = Table(
        ["scheduler", "iters played", "stopped early", "ratio"],
        title=(
            f"§4.1 adversary: n={n} — theory forces >= {theory:.3f} "
            f"(φ = {PHI:.3f})"
        ),
        precision=3,
    )
    for name in scheduler_names():
        sched = make_scheduler(name)
        adv = ClairvoyantLowerBoundAdversary(n)
        result = simulate(
            sched, adversary=adv, clairvoyant=type(sched).requires_clairvoyance
        )
        witness = adv.paper_optimal_schedule(result.instance)
        table.add(
            name,
            adv.iterations_played,
            adv.stopped_early,
            result.span / witness.span,
        )
    table.print()


def main() -> None:
    nonclairvoyant_showdown(mu=8.0, k=6, m=16)
    clairvoyant_showdown(n=60)


if __name__ == "__main__":
    main()
