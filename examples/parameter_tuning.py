#!/usr/bin/env python
"""Parameter tuning: sweep CDB's α and Profit's k.

Theorems 4.4 and 4.11 give closed-form worst-case bounds minimised at
α* = 1 + √(2/3) and k* = 1 + √2/2.  This example sweeps both parameters
over random workloads and shows (a) the theory curve, (b) the measured
average ratio — illustrating that the worst-case-optimal parameters are
not necessarily average-case optimal, a classic theory/practice gap.

Run:  python examples/parameter_tuning.py
"""

from __future__ import annotations

import _bootstrap  # noqa: F401  (sys.path setup: run from any cwd, no install)

import numpy as np

from repro.analysis import (
    Table,
    cdb_ratio,
    optimal_cdb_alpha,
    optimal_profit_k,
    profit_ratio,
    render_curves,
)
from repro.core import simulate
from repro.offline import best_offline_span
from repro.schedulers import ClassifyByDurationBatchPlus, Profit
from repro.workloads import bimodal_instance, poisson_instance


def measure(make_sched, instances, refs) -> float:
    ratios = []
    for inst, ref in zip(instances, refs):
        result = simulate(make_sched(), inst, clairvoyant=True)
        ratios.append(result.span / ref)
    return float(np.mean(ratios))


def main() -> None:
    instances = [poisson_instance(60, seed=s) for s in range(4)] + [
        bimodal_instance(60, seed=s, mu=10.0) for s in range(4)
    ]
    # offline heuristic as the common reference (upper bound on OPT →
    # measured values are conservative over-estimates of the true ratio)
    refs = [best_offline_span(inst) for inst in instances]

    table = Table(
        ["α", "theory bound (Thm 4.4)", "measured mean ratio"],
        title="CDB α sweep (α* marked)",
        precision=3,
    )
    for alpha in (1.2, 1.5, optimal_cdb_alpha(), 2.0, 2.5, 3.0, 4.0):
        mark = " *" if abs(alpha - optimal_cdb_alpha()) < 1e-9 else ""
        measured = measure(
            lambda a=alpha: ClassifyByDurationBatchPlus(alpha=a), instances, refs
        )
        table.add(f"{alpha:.3f}{mark}", cdb_ratio(alpha), measured)
    table.print()
    print()

    table = Table(
        ["k", "theory bound (Thm 4.11)", "measured mean ratio"],
        title="Profit k sweep (k* marked)",
        precision=3,
    )
    for k in (1.1, 1.3, 1.5, optimal_profit_k(), 2.0, 2.5, 3.0):
        mark = " *" if abs(k - optimal_profit_k()) < 1e-9 else ""
        measured = measure(lambda kk=k: Profit(k=kk), instances, refs)
        table.add(f"{k:.3f}{mark}", profit_ratio(k), measured)
    table.print()

    print()
    grid = np.linspace(1.05, 4.0, 60)
    print(
        render_curves(
            {
                "CDB bound (α)": [(x, cdb_ratio(x)) for x in grid],
                "Profit bound (k)": [(x, profit_ratio(x)) for x in grid],
            },
            title="worst-case bound curves (minima at α*≈1.816, k*≈1.707)",
            y_label="bound",
            height=12,
        )
    )

    print(
        "\nNote: measured ratios use the offline heuristic as denominator "
        "(an upper bound on OPT), so they are conservative; the worst-case "
        "optimal parameters need not minimise the average-case column."
    )


if __name__ == "__main__":
    main()
