#!/usr/bin/env python
"""Certification & inspection workflow: measure, attribute, archive.

The workflow a downstream user runs when evaluating a scheduler on their
own workload:

1. generate (or load) an instance and persist it as JSON,
2. measure the scheduler's competitive ratio with a *certified bracket*
   (exact optimum when the instance is small, sound bounds otherwise),
3. decompose the span into busy components and attribute them to flag
   iterations (the executable form of Theorem 3.5's accounting),
4. archive the schedule next to the instance for later re-validation.

Run:  python examples/certify_and_inspect.py
"""

from __future__ import annotations

import _bootstrap  # noqa: F401  (sys.path setup: run from any cwd, no install)

import tempfile
from pathlib import Path

from repro.analysis import (
    Table,
    decompose_span,
    iteration_attribution,
    measure_ratio,
)
from repro.core import load_schedule, save_instance, save_schedule, simulate
from repro.schedulers import BatchPlus
from repro.workloads import small_integral_instance


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="fjs-"))

    # 1. a small instance (exact certification is feasible) — persist it.
    inst = small_integral_instance(9, seed=21, max_arrival=15)
    save_instance(inst, workdir / "instance.json")
    print(f"instance: {len(inst)} jobs, μ={inst.mu:g} → {workdir/'instance.json'}\n")

    # 2. certified ratio measurement.
    bracket = measure_ratio(BatchPlus(), inst)
    print(
        f"Batch+ span {bracket.span:g}; competitive ratio {bracket} "
        f"(method: {bracket.opt.method})"
    )
    print(
        f"Theorem 3.5 guarantees ratio <= μ+1 = {inst.mu + 1:g}; "
        f"measured {bracket.upper:.3f}\n"
    )

    # 3. span decomposition + flag attribution.
    result = simulate(BatchPlus(), inst)
    comps = decompose_span(result.schedule)
    table = Table(
        ["component", "jobs", "length", "dominant job"],
        title=f"busy components (span = {result.span:g})",
        precision=2,
    )
    for i, c in enumerate(comps):
        table.add(i, len(c.job_ids), c.length, f"J{c.dominant_job}")
    table.print()
    print()

    charges = iteration_attribution(
        result.instance, result.schedule, result.scheduler.flag_job_ids
    )
    table = Table(
        ["flag job", "p(flag)", "charged span", "(μ+1)·p cap"],
        title="Theorem 3.5 accounting: span charged per flag iteration",
        precision=2,
    )
    for fid, charge in sorted(charges.items()):
        if fid == -1:
            table.add("(unattributed)", "-", charge, "-")
            continue
        p = result.instance[fid].known_length
        table.add(f"J{fid}", p, charge, (inst.mu + 1) * p)
    table.print()

    # 4. archive and re-validate.
    save_schedule(result.schedule, workdir / "schedule.json")
    reloaded = load_schedule(workdir / "schedule.json")
    assert reloaded.span == result.schedule.span
    print(f"\nschedule archived and re-validated: {workdir/'schedule.json'}")


if __name__ == "__main__":
    main()
