#!/usr/bin/env python
"""Quickstart: schedule a handful of flexible jobs and compare schedulers.

Walks through the library's core loop:

1. build an :class:`~repro.core.Instance` of flexible jobs,
2. run online schedulers through the discrete-event simulator,
3. compare spans against the exact offline optimum,
4. render what happened as an ASCII Gantt chart.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import _bootstrap  # noqa: F401  (sys.path setup: run from any cwd, no install)

from repro import (
    Batch,
    BatchPlus,
    Eager,
    Instance,
    Lazy,
    Profit,
    exact_optimal_span,
    simulate,
)
from repro.analysis import Table, render_gantt


def main() -> None:
    # Each triple is (arrival, laxity, processing length): the job may be
    # started anywhere in [arrival, arrival + laxity] and then runs for
    # its processing length without interruption.
    inst = Instance.from_triples(
        [
            (0, 6, 2),   # an early job with lots of slack
            (1, 5, 4),   # a long job that everything should overlap
            (2, 0, 1),   # a rigid job: must start the moment it arrives
            (3, 3, 2),
            (8, 2, 1),   # a straggler after the main burst
            (8, 2, 3),
        ],
        name="quickstart",
    )
    print(f"instance: {len(inst)} jobs, μ = {inst.mu:g}, total work = {inst.total_work:g}\n")

    # The exact offline optimum (small integral instance → fast).
    opt = exact_optimal_span(inst)

    table = Table(
        ["scheduler", "span", "ratio vs OPT"],
        title=f"minimum possible span (offline OPT) = {opt:g}",
    )
    schedules = {}
    for sched in (Eager(), Lazy(), Batch(), BatchPlus(), Profit()):
        clairvoyant = type(sched).requires_clairvoyance
        result = simulate(sched, inst, clairvoyant=clairvoyant)
        schedules[sched.name] = result.schedule
        table.add(sched.describe(), result.span, result.span / opt)
    table.print()

    print("\nBatch+ schedule (█ = running, · = start-flexibility window):\n")
    print(render_gantt(schedules["batch+"]))

    print("\nEager schedule for contrast (no use of laxity):\n")
    print(render_gantt(schedules["eager"]))


if __name__ == "__main__":
    main()
