#!/usr/bin/env python
"""Cloud cost scenario: pay-as-you-go billing = span + packing.

The paper's introduction: under pay-as-you-go billing, a single
sufficiently large server's bill is proportional to the *span* of job
execution; with capacity-limited servers the bill is the total server
usage time — the MinUsageTime DBP objective of §5.

This example runs a synthetic two-day cloud trace (diurnal arrivals,
interactive + batch mix) through scheduler ∘ packer pipelines and prices
the outcome, demonstrating the paper's architectural proposal:
Batch+ ∘ FirstFit (non-clairvoyant) and Profit ∘ CD-FirstFit
(clairvoyant) against the rigid Eager baseline.

Run:  python examples/cloud_cost.py
"""

from __future__ import annotations

import _bootstrap  # noqa: F401  (sys.path setup: run from any cwd, no install)

from repro.analysis import Table
from repro.dbp import ClassifyByDurationFirstFit, FirstFit, run_pipeline, usage_lower_bound
from repro.schedulers import BatchPlus, Eager, Profit
from repro.workloads import CloudWorkload, cloud_instance

HOURLY_RATE = 0.42  # $/server-hour (an on-demand c-family-ish price)


def main() -> None:
    inst = cloud_instance(CloudWorkload(n=600, days=2.0), seed=7)
    print(
        f"workload: {len(inst)} jobs over 2 days, "
        f"total demand {sum(j.size * j.known_length for j in inst):.1f} "
        "size·hours\n"
    )

    for capacity in (1.0, 4.0):
        lb = usage_lower_bound(inst, capacity)
        table = Table(
            ["pipeline", "usage (h)", "cost ($)", "vs LB", "servers"],
            title=(
                f"server capacity {capacity:g} — certified usage lower "
                f"bound {lb:.1f} h"
            ),
            precision=2,
        )
        pipelines = [
            ("Eager ∘ FirstFit (rigid baseline)", Eager(), FirstFit(capacity)),
            ("Batch+ ∘ FirstFit (paper §5, non-clairvoyant)", BatchPlus(), FirstFit(capacity)),
            (
                "Profit ∘ CD-FirstFit (paper §5, clairvoyant)",
                Profit(),
                ClassifyByDurationFirstFit(capacity),
            ),
        ]
        for label, sched, packer in pipelines:
            result = run_pipeline(sched, packer, inst)
            usage = result.total_usage_time
            table.add(
                label,
                usage,
                usage * HOURLY_RATE,
                usage / lb,
                result.bins_used,
            )
        table.print()
        print()


if __name__ == "__main__":
    main()
