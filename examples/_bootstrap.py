"""Shared ``sys.path`` bootstrap so examples run from any cwd.

Examples are documentation that executes: they must work with a plain

    python examples/quickstart.py

from a clean checkout — no install step, no ``PYTHONPATH`` juggling, and
regardless of the caller's working directory (the smoke tests
deliberately run them from a temp dir).  Every example's first import is

    import _bootstrap  # noqa: F401

which resolves because Python puts the *script's* directory on
``sys.path``; this module then prepends the repo's ``src/`` layout root
when ``repro`` is not already importable (e.g. pip-installed).
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

if importlib.util.find_spec("repro") is None:
    _src = Path(__file__).resolve().parent.parent / "src"
    if (_src / "repro" / "__init__.py").is_file():
        sys.path.insert(0, str(_src))
