#!/usr/bin/env python
"""Energy-efficiency scenario: span = server-on time = idle energy.

The paper's second motivation [4]: a server's power draw has a large
idle component, so the energy to process a fixed batch of work splits
into a *fixed* part (proportional to total work) and a part proportional
to the time the server is on — the span.  A span-minimising scheduler
therefore directly cuts the idle-energy bill.

This example prices a nightly maintenance window (jobs may start any
time before the window closes) under a simple but realistic power
model, comparing the paper's schedulers.

Run:  python examples/energy_efficiency.py
"""

from __future__ import annotations

import _bootstrap  # noqa: F401  (sys.path setup: run from any cwd, no install)

from repro.analysis import Table
from repro.core import simulate
from repro.core.metrics import parallelism
from repro.offline import best_offline_span, span_lower_bound
from repro.schedulers import Batch, BatchPlus, Eager, Lazy, Profit
from repro.workloads import batch_window_instance

IDLE_WATTS = 120.0    # power while on, doing nothing
ACTIVE_WATTS = 80.0   # *additional* power per unit of work executed
KWH_PRICE = 0.31      # $/kWh


def energy_kwh(span_hours: float, work_hours: float) -> float:
    """Energy = idle power × on-time + active power × work."""
    return (IDLE_WATTS * span_hours + ACTIVE_WATTS * work_hours) / 1000.0


def main() -> None:
    inst = batch_window_instance(150, seed=3, window=24.0, mu=12.0)
    work = inst.total_work
    lb = span_lower_bound(inst)
    offline = best_offline_span(inst)
    print(
        f"nightly batch: {len(inst)} jobs, {work:.0f} h of work, "
        f"μ = {inst.mu:.1f}"
    )
    print(
        f"span bracket: certified LB {lb:.1f} h <= OPT <= offline "
        f"heuristic {offline:.1f} h\n"
    )

    table = Table(
        ["scheduler", "span (h)", "parallelism", "energy (kWh)", "cost ($)"],
        title="server-on time and idle-energy cost per scheduler",
        precision=2,
    )
    for sched in (Eager(), Lazy(), Batch(), BatchPlus(), Profit()):
        result = simulate(
            sched, inst, clairvoyant=type(sched).requires_clairvoyance
        )
        kwh = energy_kwh(result.span, work)
        table.add(
            sched.describe(),
            result.span,
            parallelism(result.schedule),
            kwh,
            kwh * KWH_PRICE,
        )
    # the offline heuristic as the with-hindsight reference
    kwh = energy_kwh(offline, work)
    table.add("— offline heuristic (hindsight)", offline, work / offline, kwh, kwh * KWH_PRICE)
    table.print()

    print(
        "\nThe fixed active-energy floor is "
        f"{ACTIVE_WATTS * work / 1000:.1f} kWh; everything above it is "
        "idle burn that span scheduling removes."
    )


if __name__ == "__main__":
    main()
