#!/usr/bin/env python
"""Trace pipeline: from an SWF-style cluster log to scheduling decisions.

The workflow for a user with a real workload trace:

1. parse an SWF-style file into an FJS instance, choosing a *laxity
   policy* (traces record when jobs ran, not how long they could wait);
2. compare schedulers under increasingly generous laxity assumptions;
3. certify what the laxity would have been worth in span (≈ server-on
   hours).

The trace here is synthesised on the fly (no bundled data files), but
any SWF-like file works the same way.

Run:  python examples/trace_pipeline.py
"""

from __future__ import annotations

import _bootstrap  # noqa: F401  (sys.path setup: run from any cwd, no install)

import tempfile
from pathlib import Path

from repro.analysis import Table
from repro.core import simulate
from repro.offline import span_lower_bound
from repro.schedulers import BatchPlus, Eager, Profit
from repro.workloads import (
    mmpp_instance,
    read_swf_instance,
    write_swf_instance,
)


def main() -> None:
    # --- 1. obtain a trace file (stand-in for a real cluster log) -------
    trace_path = Path(tempfile.mkdtemp(prefix="fjs-")) / "cluster.swf"
    write_swf_instance(mmpp_instance(250, seed=13), trace_path)
    print(f"trace: {trace_path} ({len(trace_path.read_text().splitlines())} lines)\n")

    # --- 2. replay under different laxity assumptions -------------------
    table = Table(
        ["laxity policy", "Eager", "Batch+", "Profit", "chain LB"],
        title="span by scheduler × laxity policy (lower is better)",
        precision=1,
    )
    for label, policy in [
        ("rigid replay (×0)", ("zero", 0.0)),
        ("tolerate ×0.5 run time", ("proportional", 0.5)),
        ("tolerate ×2 run time", ("proportional", 2.0)),
        ("tolerate 8 h flat", ("constant", 8.0)),
    ]:
        inst = read_swf_instance(trace_path, laxity=policy)
        spans = {}
        for sched, clair in ((Eager(), False), (BatchPlus(), False), (Profit(), True)):
            spans[sched.name] = simulate(sched, inst, clairvoyant=clair).span
        table.add(
            label,
            spans["eager"],
            spans["batch+"],
            spans["profit"],
            span_lower_bound(inst),
        )
    table.print()

    print(
        "\nReading: the rigid row is what actually happened (every "
        "scheduler degenerates to the recorded starts); each laxity row "
        "shows the span the same workload would need if users tolerated "
        "that much start delay — the gap is the consolidation dividend "
        "the paper's schedulers unlock."
    )


if __name__ == "__main__":
    main()
