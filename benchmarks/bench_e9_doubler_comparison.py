"""E9 — §5's Koehler–Khuller remark: Doubler vs the paper's schedulers.

Head-to-head of the reconstructed Doubler baseline (concurrent work
[12], 5-competitive for the equivalent problem) against Profit and CDB
on clairvoyant workloads, plus the §4.1 adversary.

Reproduced shape: all three are O(1)-competitive (ratios stay bounded
across workload scale, unlike Eager/Lazy in E7); Profit's tuned bound
(≈6.83) is the best of the three and its measured ratios are
consistently at or below Doubler's.
"""

from __future__ import annotations

import numpy as np

from repro.adversaries import ClairvoyantLowerBoundAdversary
from repro.analysis import Table
from repro.core import simulate
from repro.offline import best_offline_span
from repro.schedulers import ClassifyByDurationBatchPlus, Doubler, Profit
from repro.workloads import bimodal_instance, heavy_tail_instance, poisson_instance

FAMILIES = {
    "poisson": lambda s: poisson_instance(80, seed=s),
    "bimodal(μ=10)": lambda s: bimodal_instance(80, seed=s, mu=10.0),
    "heavy-tail": lambda s: heavy_tail_instance(80, seed=s),
}


def test_e9_workload_comparison(benchmark):
    table = Table(
        ["family", "Profit", "CDB", "Doubler"],
        title="E9: mean span ratio vs offline heuristic (5 seeds/family)",
        precision=3,
    )
    means = {}
    for fam_name, make in FAMILIES.items():
        ratios = {"profit": [], "cdb": [], "doubler": []}
        for seed in range(5):
            inst = make(seed)
            ref = best_offline_span(inst)
            for key, sched in (
                ("profit", Profit()),
                ("cdb", ClassifyByDurationBatchPlus()),
                ("doubler", Doubler()),
            ):
                r = simulate(sched, inst, clairvoyant=True)
                ratios[key].append(r.span / ref)
        row = {k: float(np.mean(v)) for k, v in ratios.items()}
        means[fam_name] = row
        table.add(fam_name, row["profit"], row["cdb"], row["doubler"])
        # all three stay O(1) — far below the E7 baselines' linear blowup
        assert max(max(v) for v in ratios.values()) < 12.0
    print()
    table.print()
    # Profit at worst ties Doubler on every family average (small slack
    # for stochastic workloads).
    for fam_name, row in means.items():
        assert row["profit"] <= row["doubler"] * 1.05, fam_name

    inst = poisson_instance(80, seed=0)
    benchmark(lambda: simulate(Doubler(), inst, clairvoyant=True).span)


def test_e9_adversarial_comparison(benchmark):
    """On the §4.1 construction all three are forced to ≈φ; none escapes
    (Theorem 4.1 applies to every deterministic scheduler)."""
    n = 50
    table = Table(
        ["scheduler", "iters played", "ratio"],
        title=f"E9: §4.1 adversary (n={n})",
        precision=4,
    )
    for name, sched in (
        ("profit", Profit()),
        ("cdb", ClassifyByDurationBatchPlus()),
        ("doubler", Doubler()),
    ):
        adv = ClairvoyantLowerBoundAdversary(n)
        result = simulate(sched, adversary=adv, clairvoyant=True)
        witness = adv.paper_optimal_schedule(result.instance)
        ratio = result.span / witness.span
        assert ratio >= 1.6 - 0.05
        table.add(name, adv.iterations_played, ratio)
    print()
    table.print()

    benchmark(
        lambda: simulate(
            Profit(),
            adversary=ClairvoyantLowerBoundAdversary(n),
            clairvoyant=True,
        ).span
    )
