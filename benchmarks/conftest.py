"""Benchmark harness configuration.

Each ``bench_e*.py`` module reproduces one experiment row of DESIGN.md's
per-experiment index: it regenerates the quantity the paper's theorem or
figure derives, prints the paper-style table (run with ``-s`` to see it),
asserts the reproduction claims, and times the central computation via
pytest-benchmark.

Run everything:   pytest benchmarks/ --benchmark-only -s

Parallelism: the grid-shaped benches (E10, E15, …) route their
simulation fan-out through :class:`repro.perf.ParallelRunner`, so

    REPRO_WORKERS=auto pytest benchmarks/ -s

spreads the independent (scheduler, instance) cells over all cores —
with results bit-identical to the serial run.  The session-scoped
``perf_runner`` fixture below hands benches a shared runner, and the
report header records the active configuration so printed tables are
always attributable to a worker count.
"""

from __future__ import annotations

import os

import pytest

collect_ignore_glob: list[str] = []


def pytest_configure(config):
    # Benches print result tables; make terminal output predictable.
    config.option.verbose = max(config.option.verbose, 0)


def pytest_report_header(config):
    from repro.perf import WORKERS_ENV, resolve_workers

    spec = os.environ.get(WORKERS_ENV)
    workers = resolve_workers(spec)
    mode = "serial" if workers <= 1 else f"parallel ({workers} workers)"
    return f"repro perf: {WORKERS_ENV}={spec or '<unset>'} -> {mode}"


@pytest.fixture(scope="session")
def perf_runner():
    """One shared :class:`repro.perf.ParallelRunner` for the session.

    Honours ``REPRO_WORKERS``; pass it to ``run_grid(..., runner=...)`` /
    ``estimate_expected_ratio(..., runner=...)`` so all benches share a
    single consistent fan-out configuration.
    """
    from repro.perf import ParallelRunner

    return ParallelRunner()


@pytest.fixture(scope="session")
def reference_cache():
    """A session-scoped content-addressed cache for offline references.

    Benches that sweep the same instance family against
    ``exact_optimal_span``/``span_lower_bound`` repeatedly should wrap
    the reference via ``cached_reference(fn, cache=reference_cache)``.
    """
    from repro.perf import ReferenceCache

    return ReferenceCache()
