"""Benchmark harness configuration.

Each ``bench_e*.py`` module reproduces one experiment row of DESIGN.md's
per-experiment index: it regenerates the quantity the paper's theorem or
figure derives, prints the paper-style table (run with ``-s`` to see it),
asserts the reproduction claims, and times the central computation via
pytest-benchmark.

Run everything:   pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

collect_ignore_glob: list[str] = []


def pytest_configure(config):
    # Benches print result tables; make terminal output predictable.
    config.option.verbose = max(config.option.verbose, 0)
