"""E3 — Theorem 3.5 / Figure 3: Batch+'s tight ratio μ+1.

Two parts:
* the Figure 3 family forces Batch+ to ``m(μ+1-ε)/(m+μ) → μ+1``;
* on random small integral instances the (μ+1)·OPT bound holds against
  the *exact* optimum (tightness from below + soundness from above).
"""

from __future__ import annotations

import pytest

from repro.adversaries import batchplus_tightness_instance
from repro.analysis import Table, batchplus_ratio
from repro.core import simulate
from repro.offline import exact_optimal_span
from repro.schedulers import BatchPlus
from repro.workloads import small_integral_instance

EPS = 1e-3


@pytest.mark.parametrize("mu", [2.0, 5.0, 10.0])
def test_e3_ratio_series(benchmark, mu):
    table = Table(
        ["m", "Batch+ span", "witness span", "ratio", "tight bound μ+1"],
        title=f"E3: Figure 3 family, μ={mu:g}",
        precision=3,
    )
    last_ratio = 0.0
    for m in (1, 4, 16, 64, 256):
        fam = batchplus_tightness_instance(m=m, mu=mu, epsilon=EPS)
        result = simulate(BatchPlus(), fam.instance)
        ratio = result.span / fam.optimal_span
        assert ratio == pytest.approx(m * (mu + 1 - EPS) / (m + mu), rel=1e-9)
        assert ratio <= batchplus_ratio(mu) + 1e-9
        assert ratio > last_ratio
        last_ratio = ratio
        table.add(m, result.span, fam.optimal_span, ratio, batchplus_ratio(mu))
    print()
    table.print()
    assert last_ratio >= 0.95 * batchplus_ratio(mu)

    # Extrapolated limit = μ+1-ε exactly (→ μ+1 as ε → 0).
    from repro.analysis import fit_limit

    ms = [1, 4, 16, 64, 256]
    ratios = []
    for m in ms:
        fam = batchplus_tightness_instance(m=m, mu=mu, epsilon=EPS)
        ratios.append(
            simulate(BatchPlus(), fam.instance).span / fam.optimal_span
        )
    fit = fit_limit(ms, ratios)
    assert fit.limit == pytest.approx(mu + 1 - EPS, rel=1e-6)
    print(
        f"extrapolated limit {fit.limit:.6f} = μ+1-ε "
        f"(→ μ+1 = {mu + 1:g} as ε → 0)"
    )

    fam = batchplus_tightness_instance(m=64, mu=mu, epsilon=EPS)
    benchmark(lambda: simulate(BatchPlus(), fam.instance).span)


def test_e3_bound_vs_exact_optimum(benchmark):
    """span(Batch+) <= (μ+1)·OPT on 40 random integral instances."""
    worst = 0.0
    for seed in range(40):
        inst = small_integral_instance(7, seed=seed)
        result = simulate(BatchPlus(), inst)
        opt = exact_optimal_span(inst)
        normalised = result.span / (batchplus_ratio(inst.mu) * opt)
        assert normalised <= 1.0 + 1e-9
        worst = max(worst, normalised)
    print(
        f"\nE3: worst observed span/( (μ+1)·OPT ) over 40 random "
        f"instances = {worst:.3f} (<= 1 required)"
    )
    inst = small_integral_instance(7, seed=0)
    benchmark(lambda: exact_optimal_span(inst))
