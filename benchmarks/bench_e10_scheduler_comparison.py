"""E10 — the cross-cutting evaluation: every scheduler × every family.

The table a systems version of this paper would report: mean / p95 span
ratio per (scheduler, workload family) against the certified chain lower
bound, plus exact-optimum ratios on small instances.

Reproduced shape (the paper's hierarchy):
    Profit ≤ Batch+ ≤ Batch, and the O(1) clairvoyant schedulers beat
    the unbounded baselines on laxity-rich workloads.
"""

from __future__ import annotations

from repro.analysis import Table
from repro.core import simulate
from repro.offline import exact_optimal_span, span_lower_bound
from repro.schedulers import make_scheduler, scheduler_names
from repro.workloads import (
    WorkloadSpec,
    bimodal_instance,
    generate,
    heavy_tail_instance,
    poisson_instance,
    ratio_stats,
    rigid_instance,
    run_grid,
    small_integral_instance,
)

FAMILIES = {
    "poisson": lambda s: poisson_instance(60, seed=s),
    "bimodal": lambda s: bimodal_instance(60, seed=s, mu=10.0),
    "heavy-tail": lambda s: heavy_tail_instance(60, seed=s),
    "rigid": lambda s: rigid_instance(60, seed=s),
    "bursty-laxity": lambda s: generate(
        WorkloadSpec(n=60, arrival="bursty", laxity="uniform", laxity_scale=8.0),
        seed=s,
    ),
}
SEEDS = range(4)


def test_e10_family_grid(benchmark, perf_runner):
    protos = [make_scheduler(n) for n in scheduler_names()]
    family_stats = {}
    for fam, make in FAMILIES.items():
        instances = [make(s) for s in SEEDS]
        results = run_grid(protos, instances, span_lower_bound, runner=perf_runner)
        family_stats[fam] = ratio_stats(results)

    table = Table(
        ["scheduler", *FAMILIES.keys()],
        title="E10: mean span ratio vs chain LB (4 seeds per family)",
        precision=3,
    )
    for name in scheduler_names():
        table.add(name, *[family_stats[f][name]["mean"] for f in FAMILIES])
    print()
    table.print()

    # Paper hierarchy on laxity-rich families (poisson, bimodal):
    for fam in ("poisson", "bimodal"):
        st = family_stats[fam]
        assert st["profit"]["mean"] <= st["batch+"]["mean"] + 0.05
        assert st["batch+"]["mean"] <= st["batch"]["mean"] + 0.05
        assert st["profit"]["mean"] < st["lazy"]["mean"]
        assert st["profit"]["mean"] < st["random"]["mean"]
    # On rigid workloads every scheduler degenerates to the same spans.
    rigid = family_stats["rigid"]
    values = [rigid[n]["mean"] for n in scheduler_names()]
    assert max(values) - min(values) < 1e-9

    inst = poisson_instance(60, seed=0)
    benchmark(lambda: simulate(make_scheduler("batch+"), inst).span)


def test_e10_exact_ratio_small_instances(benchmark):
    """Exact competitive-ratio measurement: mean and worst span/OPT over
    random small integral instances."""
    instances = [small_integral_instance(7, seed=s) for s in range(20)]
    opts = [exact_optimal_span(inst) for inst in instances]

    table = Table(
        ["scheduler", "mean span/OPT", "worst span/OPT"],
        title="E10: exact ratios on 20 small instances",
        precision=3,
    )
    worst_by_name = {}
    for name in scheduler_names():
        ratios = []
        for inst, opt in zip(instances, opts):
            sched = make_scheduler(name)
            result = simulate(
                sched, inst, clairvoyant=type(sched).requires_clairvoyance
            )
            ratios.append(result.span / opt)
        worst_by_name[name] = max(ratios)
        table.add(name, sum(ratios) / len(ratios), max(ratios))
    print()
    table.print()
    # sanity: nothing beats OPT
    assert all(w >= 1.0 - 1e-9 for w in worst_by_name.values())

    inst = instances[0]
    benchmark(lambda: exact_optimal_span(inst))
