"""E6 — Theorem 4.11 / Figures 6-7: Profit k-sweep and flag forest.

Reproduces:

* the theory bound ``2k + 2 + 1/(k-1)`` minimised at k* = 1+√2/2 with
  value 4+2√2 ≈ 6.83; the measured worst ratio respects it at every k
  (against exact optima);
* the Lemma 4.7 structure: the flag graph is a forest on every run, and
  Lemma 4.6's completion ordering holds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    Table,
    build_flag_forest,
    check_forest_property,
    check_lemma_4_6,
    optimal_profit_k,
    optimal_profit_ratio,
    profit_ratio,
)
from repro.core import simulate
from repro.offline import exact_optimal_span
from repro.schedulers import Profit
from repro.workloads import poisson_instance, small_integral_instance

KS = [1.2, 1.5, optimal_profit_k(), 2.0, 2.5, 3.0]


def test_e6_k_sweep_vs_exact_opt(benchmark):
    seeds = range(25)
    instances = [small_integral_instance(6, seed=s, max_length=6) for s in seeds]
    opts = [exact_optimal_span(inst) for inst in instances]

    table = Table(
        ["k", "theory bound", "measured mean", "measured worst", "bound held"],
        title="E6: Profit k sweep vs exact optimum (25 random instances)",
        precision=3,
    )
    for k in KS:
        ratios = []
        for inst, opt in zip(instances, opts):
            result = simulate(Profit(k=k), inst, clairvoyant=True)
            ratios.append(result.span / opt)
        bound = profit_ratio(k)
        held = max(ratios) <= bound + 1e-9
        assert held
        table.add(k, bound, float(np.mean(ratios)), max(ratios), held)
    print()
    table.print()

    inst = instances[0]
    benchmark(lambda: simulate(Profit(), inst, clairvoyant=True).span)


def test_e6_theory_minimum_at_k_star(benchmark):
    grid = np.linspace(1.05, 4.0, 400)
    values = [profit_ratio(k) for k in grid]
    arg = grid[int(np.argmin(values))]
    assert abs(arg - optimal_profit_k()) < 0.05
    assert min(values) == pytest.approx(optimal_profit_ratio(), rel=1e-4)
    print(
        f"\nE6: bound minimised at k={arg:.4f} "
        f"(paper k*={optimal_profit_k():.4f}), value {min(values):.4f} "
        f"(paper 4+2√2={optimal_profit_ratio():.4f})"
    )
    benchmark(lambda: [profit_ratio(k) for k in grid])


def test_e6_flag_forest_structure(benchmark):
    """Lemmas 4.6 and 4.7 verified over 30 random runs; statistics on
    forest shape printed (Figure 6's object)."""
    tree_counts = []
    heights = []
    for seed in range(30):
        inst = poisson_instance(50, seed=seed, laxity_scale=1.5)
        result = simulate(Profit(), inst, clairvoyant=True)
        flags = result.scheduler.flag_job_ids
        assert check_lemma_4_6(result.instance, flags)
        forest = build_flag_forest(result.instance, flags)
        assert check_forest_property(forest)
        tree_counts.append(len(forest.roots))
        heights.extend(forest.height(r) for r in forest.roots)
    print(
        f"\nE6: flag forests over 30 runs — mean trees/run "
        f"{np.mean(tree_counts):.1f}, max tree height {max(heights)}, "
        "all forests valid (Lemma 4.7), all completion orders valid "
        "(Lemma 4.6)"
    )

    inst = poisson_instance(50, seed=0, laxity_scale=1.5)

    def run():
        result = simulate(Profit(), inst, clairvoyant=True)
        forest = build_flag_forest(
            result.instance, result.scheduler.flag_job_ids
        )
        return len(forest.roots)

    benchmark(run)
