"""E14 — laxity sensitivity: the paper's core premise, quantified.

The entire point of FJS is that *laxity buys parallelism*: with zero
laxity every scheduler is Eager; with unlimited laxity an offline-ish
scheduler packs everything into ~max p.  This experiment sweeps the
laxity budget (as a multiple of job length) and measures each
scheduler's span normalised by total work, showing

* all schedulers coincide at laxity 0,
* laxity-aware schedulers (Batch+, Profit, GreedyCover) convert laxity
  into span reduction monotonically,
* Eager is laxity-blind (its curve is flat by construction).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import Table
from repro.core import simulate
from repro.offline import span_lower_bound
from repro.schedulers import BatchPlus, Eager, GreedyCover, Lazy, Profit
from repro.workloads import WorkloadSpec, generate

SCHEDULERS = [
    ("eager", lambda: Eager(), False),
    ("lazy", lambda: Lazy(), False),
    ("batch+", lambda: BatchPlus(), False),
    ("profit", lambda: Profit(), True),
    ("greedy-cover", lambda: GreedyCover(theta=0.75), True),
]
SEEDS = range(4)
LAXITY_SCALES = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0]


def spans_at(laxity_scale: float) -> dict[str, float]:
    spans = {name: [] for name, _, _ in SCHEDULERS}
    for seed in SEEDS:
        inst = generate(
            WorkloadSpec(n=80, laxity="proportional", laxity_scale=laxity_scale),
            seed=seed,
        )
        for name, make, clair in SCHEDULERS:
            result = simulate(make(), inst, clairvoyant=clair)
            spans[name].append(result.span / inst.total_work)
    return {name: float(np.mean(v)) for name, v in spans.items()}


def test_e14_laxity_sweep(benchmark):
    table = Table(
        ["laxity ×p", *[n for n, _, _ in SCHEDULERS], "chain LB"],
        title="E14: span / total work vs laxity budget (80 jobs, 4 seeds)",
        precision=3,
    )
    curves: dict[str, list[float]] = {n: [] for n, _, _ in SCHEDULERS}
    lbs = []
    for scale in LAXITY_SCALES:
        row = spans_at(scale)
        lb = float(
            np.mean(
                [
                    span_lower_bound(
                        generate(
                            WorkloadSpec(
                                n=80, laxity="proportional", laxity_scale=scale
                            ),
                            seed=s,
                        )
                    )
                    / generate(
                        WorkloadSpec(
                            n=80, laxity="proportional", laxity_scale=scale
                        ),
                        seed=s,
                    ).total_work
                    for s in SEEDS
                ]
            )
        )
        lbs.append(lb)
        for name in curves:
            curves[name].append(row[name])
        table.add(scale, *[row[n] for n, _, _ in SCHEDULERS], lb)
    print()
    table.print()

    # At zero laxity all schedulers coincide (every window is a point).
    zero = [curves[n][0] for n, _, _ in SCHEDULERS]
    assert max(zero) - min(zero) < 1e-9

    # Laxity-aware schedulers improve substantially with laxity …
    for name in ("batch+", "profit", "greedy-cover"):
        assert curves[name][-1] < 0.75 * curves[name][0], name
    # … while Eager cannot improve at all (it ignores the window).
    assert abs(curves["eager"][-1] - curves["eager"][0]) < 1e-9

    benchmark(lambda: spans_at(2.0))


def test_e14_mmpp_regime_switching(benchmark):
    """Under MMPP regime switching the laxity dividend persists: Batch+
    and Profit still beat Eager clearly at moderate laxity."""
    from repro.workloads.processes import mmpp_instance

    table = Table(
        ["scheduler", "mean span ratio vs LB"],
        title="E14: MMPP arrivals (4 seeds, laxity ×2)",
        precision=3,
    )
    means = {}
    for name, make, clair in SCHEDULERS:
        vals = []
        for seed in SEEDS:
            inst = mmpp_instance(80, seed=seed)
            result = simulate(make(), inst, clairvoyant=clair)
            vals.append(result.span / span_lower_bound(inst))
        means[name] = float(np.mean(vals))
        table.add(name, means[name])
    print()
    table.print()
    assert means["batch+"] < means["eager"]
    assert means["profit"] < means["eager"]

    inst = mmpp_instance(80, seed=0)
    benchmark(lambda: simulate(BatchPlus(), inst).span)
