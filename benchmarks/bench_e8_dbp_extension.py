"""E8 — Paper §5: generalized MinUsageTime Dynamic Bin Packing.

Runs the scheduler ∘ packer pipelines the concluding remarks propose
(Batch+ ∘ FirstFit, Profit ∘ CD-FirstFit) against the rigid Eager
baseline across a capacity sweep, reporting total usage time over the
certified lower bound ``max(span LB, Σ size·p / C)``.

Reproduced shape: at tight capacity the work term dominates and all
pipelines are within a small factor of the LB; once capacity is
generous the span term dominates and the flexible pipelines beat the
rigid baseline (whose usage is pinned to the *unscheduled* span).
"""

from __future__ import annotations

from repro.analysis import Table
from repro.dbp import (
    ClassifyByDurationFirstFit,
    FirstFit,
    run_pipeline,
    usage_lower_bound,
)
from repro.schedulers import BatchPlus, Eager, Profit
from repro.workloads import batch_window_instance


def test_e8_capacity_sweep(benchmark):
    inst = batch_window_instance(200, seed=2)
    table = Table(
        [
            "capacity",
            "usage LB",
            "Eager∘FF",
            "Batch+∘FF",
            "Profit∘CD-FF",
            "flexible wins",
        ],
        title="E8: total usage time vs certified LB (batch-window workload)",
        precision=2,
    )
    flexible_won_at_high_capacity = False
    for cap in (1.0, 4.0, 16.0, 64.0):
        lb = usage_lower_bound(inst, cap)
        rigid = run_pipeline(Eager(), FirstFit(cap), inst).total_usage_time
        bp = run_pipeline(BatchPlus(), FirstFit(cap), inst).total_usage_time
        pr = run_pipeline(
            Profit(), ClassifyByDurationFirstFit(cap), inst
        ).total_usage_time
        for usage in (rigid, bp, pr):
            assert usage >= lb - 1e-9  # LB soundness
        wins = min(bp, pr) < rigid
        if cap >= 64.0:
            flexible_won_at_high_capacity = wins
        table.add(cap, lb, rigid / lb, bp / lb, pr / lb, wins)
    print()
    table.print()
    # the paper's §5 promise materialises once the span term dominates
    assert flexible_won_at_high_capacity

    benchmark(
        lambda: run_pipeline(BatchPlus(), FirstFit(4.0), inst).total_usage_time
    )


def test_e8_usage_between_span_and_work(benchmark):
    """Structural sanity across workload seeds: span <= usage <= Σp."""
    for seed in range(5):
        inst = batch_window_instance(120, seed=seed)
        result = run_pipeline(BatchPlus(), FirstFit(2.0), inst)
        assert result.span - 1e-9 <= result.total_usage_time
        assert result.total_usage_time <= inst.total_work + 1e-9
    print("\nE8: span <= usage <= total work held on all seeds")
    inst = batch_window_instance(120, seed=0)
    benchmark(
        lambda: run_pipeline(BatchPlus(), FirstFit(2.0), inst).total_usage_time
    )
