"""E13 — ablation: how much does *principled* waiting buy?

The paper's schedulers all delay starts to manufacture overlap; this
ablation sweeps the two natural waiting knobs against certified ratio
brackets:

* ``WaitScale(β)`` — wait ``β × own length`` (β=1 ≈ Doubler's rule);
* ``GreedyCover(θ)`` — start once a θ-fraction of the run is covered;

and compares their best settings with Profit (whose waiting is
*guarantee-driven*, not heuristic).

Measured shape (recorded in EXPERIMENTS.md): *blind* waiting does not
pay — WaitScale's curve is flat-to-worse in β on stochastic workloads —
while *overlap-aware* waiting pays substantially (GreedyCover's interior
θ beats both endpoints by >30%).  Neither heuristic escapes the §4.1
adversary, and only Profit carries a worst-case guarantee.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import Table
from repro.core import simulate
from repro.offline import best_offline_span
from repro.schedulers import GreedyCover, Profit, WaitScale
from repro.workloads import bimodal_instance, poisson_instance

INSTANCES = [poisson_instance(70, seed=s) for s in range(4)] + [
    bimodal_instance(70, seed=s, mu=10.0) for s in range(4)
]


def mean_ratio(make_sched, refs):
    vals = []
    for inst, ref in zip(INSTANCES, refs):
        result = simulate(make_sched(), inst, clairvoyant=True)
        vals.append(result.span / ref)
    return float(np.mean(vals))


def test_e13_waitscale_beta_sweep(benchmark):
    refs = [best_offline_span(inst) for inst in INSTANCES]
    table = Table(
        ["β", "mean ratio (piggyback)", "mean ratio (no piggyback)"],
        title="E13: WaitScale β sweep (8 mixed workloads)",
        precision=3,
    )
    curve = {}
    for beta in (0.0, 0.25, 0.5, 1.0, 2.0, 4.0):
        with_pb = mean_ratio(lambda b=beta: WaitScale(beta=b), refs)
        without = mean_ratio(
            lambda b=beta: WaitScale(beta=b, piggyback=False), refs
        )
        curve[beta] = with_pb
        table.add(beta, with_pb, without)
        # piggybacking never hurts on average (it only removes span).
        assert with_pb <= without + 0.02
    print()
    table.print()
    # Finding: blind waiting never helps much on stochastic workloads —
    # the whole β curve stays within ~10% of the Eager endpoint (the
    # benefit of waiting comes from *overlap awareness*, cf. GreedyCover).
    assert max(curve.values()) <= 1.15 * curve[0.0]

    benchmark(
        lambda: simulate(WaitScale(beta=1.0), INSTANCES[0], clairvoyant=True).span
    )


def test_e13_greedycover_theta_sweep(benchmark):
    refs = [best_offline_span(inst) for inst in INSTANCES]
    table = Table(
        ["θ", "mean ratio"],
        title="E13: GreedyCover θ sweep (8 mixed workloads)",
        precision=3,
    )
    curve = {}
    for theta in (0.0, 0.25, 0.5, 0.75, 1.0):
        curve[theta] = mean_ratio(lambda t=theta: GreedyCover(theta=t), refs)
        table.add(theta, curve[theta])
    print()
    table.print()
    assert min(curve.values()) <= curve[0.0] + 1e-9

    benchmark(
        lambda: simulate(
            GreedyCover(theta=0.5), INSTANCES[0], clairvoyant=True
        ).span
    )


def test_e13_heuristics_vs_profit_adversarial(benchmark):
    """On the §4.1 adversary the heuristics cannot beat φ either, and on
    average workloads Profit remains competitive with their tuned best —
    guarantees come cheap here."""
    from repro.adversaries import ClairvoyantLowerBoundAdversary

    refs = [best_offline_span(inst) for inst in INSTANCES]
    profit_mean = mean_ratio(lambda: Profit(), refs)
    ws_best = min(
        mean_ratio(lambda b=b: WaitScale(beta=b), refs) for b in (0.5, 1.0, 2.0)
    )
    gc_best = min(
        mean_ratio(lambda t=t: GreedyCover(theta=t), refs)
        for t in (0.25, 0.5, 0.75)
    )
    rows = []
    for name, make in (
        ("profit", lambda: Profit()),
        ("wait-scale β=1", lambda: WaitScale(beta=1.0)),
        ("greedy-cover θ=0.5", lambda: GreedyCover(theta=0.5)),
    ):
        adv = ClairvoyantLowerBoundAdversary(40)
        result = simulate(make(), adversary=adv, clairvoyant=True)
        witness = adv.paper_optimal_schedule(result.instance)
        ratio = result.span / witness.span
        assert ratio >= 1.55  # nobody escapes Theorem 4.1
        rows.append((name, ratio))
    table = Table(
        ["scheduler", "forced ratio (§4.1, n=40)"],
        title=(
            "E13: adversarial check — mean workload ratios: "
            f"profit {profit_mean:.3f}, wait-scale best {ws_best:.3f}, "
            f"greedy-cover best {gc_best:.3f}"
        ),
        precision=4,
    )
    for row in rows:
        table.add(*row)
    print()
    table.print()
    # Profit is within 15% of the tuned heuristics on average workloads
    # while carrying a worst-case guarantee they lack.
    assert profit_mean <= 1.15 * min(ws_best, gc_best)

    benchmark(
        lambda: simulate(Profit(), INSTANCES[1], clairvoyant=True).span
    )
