"""E4 — Theorem 4.1 / Figure 4: the clairvoyant golden-ratio lower bound.

Replays the §4.1 adversary against every scheduler in the registry and
reproduces the forced ratio ``min(φ, nφ/(φ+n-1)) → φ``.
"""

from __future__ import annotations

import pytest

from repro.adversaries import PHI, ClairvoyantLowerBoundAdversary
from repro.analysis import Table, clairvoyant_adversary_ratio
from repro.core import simulate
from repro.schedulers import make_scheduler, scheduler_names


def force_ratio(name: str, n: int):
    sched = make_scheduler(name)
    adv = ClairvoyantLowerBoundAdversary(n)
    result = simulate(
        sched, adversary=adv, clairvoyant=type(sched).requires_clairvoyance
    )
    witness = adv.paper_optimal_schedule(result.instance)
    return result.span / witness.span, adv


def test_e4_all_schedulers(benchmark):
    n = 100
    theory = clairvoyant_adversary_ratio(n)
    table = Table(
        ["scheduler", "iters played", "stopped early", "ratio", "theory >="],
        title=f"E4: §4.1 adversary, n={n}, φ={PHI:.4f}",
        precision=4,
    )
    for name in scheduler_names():
        if name == "random":
            continue  # Theorem 4.1 covers deterministic schedulers
        ratio, adv = force_ratio(name, n)
        table.add(name, adv.iterations_played, adv.stopped_early, ratio, theory)
        assert ratio >= theory - 1e-9, f"{name} beat the adversary"
    print()
    table.print()
    benchmark(lambda: force_ratio("profit", n)[0])


def test_e4_convergence_to_phi(benchmark):
    """The forced ratio against a surviving scheduler rises to φ."""
    table = Table(
        ["n", "forced ratio (Profit)", "theory", "φ - ratio"],
        title="E4: convergence towards φ",
        precision=5,
    )
    prev = 0.0
    for n in (1, 2, 8, 32, 128, 512):
        ratio, _ = force_ratio("profit", n)
        table.add(n, ratio, clairvoyant_adversary_ratio(n), PHI - ratio)
        assert ratio >= prev - 1e-12
        prev = ratio
    print()
    table.print()
    assert PHI - prev < 0.005
    benchmark(lambda: force_ratio("batch+", 128)[0])
