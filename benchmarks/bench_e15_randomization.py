"""E15 — does randomization beat the deterministic lower bounds?

Theorems 3.3 and 4.1 bound *deterministic* schedulers.  The paper's
constructions are *adaptive*: the adversary reacts to realized actions,
so a randomized scheduler faces the same trap on every sample path —
randomization should buy (almost) nothing here, in contrast to oblivious
settings.  This experiment quantifies that:

* against the §4.1 adaptive adversary, RandomStart's *expected* forced
  ratio stays at or above φ-ish values (no free lunch);
* on stochastic workloads RandomStart is strictly dominated by the
  paper's deterministic schedulers (randomness ≠ cleverness).
"""

from __future__ import annotations

from repro.adversaries import PHI, ClairvoyantLowerBoundAdversary
from repro.analysis import (
    Table,
    estimate_adversarial_ratio,
    estimate_expected_ratio,
)
from repro.core import simulate
from repro.offline import best_offline_span
from repro.schedulers import BatchPlus, Profit, RandomStart
from repro.workloads import poisson_instance


def test_e15_randomization_vs_adaptive_adversary(benchmark):
    n = 30
    summary = estimate_adversarial_ratio(
        lambda seed: RandomStart(seed=seed),
        lambda: ClairvoyantLowerBoundAdversary(n),
        trials=40,
        clairvoyant=False,
    )
    lo, hi = summary.confidence_interval()
    table = Table(
        ["quantity", "value"],
        title=f"E15: RandomStart vs §4.1 adaptive adversary (n={n}, 40 trials)",
    )
    table.add("mean forced ratio", summary.mean)
    table.add("95% CI low", lo)
    table.add("95% CI high", hi)
    table.add("best trial", summary.best)
    table.add("worst trial", summary.worst)
    table.add("φ (deterministic LB)", PHI)
    print()
    table.print()

    # The adaptive adversary punishes every sample path: even the best
    # trial cannot fall meaningfully below the early-stop ratio φ·(small
    # -n correction), and the mean stays at/above ~φ.
    assert summary.best >= 1.5
    assert summary.mean >= PHI - 0.1

    benchmark(
        lambda: estimate_adversarial_ratio(
            lambda seed: RandomStart(seed=seed),
            lambda: ClairvoyantLowerBoundAdversary(10),
            trials=5,
            clairvoyant=False,
        ).mean
    )


def test_e15_randomization_on_workloads(benchmark, perf_runner):
    """Expected RandomStart ratio vs deterministic schedulers on random
    workloads: randomness is dominated."""
    table = Table(
        ["seed", "E[RandomStart] (95% CI)", "Batch+", "Profit"],
        title="E15: expected ratios vs offline heuristic (30 trials each)",
        precision=3,
    )
    for seed in range(3):
        inst = poisson_instance(60, seed=seed)
        ref = best_offline_span(inst)
        summary = estimate_expected_ratio(
            lambda s: RandomStart(seed=s), inst, ref, trials=30,
            runner=perf_runner,
        )
        bp = simulate(BatchPlus(), inst).span / ref
        pr = simulate(Profit(), inst, clairvoyant=True).span / ref
        lo, hi = summary.confidence_interval()
        table.add(seed, f"{summary.mean:.3f} [{lo:.3f}, {hi:.3f}]", bp, pr)
        # deterministic schedulers beat the randomized baseline's mean
        assert bp < summary.mean
        assert pr < summary.mean
    print()
    table.print()

    inst = poisson_instance(60, seed=0)
    ref = best_offline_span(inst)
    benchmark(
        lambda: estimate_expected_ratio(
            lambda s: RandomStart(seed=s), inst, ref, trials=5
        ).mean
    )
