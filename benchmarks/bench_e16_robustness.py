"""E16 — robustness: how stable are the ratios under perturbation?

Competitive analysis is worst-case; practitioners care whether measured
behaviour is *stable* around their workload.  This experiment perturbs a
base workload along two axes and tracks each scheduler's span ratio:

* **arrival jitter** — uniform noise on arrival times (deadlines move
  along, laxity preserved);
* **laxity scaling** — tighter/looser windows.

Reproduced shape: ratios vary smoothly (no cliff under jitter); under
laxity scaling the laxity-aware schedulers' advantage grows while
Eager's ratio is unchanged by construction — consistent with E14.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import Table
from repro.core import simulate
from repro.offline import span_lower_bound
from repro.schedulers import BatchPlus, Eager, Profit
from repro.workloads import jitter_arrivals, poisson_instance, scale_laxity

SCHEDULERS = [
    ("eager", lambda: Eager(), False),
    ("batch+", lambda: BatchPlus(), False),
    ("profit", lambda: Profit(), True),
]


def ratios_for(instances):
    out = {}
    for name, make, clair in SCHEDULERS:
        vals = []
        for inst in instances:
            result = simulate(make(), inst, clairvoyant=clair)
            vals.append(result.span / span_lower_bound(inst))
        out[name] = float(np.mean(vals))
    return out


def test_e16_jitter_stability(benchmark):
    base = [poisson_instance(60, seed=s) for s in range(4)]
    table = Table(
        ["jitter ±", *[n for n, _, _ in SCHEDULERS]],
        title="E16: mean ratio vs LB under arrival jitter",
        precision=3,
    )
    curves = {n: [] for n, _, _ in SCHEDULERS}
    for magnitude in (0.0, 0.5, 1.0, 2.0, 4.0):
        instances = [
            jitter_arrivals(inst, magnitude, seed=i)
            for i, inst in enumerate(base)
        ]
        row = ratios_for(instances)
        for n in curves:
            curves[n].append(row[n])
        table.add(magnitude, *[row[n] for n, _, _ in SCHEDULERS])
    print()
    table.print()

    # Stability: no scheduler's mean ratio moves by more than 35% across
    # the whole jitter sweep (no cliffs).
    for name, vals in curves.items():
        assert max(vals) <= 1.35 * min(vals), name

    inst = base[0]
    benchmark(lambda: simulate(BatchPlus(), jitter_arrivals(inst, 1.0)).span)


def test_e16_laxity_scaling(benchmark):
    base = [poisson_instance(60, seed=s) for s in range(4)]
    table = Table(
        ["laxity ×", *[n for n, _, _ in SCHEDULERS]],
        title="E16: mean ratio vs LB under laxity scaling",
        precision=3,
    )
    eager_first = batch_last = None
    for factor in (0.25, 0.5, 1.0, 2.0, 4.0):
        instances = [scale_laxity(inst, factor) for inst in base]
        row = ratios_for(instances)
        if factor == 0.25:
            eager_first = row["eager"]
        if factor == 4.0:
            batch_last = (row["batch+"], row["eager"])
        table.add(factor, *[row[n] for n, _, _ in SCHEDULERS])
    print()
    table.print()

    # With generous laxity the laxity-aware scheduler clearly beats Eager.
    assert batch_last is not None and batch_last[0] < batch_last[1]

    inst = base[0]
    benchmark(lambda: simulate(Profit(), scale_laxity(inst, 2.0), clairvoyant=True).span)
