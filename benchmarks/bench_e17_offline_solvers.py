"""E17 — ablation of our own offline machinery.

The harness's ratio denominators come from a toolbox of offline solvers;
this experiment quantifies their quality/cost trade-off so EXPERIMENTS
readers know how much to trust each:

* mean optimality gap vs the exact optimum on small instances
  (greedy < greedy+LS ≈ anneal ≈ beam ≤ exact, by construction);
* relative spans on larger instances where exact is infeasible;
* runtimes.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis import Table
from repro.offline import (
    anneal,
    beam_search_schedule,
    best_offline,
    exact_optimal_span,
    greedy_overlap,
    local_search,
    span_lower_bound,
)
from repro.workloads import poisson_instance, small_integral_instance

SOLVERS = {
    "greedy(deadline)": lambda inst: greedy_overlap(inst, "deadline"),
    "greedy+local": lambda inst: local_search(greedy_overlap(inst, "deadline")),
    "best_offline": lambda inst: best_offline(inst),
    "beam(w=8)": lambda inst: beam_search_schedule(inst, width=8),
    "anneal": lambda inst: anneal(
        greedy_overlap(inst, "deadline"), iterations=1500, seed=0
    ),
}


def test_e17_gap_vs_exact(benchmark):
    instances = [small_integral_instance(7, seed=s) for s in range(20)]
    opts = [exact_optimal_span(inst) for inst in instances]
    table = Table(
        ["solver", "mean gap vs OPT", "worst gap", "exact hits"],
        title="E17: offline solver quality on 20 small instances",
        precision=4,
    )
    gaps_by = {}
    for name, solve in SOLVERS.items():
        gaps = []
        hits = 0
        for inst, opt in zip(instances, opts):
            span = solve(inst).span
            assert span >= opt - 1e-9  # soundness: all are upper bounds
            gaps.append(span / opt - 1.0)
            if span <= opt + 1e-9:
                hits += 1
        gaps_by[name] = float(np.mean(gaps))
        table.add(name, float(np.mean(gaps)), max(gaps), f"{hits}/20")
    print()
    table.print()
    # the refined solvers never lose to plain greedy on average
    for name in ("greedy+local", "best_offline", "anneal"):
        assert gaps_by[name] <= gaps_by["greedy(deadline)"] + 1e-9

    inst = instances[0]
    benchmark(lambda: best_offline(inst).span)


def test_e17_large_instance_quality_and_runtime(benchmark):
    inst = poisson_instance(500, seed=1)
    lb = span_lower_bound(inst)
    table = Table(
        ["solver", "span", "vs chain LB", "runtime (s)"],
        title="E17: 500-job instance (exact infeasible)",
        precision=3,
    )
    spans = {}
    for name, solve in SOLVERS.items():
        t0 = time.perf_counter()
        span = solve(inst).span
        elapsed = time.perf_counter() - t0
        spans[name] = span
        table.add(name, span, span / lb, elapsed)
        assert span >= lb - 1e-9
    print()
    table.print()
    assert spans["best_offline"] <= spans["greedy(deadline)"] + 1e-9

    benchmark(lambda: greedy_overlap(inst, "deadline").span)
