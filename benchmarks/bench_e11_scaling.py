"""E11 — engineering scaling: engine throughput and solver runtimes.

Not a paper claim — the performance envelope a downstream user needs:

* events/second of the discrete-event engine across instance sizes;
* the vectorised union-measure sweep on large interval sets;
* exact-solver runtime growth vs instance size (with node statistics).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import simulate, union_measure
from repro.offline import exact_optimal_schedule
from repro.schedulers import BatchPlus, Profit
from repro.workloads import poisson_instance, small_integral_instance


@pytest.mark.parametrize("n", [1_000, 10_000])
def test_e11_engine_throughput_batchplus(benchmark, n):
    inst = poisson_instance(n, seed=0)
    result = benchmark(lambda: simulate(BatchPlus(), inst))
    events_per_run = result.events_processed
    print(f"\nE11: Batch+ on n={n}: {events_per_run} events/run")
    assert result.span > 0


@pytest.mark.parametrize("n", [1_000, 10_000])
def test_e11_engine_throughput_profit(benchmark, n):
    inst = poisson_instance(n, seed=0)
    result = benchmark(lambda: simulate(Profit(), inst, clairvoyant=True))
    assert result.span > 0


@pytest.mark.parametrize("n", [10_000, 100_000])
def test_e11_union_measure_vectorised(benchmark, n):
    rng = np.random.default_rng(0)
    starts = rng.uniform(0, 1e6, n)
    lengths = rng.uniform(0, 100, n)
    measure = benchmark(lambda: union_measure(starts, lengths))
    assert measure > 0


@pytest.mark.parametrize("n", [5, 7, 9])
def test_e11_exact_solver_scaling(benchmark, n):
    inst = small_integral_instance(n, seed=1)
    result = benchmark(lambda: exact_optimal_schedule(inst))
    print(
        f"\nE11: exact solver n={n}: {result.nodes_explored} nodes, "
        f"{result.memo_hits} memo hits"
    )
    assert result.span > 0
