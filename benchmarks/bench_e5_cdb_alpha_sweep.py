"""E5 — Theorem 4.4 / Figure 5: Classify-by-Duration Batch+ α-sweep.

Two claims reproduced:

* the theory bound ``3α + 4 + 2/(α-1)`` is minimised at α* = 1+√(2/3)
  with value 7+2√6 ≈ 11.90, and the measured worst ratio never crosses
  the bound at any α (verified against the exact optimum);
* across an α sweep the measured ratios stay far below the bound on
  random workloads (the bound is a worst-case envelope).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import Table, cdb_ratio, optimal_cdb_alpha, optimal_cdb_ratio
from repro.core import simulate
from repro.offline import exact_optimal_span
from repro.schedulers import ClassifyByDurationBatchPlus
from repro.workloads import bimodal_instance, small_integral_instance

ALPHAS = [1.2, 1.5, optimal_cdb_alpha(), 2.0, 3.0, 4.0]


def test_e5_alpha_sweep_vs_exact_opt(benchmark):
    seeds = range(25)
    instances = [small_integral_instance(6, seed=s, max_length=6) for s in seeds]
    opts = [exact_optimal_span(inst) for inst in instances]

    table = Table(
        ["α", "theory bound", "measured mean", "measured worst", "bound held"],
        title="E5: CDB α sweep vs exact optimum (25 random instances)",
        precision=3,
    )
    for alpha in ALPHAS:
        ratios = []
        for inst, opt in zip(instances, opts):
            result = simulate(
                ClassifyByDurationBatchPlus(alpha=alpha), inst, clairvoyant=True
            )
            ratios.append(result.span / opt)
        bound = cdb_ratio(alpha)
        held = max(ratios) <= bound + 1e-9
        assert held
        table.add(alpha, bound, float(np.mean(ratios)), max(ratios), held)
    print()
    table.print()

    inst = instances[0]
    benchmark(
        lambda: simulate(
            ClassifyByDurationBatchPlus(), inst, clairvoyant=True
        ).span
    )


def test_e5_theory_minimum_at_alpha_star(benchmark):
    """The bound curve's minimum sits at α* (paper: 7+2√6 ≈ 11.90)."""
    grid = np.linspace(1.05, 6.0, 400)
    values = [cdb_ratio(a) for a in grid]
    arg = grid[int(np.argmin(values))]
    assert abs(arg - optimal_cdb_alpha()) < 0.05
    assert min(values) == pytest.approx(optimal_cdb_ratio(), rel=1e-4)
    print(
        f"\nE5: bound minimised at α={arg:.4f} "
        f"(paper α*={optimal_cdb_alpha():.4f}), value "
        f"{min(values):.4f} (paper 7+2√6={optimal_cdb_ratio():.4f})"
    )
    benchmark(lambda: [cdb_ratio(a) for a in grid])


def test_e5_category_count_matches_log_mu(benchmark):
    """The classification produces ceil(log_α μ)+1-ish categories."""
    inst = bimodal_instance(200, seed=0, mu=16.0)
    alpha = 2.0
    result = simulate(
        ClassifyByDurationBatchPlus(alpha=alpha), inst, clairvoyant=True
    )
    n_cats = result.scheduler.num_categories
    assert n_cats <= int(np.ceil(np.log(16.0) / np.log(alpha))) + 1
    print(f"\nE5: μ=16, α=2 → {n_cats} non-empty categories (cap {int(np.ceil(np.log(16.0)/np.log(alpha)))+1})")
    benchmark(
        lambda: simulate(
            ClassifyByDurationBatchPlus(alpha=alpha), inst, clairvoyant=True
        ).span
    )
