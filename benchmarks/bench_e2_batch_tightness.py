"""E2 — Theorem 3.4 / Figure 2: Batch's tightness family.

Runs Batch on the three-group construction and reproduces the forced
ratio ``2mμ / (m(1+ε) + μ) → 2μ``, checking it never crosses the
``2μ+1`` upper bound.
"""

from __future__ import annotations

import pytest

from repro.adversaries import batch_tightness_instance
from repro.analysis import Table, batch_lower_bound, batch_upper_bound
from repro.core import simulate
from repro.schedulers import Batch

EPS = 1e-3


@pytest.mark.parametrize("mu", [2.0, 5.0, 10.0])
def test_e2_ratio_series(benchmark, mu):
    table = Table(
        ["m", "Batch span", "witness span", "ratio", "limit 2μ", "cap 2μ+1"],
        title=f"E2: Figure 2 family, μ={mu:g}",
        precision=3,
    )
    last_ratio = 0.0
    for m in (1, 4, 16, 64, 256):
        fam = batch_tightness_instance(m=m, mu=mu, epsilon=EPS)
        result = simulate(Batch(), fam.instance)
        ratio = result.span / fam.optimal_span
        expected = 2 * m * mu / (m * (1 + EPS) + mu)
        assert ratio == pytest.approx(expected, rel=1e-9)
        assert ratio <= batch_upper_bound(mu) + 1e-9
        assert ratio > last_ratio  # monotone approach to 2μ
        last_ratio = ratio
        table.add(m, result.span, fam.optimal_span, ratio,
                  batch_lower_bound(mu), batch_upper_bound(mu))
    print()
    table.print()
    # by m=256 the ratio is within 5% of the 2μ limit
    assert last_ratio >= 0.95 * batch_lower_bound(mu)

    # Extrapolate the measured sequence: it must converge to the exact
    # finite-ε limit 2μ/(1+ε) (which → 2μ as ε → 0).
    from repro.analysis import fit_limit

    ms = [1, 4, 16, 64, 256]
    ratios = []
    for m in ms:
        fam = batch_tightness_instance(m=m, mu=mu, epsilon=EPS)
        ratios.append(simulate(Batch(), fam.instance).span / fam.optimal_span)
    fit = fit_limit(ms, ratios)
    expected_limit = 2 * mu / (1 + EPS)
    assert fit.limit == pytest.approx(expected_limit, rel=1e-6)
    print(
        f"extrapolated limit {fit.limit:.6f} = 2μ/(1+ε) "
        f"(→ 2μ = {2 * mu:g} as ε → 0)"
    )

    fam = batch_tightness_instance(m=64, mu=mu, epsilon=EPS)
    benchmark(lambda: simulate(Batch(), fam.instance).span)
