"""E19 — ablation of the certified lower bounds.

Three lower bounds feed the harness's ratio denominators; this
experiment measures their tightness against exact optima across the
laxity spectrum (where each bound's regime lives):

* **chain** — needs disjoint reach windows; strongest when laxity and
  arrival gaps are large;
* **mandatory** — needs laxity < p; strongest on rigid-ish workloads;
* **LP relaxation** — sees window geometry; dominates in the middle.

Reported: mean LB/OPT per bound per laxity scale (1.0 = perfect).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import Table
from repro.offline import (
    chain_lower_bound,
    exact_optimal_span_decomposed,
    lp_lower_bound,
    mandatory_lower_bound,
)
from repro.core.errors import SolverError
from repro.workloads import WorkloadSpec, generate

SEEDS = range(8)


def instances_at(scale: float):
    out = []
    for seed in SEEDS:
        inst = generate(
            WorkloadSpec(
                n=30,
                arrival_rate=0.25,
                laxity="proportional",
                laxity_scale=scale,
                length_high=4.0,
                integral=True,
            ),
            seed=seed,
        )
        try:
            opt = exact_optimal_span_decomposed(inst, max_component=14)
        except SolverError:
            continue
        out.append((inst, opt))
    return out


def test_e19_tightness_by_laxity(benchmark):
    table = Table(
        ["laxity ×p", "chain/OPT", "mandatory/OPT", "LP/OPT", "best/OPT", "n inst"],
        title="E19: lower-bound tightness vs exact optimum",
        precision=3,
    )
    best_by_scale = {}
    for scale in (0.0, 0.5, 1.0, 2.0, 4.0):
        rows = {"chain": [], "mand": [], "lp": [], "best": []}
        pairs = instances_at(scale)
        for inst, opt in pairs:
            ch = chain_lower_bound(inst) / opt
            ma = mandatory_lower_bound(inst) / opt
            lp = lp_lower_bound(inst, max_slots=600) / opt
            rows["chain"].append(ch)
            rows["mand"].append(ma)
            rows["lp"].append(lp)
            rows["best"].append(max(ch, ma, lp))
            # soundness of all three
            assert max(ch, ma, lp) <= 1.0 + 1e-6
        means = {k: float(np.mean(v)) for k, v in rows.items()}
        best_by_scale[scale] = means
        table.add(
            scale,
            means["chain"],
            means["mand"],
            means["lp"],
            means["best"],
            len(pairs),
        )
    print()
    table.print()

    # regimes: mandatory is perfect on rigid workloads; LP dominates the
    # combinatorial bounds in the mid-laxity regime.
    assert best_by_scale[0.0]["mand"] == pytest.approx(1.0, abs=1e-6)
    mid = best_by_scale[1.0]
    assert mid["lp"] >= max(mid["chain"], mid["mand"]) - 1e-9

    pairs = instances_at(1.0)
    inst = pairs[0][0]
    benchmark(lambda: lp_lower_bound(inst, max_slots=600))


import pytest  # noqa: E402  (used in assertions above)
