"""E12 — ablation: packing policy under the DBP extension.

DESIGN.md's §5 pipelines fix First Fit (the policy with proven
MinUsageTime guarantees [20, 23]); this ablation swaps the packer while
holding the scheduler fixed, measuring how much of the pipeline's
quality comes from the packing policy:

* FirstFit — the reference;
* BestFit  — classically strong for space, known to be weak for usage
  time;
* NextFit  — the weakest reasonable baseline;
* CD-FirstFit — the classify-by-duration variant of [19].

Reproduced shape: FirstFit ≤ NextFit in bins and usage on every
workload; CD-FF trades extra bins for duration-aligned busy periods.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import Table
from repro.dbp import (
    BestFit,
    ClassifyByDurationFirstFit,
    FirstFit,
    NextFit,
    run_pipeline,
    usage_lower_bound,
)
from repro.schedulers import BatchPlus
from repro.workloads import batch_window_instance, cloud_instance

PACKERS = {
    "FirstFit": lambda cap: FirstFit(cap),
    "BestFit": lambda cap: BestFit(cap),
    "NextFit": lambda cap: NextFit(cap),
    "CD-FirstFit": lambda cap: ClassifyByDurationFirstFit(cap),
}


def test_e12_packer_grid(benchmark):
    cap = 1.0
    workloads = {
        "cloud": [cloud_instance(seed=s) for s in range(3)],
        "batch-window": [batch_window_instance(150, seed=s) for s in range(3)],
    }
    table = Table(
        ["workload", *PACKERS.keys()],
        title=f"E12: mean usage/LB per packer (scheduler: Batch+, capacity {cap:g})",
        precision=3,
    )
    usage_by = {}
    for wname, instances in workloads.items():
        means = {}
        for pname, make in PACKERS.items():
            vals = []
            for inst in instances:
                lb = usage_lower_bound(inst, cap)
                result = run_pipeline(BatchPlus(), make(cap), inst)
                vals.append(result.total_usage_time / lb)
            means[pname] = float(np.mean(vals))
        usage_by[wname] = means
        table.add(wname, *[means[p] for p in PACKERS])
    print()
    table.print()

    # FirstFit never loses to NextFit on average.
    for wname, means in usage_by.items():
        assert means["FirstFit"] <= means["NextFit"] + 1e-9, wname

    inst = cloud_instance(seed=0)
    benchmark(
        lambda: run_pipeline(BatchPlus(), FirstFit(cap), inst).total_usage_time
    )


def test_e12_bin_counts(benchmark):
    """Server-count ablation: FirstFit uses no more bins than NextFit."""
    table = Table(
        ["seed", "FirstFit bins", "BestFit bins", "NextFit bins"],
        title="E12: bins opened (cloud workload, capacity 1)",
        precision=0,
    )
    for seed in range(4):
        inst = cloud_instance(seed=seed)
        counts = {}
        for pname, make in (
            ("ff", lambda: FirstFit(1.0)),
            ("bf", lambda: BestFit(1.0)),
            ("nf", lambda: NextFit(1.0)),
        ):
            counts[pname] = run_pipeline(BatchPlus(), make(), inst).bins_used
        assert counts["ff"] <= counts["nf"]
        table.add(seed, counts["ff"], counts["bf"], counts["nf"])
    print()
    table.print()

    inst = cloud_instance(seed=0)
    benchmark(lambda: run_pipeline(BatchPlus(), NextFit(1.0), inst).bins_used)
