"""E18 — harness capability envelope: exact-certification coverage.

When can this library report *exact* competitive ratios rather than
brackets?  Exact solving scales with the largest independent component
(reach-window decomposition), which shrinks as workloads get sparser.
This experiment maps the envelope: fraction of instances certified
exactly, and largest-component sizes, as a function of arrival rate.

Shape: coverage falls off as rate·laxity grows (components merge);
on the sparse side whole 80-job instances certify exactly in
milliseconds — far beyond the naive ≤10-job limit.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import Table, bracket_optimum
from repro.offline import split_independent
from repro.workloads import WorkloadSpec, generate

SEEDS = range(6)
N = 80


def test_e18_coverage_vs_rate(benchmark):
    table = Table(
        ["arrival rate", "exact certified", "mean max component", "mean components"],
        title=f"E18: exact-certification coverage (n={N}, 6 seeds, laxity ×0.5)",
        precision=2,
    )
    coverage = {}
    for rate in (0.02, 0.05, 0.1, 0.3, 1.0):
        exact = 0
        max_comps = []
        counts = []
        for seed in SEEDS:
            inst = generate(
                WorkloadSpec(
                    n=N, arrival_rate=rate, laxity_scale=0.5, integral=True
                ),
                seed=seed,
            )
            comps = split_independent(inst)
            max_comps.append(max(len(c) for c in comps))
            counts.append(len(comps))
            if bracket_optimum(inst).exact:
                exact += 1
        coverage[rate] = exact
        table.add(
            rate,
            f"{exact}/{len(list(SEEDS))}",
            float(np.mean(max_comps)),
            float(np.mean(counts)),
        )
    print()
    table.print()

    # sparse side fully certified; dense side not
    assert coverage[0.02] == len(list(SEEDS))
    assert coverage[1.0] < len(list(SEEDS))

    inst = generate(
        WorkloadSpec(n=N, arrival_rate=0.05, laxity_scale=0.5, integral=True),
        seed=0,
    )
    benchmark(lambda: bracket_optimum(inst).lower)
