"""E7 — §3.2's opening remark: Eager and Lazy have unbounded ratios.

Even at *fixed* μ = 1, scaling families drive both baselines' span ratio
to infinity, while Batch+ stays pinned at its μ+1 = 2 bound:

* **anti-Eager family** — n unit jobs arriving 1 apart with huge laxity:
  Eager serialises (span n), the optimum batches at a common time
  (span 1);
* **anti-Lazy family** — n unit jobs arriving together with deadlines
  spread n apart: Lazy serialises, the optimum starts all at arrival.
"""

from __future__ import annotations

import pytest

from repro.analysis import Table
from repro.core import Instance, Job, simulate
from repro.offline import best_offline_span
from repro.schedulers import BatchPlus, Eager, Lazy


def anti_eager(n: int) -> Instance:
    return Instance(
        [Job(i, float(i), float(n + 1), 1.0) for i in range(n)],
        name=f"anti-eager({n})",
    )


def anti_lazy(n: int) -> Instance:
    return Instance(
        [Job(i, 0.0, float(2 * i), 1.0) for i in range(n)],
        name=f"anti-lazy({n})",
    )


def test_e7_unbounded_growth(benchmark):
    table = Table(
        ["n", "Eager ratio", "Lazy ratio", "Batch+ ratio (anti-eager)"],
        title="E7: ratio growth at fixed μ=1 (reference: offline heuristic)",
        precision=2,
    )
    eager_ratios = []
    lazy_ratios = []
    for n in (4, 16, 64, 256):
        ae, al = anti_eager(n), anti_lazy(n)
        opt_ae = best_offline_span(ae)
        opt_al = best_offline_span(al)
        r_eager = simulate(Eager(), ae).span / opt_ae
        r_lazy = simulate(Lazy(), al).span / opt_al
        r_bp = simulate(BatchPlus(), ae).span / opt_ae
        eager_ratios.append(r_eager)
        lazy_ratios.append(r_lazy)
        # Batch+ respects its μ+1 = 2 bound on both families.
        assert r_bp <= 2.0 + 1e-9
        assert simulate(BatchPlus(), al).span / opt_al <= 2.0 + 1e-9
        table.add(n, r_eager, r_lazy, r_bp)
    print()
    table.print()

    # unbounded: the ratio scales linearly with n for both baselines.
    assert eager_ratios[-1] >= 0.9 * 256
    assert lazy_ratios[-1] >= 0.9 * 256
    assert all(b > 3 * a for a, b in zip(eager_ratios, eager_ratios[1:]))

    inst = anti_eager(64)
    benchmark(lambda: simulate(Eager(), inst).span)


def test_e7_optimum_is_constant(benchmark):
    """The witness optimum stays O(1) as the families scale — confirming
    the ratio growth comes from the schedulers, not the instances."""
    for n in (4, 32, 256):
        assert best_offline_span(anti_eager(n)) <= 2.0 + 1e-9
        assert best_offline_span(anti_lazy(n)) == pytest.approx(1.0)
    print("\nE7: witness optima are O(1) across the scaling families")
    benchmark(lambda: best_offline_span(anti_eager(64)))
