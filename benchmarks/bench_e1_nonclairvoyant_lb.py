"""E1 — Theorem 3.3 / Figure 1: the non-clairvoyant lower bound.

Replays the §3.1 adaptive adversary against every non-clairvoyant
scheduler and reports the forced span ratio next to the theory value

    min{ √N₁, min_i ((i-1)μ + √N_i)/(μ+i-1), (kμ+1)/(μ+k) }  →  μ.

Reproduction claims asserted:
* every scheduler's forced ratio meets the theory formula for its profile;
* the forced ratio against batching schedulers grows with k towards μ.
"""

from __future__ import annotations

import pytest

from repro.adversaries import (
    NonClairvoyantLowerBoundAdversary,
    geometric_profile,
    paper_profile,
)
from repro.analysis import Table, nonclairvoyant_lower_bound
from repro.core import simulate
from repro.offline.heuristics import greedy_overlap
from repro.schedulers import Batch, BatchPlus, Eager, Lazy

SCHEDULERS = [Eager, Lazy, Batch, BatchPlus]


def force_ratio(scheduler_cls, mu, profile):
    adv = NonClairvoyantLowerBoundAdversary(mu, profile)
    result = simulate(scheduler_cls(), adversary=adv, clairvoyant=False)
    # Reference = the best feasible offline schedule we can construct:
    # the paper's witness, refined by the greedy-overlap heuristic (the
    # laxity cap can loosen the witness against extreme-delay schedulers
    # such as Lazy — DESIGN.md §5).
    reference = min(
        adv.paper_optimal_schedule(result.instance).span,
        greedy_overlap(result.instance, "deadline").span,
        greedy_overlap(result.instance, "arrival").span,
    )
    return result.span / reference, adv, result


@pytest.mark.parametrize("mu", [2.0, 5.0, 10.0])
def test_e1_scaled_profile_ratio_table(benchmark, mu):
    """Forced ratios across k for the scaled (geometric) profile."""
    m = 16
    table = Table(
        ["k", "theory >=", *[c.__name__ for c in SCHEDULERS]],
        title=f"E1: §3.1 adversary, μ={mu:g}, m={m} (scaled profile)",
        precision=3,
    )
    rows = {}
    for k in (1, 2, 4, 8):
        profile = geometric_profile(k, m)
        counts = [it.count for it in profile.iterations]
        theory = nonclairvoyant_lower_bound(k, mu, counts)
        ratios = []
        for cls in SCHEDULERS:
            ratio, adv, _ = force_ratio(cls, mu, profile)
            ratios.append(ratio)
            assert ratio >= theory - 1e-9, f"{cls.__name__} beat the adversary"
        rows[k] = ratios
        table.add(k, theory, *ratios)
    print()
    table.print()

    # The forced ratio against always-batching schedulers grows with k.
    batch_ratios = [rows[k][2] for k in (1, 2, 4, 8)]
    assert all(b > a for a, b in zip(batch_ratios, batch_ratios[1:]))
    assert batch_ratios[-1] >= (8 * mu + 1) / (mu + 8) - 1e-9

    benchmark(lambda: force_ratio(Batch, mu, geometric_profile(4, m))[0])


def test_e1_paper_profile_k1(benchmark):
    """The exact paper profile at k=1 (16 jobs, threshold 4)."""
    mu = 5.0
    profile = paper_profile(1)
    table = Table(
        ["scheduler", "iters", "ratio", "theory >="],
        title="E1: §3.1 adversary, paper profile k=1, μ=5",
        precision=3,
    )
    theory = nonclairvoyant_lower_bound(1, mu, [16])
    for cls in SCHEDULERS:
        ratio, adv, _ = force_ratio(cls, mu, profile)
        table.add(cls.__name__, adv.iterations_released, ratio, theory)
        assert ratio >= theory - 1e-9
    print()
    table.print()
    benchmark(lambda: force_ratio(BatchPlus, mu, paper_profile(1))[0])


def test_e1_paper_profile_k2(benchmark):
    """The paper profile at k=2 (65 536 + 256 + 16 jobs) — the largest
    doubly-exponential instantiation that fits in memory."""
    mu = 5.0
    ratio, adv, result = force_ratio(Batch, mu, paper_profile(2))
    theory = nonclairvoyant_lower_bound(2, mu)
    print(
        f"\nE1: paper profile k=2, μ=5 — Batch forced to {ratio:.3f} "
        f"(theory >= {theory:.3f}); {len(result.instance)} jobs, "
        f"{result.events_processed} events"
    )
    assert ratio >= theory - 1e-9
    benchmark.pedantic(
        lambda: force_ratio(Batch, mu, paper_profile(2))[0],
        rounds=1,
        iterations=1,
    )
