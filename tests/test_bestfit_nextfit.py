"""Unit tests for the BestFit and NextFit packers."""

from __future__ import annotations

import pytest

from repro.core import CapacityExceededError, Instance, Job
from repro.dbp import BestFit, FirstFit, NextFit, run_pipeline
from repro.schedulers import Eager
from repro.workloads import cloud_instance


class TestBestFit:
    def test_prefers_fullest_bin(self):
        bf = BestFit(capacity=1.0)
        bf.place(0, 0.0, 10.0, 0.6)   # bin 0 at load 0.6
        bf.place(1, 0.0, 10.0, 0.3)   # doesn't fit bin 0? 0.9 <= 1 → fits bin 0
        assert bf.bins_used == 1
        bf.place(2, 1.0, 10.0, 0.5)   # needs a new bin (load 0.9)
        assert bf.bins_used == 2
        # 0.1 fits both: bin 0 (load 0.9) is fuller than bin 1 (0.5).
        idx = bf.place(3, 2.0, 10.0, 0.1)
        assert idx == 0

    def test_oversize_rejected(self):
        with pytest.raises(CapacityExceededError):
            BestFit(1.0).place(0, 0.0, 1.0, 2.0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BestFit(0.0)

    def test_usage_time(self):
        bf = BestFit(1.0)
        bf.place(0, 0.0, 2.0, 1.0)
        bf.place(1, 1.0, 4.0, 1.0)  # second bin
        assert bf.total_usage_time == pytest.approx(5.0)


class TestNextFit:
    def test_single_open_bin(self):
        nf = NextFit(capacity=1.0)
        assert nf.place(0, 0.0, 10.0, 0.6) == 0
        assert nf.place(1, 1.0, 10.0, 0.6) == 1  # bin 0 closed
        # bin 0 has room again after nothing departed, but NextFit never
        # goes back:
        assert nf.place(2, 2.0, 10.0, 0.3) == 1

    def test_open_bin_reused_after_departures(self):
        nf = NextFit(capacity=1.0)
        nf.place(0, 0.0, 1.0, 0.9)
        # item 0 departs at 1; the open bin drains and accepts again.
        assert nf.place(1, 2.0, 3.0, 0.9) == 0

    def test_oversize_rejected(self):
        with pytest.raises(CapacityExceededError):
            NextFit(1.0).place(0, 0.0, 1.0, 2.0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            NextFit(0.0)


class TestPackerComparison:
    def test_firstfit_never_more_bins_than_nextfit(self):
        """On identical item streams FirstFit's bin count is at most
        NextFit's (FirstFit can reuse every bin NextFit abandoned)."""
        inst = cloud_instance(seed=5)
        ff = run_pipeline(Eager(), FirstFit(1.0), inst)
        nf = run_pipeline(Eager(), NextFit(1.0), inst)
        assert ff.bins_used <= nf.bins_used

    def test_all_packers_assign_everything(self):
        inst = cloud_instance(seed=6)
        for packer in (FirstFit(1.0), BestFit(1.0), NextFit(1.0)):
            result = run_pipeline(Eager(), packer, inst)
            assert len(result.assignments) == len(inst)
            assert result.total_usage_time > 0

    def test_packers_diverge(self):
        """The three heuristics genuinely differ on a crafted stream."""
        # bins end at loads {0.5, 0.6}; the 0.35 item goes to bin 0 under
        # FirstFit (lowest index) but bin 1 under BestFit (fullest).
        jobs = [
            Job(0, 0.0, 0.0, 10.0, size=0.5),
            Job(1, 1.0, 1.0, 10.0, size=0.6),
            Job(2, 2.0, 2.0, 10.0, size=0.35),
        ]
        inst = Instance(jobs, name="diverge")
        results = {}
        for name, packer in (
            ("ff", FirstFit(1.0)),
            ("bf", BestFit(1.0)),
            ("nf", NextFit(1.0)),
        ):
            results[name] = run_pipeline(Eager(), packer, inst).assignments
        assert results["ff"][2] == 0
        assert results["bf"][2] == 1
        assert results["nf"][2] == 1
