"""Sink invariants: JSONL round-trip and Chrome trace_event export."""

from __future__ import annotations

import json

import pytest

from repro.core.engine import simulate
from repro.obs import (
    JSONL_VERSION,
    LoadedTrace,
    TraceRecorder,
    chrome_trace_events,
    export_chrome_trace,
    read_jsonl,
    write_jsonl,
)
from repro.schedulers import BatchPlus


@pytest.fixture
def recorded(simple_instance) -> TraceRecorder:
    """A recorder holding a real run: instants, decisions, spans, metrics."""
    rec = TraceRecorder()
    with rec.span("test.outer", instance="simple"):
        simulate(BatchPlus(), simple_instance, recorder=rec)
    rec.gauge_set("test.gauge", 3.5)
    return rec


class TestJsonlRoundTrip:
    def test_lossless_round_trip(self, recorded, tmp_path):
        path = tmp_path / "run.trace.jsonl"
        written = write_jsonl(recorded, path, command="test", scheduler="batch+")
        assert written == str(path)
        loaded = read_jsonl(path)

        # meta: version-gated header plus caller keys
        assert loaded.meta["version"] == JSONL_VERSION
        assert loaded.meta["tool"] == "repro.obs"
        assert loaded.meta["command"] == "test"
        assert loaded.meta["scheduler"] == "batch+"

        # records: exact equality in emission order
        assert len(loaded) == len(recorded.records)
        assert loaded.records == recorded.records

        # metrics: identical registry contents
        assert loaded.metrics.to_dict() == recorded.metrics.to_dict()

    def test_recorder_write_jsonl_method(self, recorded, tmp_path):
        path = tmp_path / "via_method.jsonl"
        recorded.write_jsonl(path, origin="method")
        assert read_jsonl(path).meta["origin"] == "method"

    def test_layout_meta_first_metrics_last(self, recorded, tmp_path):
        path = tmp_path / "layout.jsonl"
        write_jsonl(recorded, path)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["kind"] == "meta"
        assert lines[-1]["kind"] == "metrics"
        assert all(
            l["kind"] not in ("meta", "metrics") for l in lines[1:-1]
        )

    def test_write_creates_parent_dirs_and_no_tmp_left(self, recorded, tmp_path):
        path = tmp_path / "deep" / "nested" / "run.jsonl"
        write_jsonl(recorded, path)
        assert path.exists()
        assert not list(path.parent.glob("*.tmp"))

    def test_by_kind_filters_in_order(self, recorded, tmp_path):
        path = tmp_path / "kinds.jsonl"
        write_jsonl(recorded, path)
        loaded = read_jsonl(path)
        decisions = loaded.by_kind("decision")
        assert decisions and all(r.kind == "decision" for r in decisions)
        instants = loaded.by_kind("instant")
        assert [r.ts for r in instants] == sorted(r.ts for r in instants)

    def test_empty_recorder_round_trips(self, tmp_path):
        rec = TraceRecorder()
        path = tmp_path / "empty.jsonl"
        write_jsonl(rec, path)
        loaded = read_jsonl(path)
        assert len(loaded) == 0
        assert not loaded.metrics


class TestJsonlValidation:
    def test_rejects_non_meta_first_line(self, tmp_path):
        path = tmp_path / "foreign.jsonl"
        path.write_text('{"kind": "instant", "ts": 0, "name": "x"}\n')
        with pytest.raises(ValueError, match="first line must be meta"):
            read_jsonl(path)

    def test_rejects_unsupported_version(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps({"kind": "meta", "version": 99}) + "\n")
        with pytest.raises(ValueError, match="unsupported trace version 99"):
            read_jsonl(path)

    def test_rejects_invalid_json_with_line_number(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text(
            json.dumps({"kind": "meta", "version": JSONL_VERSION}) + "\n"
            + "{not json\n"
        )
        with pytest.raises(ValueError, match=r"corrupt\.jsonl:2: invalid JSON"):
            read_jsonl(path)

    def test_blank_lines_are_tolerated(self, recorded, tmp_path):
        path = tmp_path / "blanks.jsonl"
        write_jsonl(recorded, path)
        path.write_text(path.read_text().replace("\n", "\n\n", 1))
        assert len(read_jsonl(path)) == len(recorded.records)


class TestChromeExport:
    @staticmethod
    def _payload(trace):
        payload = chrome_trace_events(trace)
        assert set(payload) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["format"] == "chrome-trace-event"
        return payload

    def test_schema_of_every_event(self, recorded):
        payload = self._payload(recorded)
        for event in payload["traceEvents"]:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(event)
            assert event["ph"] in ("B", "E", "i", "C", "M")
            assert event["ts"] >= 0.0
            if event["ph"] == "i":
                assert event["s"] == "t"  # thread-scoped instants

    def test_span_begin_end_pairing(self, recorded):
        payload = self._payload(recorded)
        begins = [e for e in payload["traceEvents"] if e["ph"] == "B"]
        ends = [e for e in payload["traceEvents"] if e["ph"] == "E"]
        assert [e["name"] for e in begins] and (
            sorted(e["name"] for e in begins) == sorted(e["name"] for e in ends)
        )

    def test_decisions_named_and_categorised(self, recorded):
        payload = self._payload(recorded)
        decisions = [
            e for e in payload["traceEvents"] if e.get("cat") == "decision"
        ]
        assert decisions
        for event in decisions:
            assert event["name"].startswith("decision:")
            assert event["ph"] == "i"
            assert "job" in event["args"] and "t" in event["args"]

    def test_counters_sampled_and_metadata_present(self, recorded):
        payload = self._payload(recorded)
        counters = [e for e in payload["traceEvents"] if e["ph"] == "C"]
        names = {e["name"] for e in counters}
        assert "engine.events_processed" in names
        for event in counters:
            assert set(event["args"]) == {"value"}
        metas = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert metas[-1]["name"] == "process_name"

    def test_timestamps_are_microseconds(self, recorded):
        payload = self._payload(recorded)
        by_name = {
            (e["name"], e["ph"]): e["ts"] for e in payload["traceEvents"]
        }
        record = recorded.records[0]
        assert by_name[(record.name, "B")] == pytest.approx(record.ts * 1e6)

    def test_export_from_loaded_trace_matches_recorder(
        self, recorded, tmp_path
    ):
        path = tmp_path / "rt.jsonl"
        write_jsonl(recorded, path)
        loaded = read_jsonl(path)
        assert isinstance(loaded, LoadedTrace)
        assert chrome_trace_events(loaded) == chrome_trace_events(recorded)

    def test_export_writes_valid_json_file(self, recorded, tmp_path):
        out = tmp_path / "chrome" / "trace.json"
        written = export_chrome_trace(recorded, out)
        assert written == str(out)
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]

    def test_empty_trace_exports_metadata_only(self):
        payload = chrome_trace_events(TraceRecorder())
        assert [e["ph"] for e in payload["traceEvents"]] == ["M"]


class TestJsonlHardening:
    """Regressions for the hardened writer/reader (shared with serve
    checkpoints): strict meta-header validation and crash-safe writes."""

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty file"):
            read_jsonl(path)

    def test_blank_lines_only_rejected(self, tmp_path):
        path = tmp_path / "blank.jsonl"
        path.write_text("\n   \n\t\n")
        with pytest.raises(ValueError, match="empty file"):
            read_jsonl(path)

    def test_leading_blank_lines_do_not_demote_meta(self, recorded, tmp_path):
        """The meta header is the first *logical* record: stray leading
        newlines (editors, ``cat`` concatenation) must not turn a valid
        trace into a 'first line is not meta' rejection."""
        original = tmp_path / "orig.jsonl"
        write_jsonl(recorded, original, command="test")
        padded = tmp_path / "padded.jsonl"
        padded.write_text("\n\n" + original.read_text())
        loaded = read_jsonl(padded)
        assert loaded.meta["command"] == "test"
        assert loaded.records == recorded.records

    def test_non_meta_first_record_rejected(self, tmp_path):
        path = tmp_path / "headless.jsonl"
        path.write_text('{"kind": "instant", "ts": 0.0, "name": "x"}\n')
        with pytest.raises(ValueError, match="must be meta"):
            read_jsonl(path)

    def test_mid_write_failure_leaves_no_temp_or_target(self, tmp_path):
        from repro.obs import dump_jsonl

        target = tmp_path / "out.jsonl"

        def rows():
            yield {"kind": "row"}
            raise RuntimeError("source died mid-stream")

        with pytest.raises(RuntimeError, match="mid-stream"):
            dump_jsonl(target, rows(), tool="test")
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []  # no stray *.tmp files

    def test_failed_rewrite_preserves_previous_file(self, tmp_path):
        from repro.obs import dump_jsonl, scan_jsonl

        target = tmp_path / "out.jsonl"
        dump_jsonl(target, [{"kind": "row", "n": 1}], tool="test")

        def rows():
            yield {"kind": "row", "n": 2}
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            dump_jsonl(target, rows(), tool="test")
        _, records = scan_jsonl(target)
        assert records == [{"kind": "row", "n": 1}]  # old version intact

    def test_stale_temp_from_crashed_writer_never_clobbered(self, tmp_path):
        """mkstemp gives every writer a unique temp name, so a leftover
        temp from a crashed process is never overwritten or published."""
        from repro.obs import dump_jsonl, scan_jsonl

        target = tmp_path / "out.jsonl"
        stale = tmp_path / "out.jsonl.stale.tmp"
        stale.write_text("half-written garbage")
        dump_jsonl(target, [{"kind": "row"}], tool="test")
        assert stale.read_text() == "half-written garbage"
        _, records = scan_jsonl(target)
        assert records == [{"kind": "row"}]
