"""Streaming engine sessions: ``start_stream``/``feed``/``advance``.

The serve daemon's whole determinism story rests on one property: a
time-ordered job stream fed through the incremental API produces the
*same* schedule, decision records and span as running the equivalent
static instance through one :meth:`Simulator.run`.  These tests pin that
parity across the non-clairvoyant registry schedulers, plus the error
contract of the streaming entry points.
"""

from __future__ import annotations

import pytest

from repro.core import Instance
from repro.core.engine import Simulator
from repro.core.errors import SimulationError
from repro.obs import TraceRecorder
from repro.obs.records import KIND_DECISION
from repro.schedulers.registry import make_scheduler
from repro.workloads import WorkloadSpec, generate

#: Non-clairvoyant schedulers whose streaming parity we pin (the serve
#: daemon accepts any registry scheduler; these are the paper's).
STREAM_SCHEDULERS = ["batch", "batch+", "epoch-batch", "eager", "lazy"]


def _batch_run(name: str, inst: Instance):
    rec = TraceRecorder()
    sim = Simulator(
        make_scheduler(name), instance=inst, core="object", recorder=rec
    )
    return sim.run(), rec


def _stream_run(name: str, inst: Instance):
    """Feed jobs one at a time, in arrival order, the serve-session way."""
    rec = TraceRecorder()
    sim = Simulator(
        make_scheduler(name),
        instance=Instance([], name=f"stream/{inst.name}"),
        core="object",
        recorder=rec,
    )
    sim.start_stream()
    for job in sorted(inst.jobs, key=lambda j: (j.arrival, j.id)):
        sim.feed([job])
        # Exclusive advance: the whole time-`a` cohort stays queued until
        # the stream moves strictly past `a` (same-time arrivals land in
        # one cohort, exactly as the batch engine orders them).
        sim.advance(job.arrival, inclusive=False)
    return sim.finish_stream(), rec


def _decisions(rec: TraceRecorder):
    return [
        (r.name, tuple(sorted(r.attrs.items())))
        for r in rec.records
        if r.kind == KIND_DECISION
    ]


class TestStreamBatchParity:
    @pytest.mark.parametrize("name", STREAM_SCHEDULERS)
    def test_seeded_workloads_bit_identical(self, name):
        spec = WorkloadSpec(n=30, laxity_scale=2.0, length_high=6.0)
        for seed in range(3):
            inst = generate(spec, seed=seed)
            batch_result, batch_rec = _batch_run(name, inst)
            stream_result, stream_rec = _stream_run(name, inst)
            assert stream_result.span == batch_result.span
            assert (
                stream_result.schedule.starts()
                == batch_result.schedule.starts()
            )
            assert _decisions(stream_rec) == _decisions(batch_rec)

    @pytest.mark.parametrize("name", STREAM_SCHEDULERS)
    def test_fixture_instances(self, name, simple_instance, serial_instance):
        for inst in (simple_instance, serial_instance):
            batch_result, _ = _batch_run(name, inst)
            stream_result, _ = _stream_run(name, inst)
            assert stream_result.span == batch_result.span
            assert (
                stream_result.schedule.starts()
                == batch_result.schedule.starts()
            )

    def test_same_time_cohort_preserved(self, batchable_instance):
        """Jobs sharing an arrival must still batch as one cohort."""
        inst = Instance.from_triples(
            [(0, 4, 3), (0, 4, 2), (0, 4, 3), (3, 4, 1)], name="cohort"
        )
        for target in (inst, batchable_instance):
            batch_result, _ = _batch_run("batch+", target)
            stream_result, _ = _stream_run("batch+", target)
            assert (
                stream_result.schedule.starts()
                == batch_result.schedule.starts()
            )

    def test_interleaved_advance_between_feeds(self):
        """Explicit advances between arrivals don't change the schedule."""
        inst = Instance.from_triples(
            [(0, 2, 1), (1, 3, 2), (5, 1, 1)], name="interleave"
        )
        batch_result, _ = _batch_run("batch+", inst)
        sim = Simulator(
            make_scheduler("batch+"),
            instance=Instance([]),
            core="object",
            recorder=TraceRecorder(),
        )
        sim.start_stream()
        jobs = sorted(inst.jobs, key=lambda j: j.arrival)
        sim.feed([jobs[0]])
        sim.advance(0.5)  # inclusive mid-gap advance
        sim.feed([jobs[1]])
        sim.advance(jobs[1].arrival, inclusive=False)
        sim.advance(4.0)
        sim.feed([jobs[2]])
        result = sim.finish_stream()
        assert result.schedule.starts() == batch_result.schedule.starts()
        assert result.span == batch_result.span


class TestStreamApi:
    def _stream_sim(self, **kwargs) -> Simulator:
        sim = Simulator(
            make_scheduler("batch+"), instance=Instance([]), core="object",
            **kwargs,
        )
        sim.start_stream()
        return sim

    def test_now_property_tracks_advance(self):
        sim = self._stream_sim()
        assert sim.now == 0.0
        sim.advance(3.5)
        assert sim.now == 3.5
        sim.advance(3.5)  # idempotent at the same horizon
        assert sim.now == 3.5

    def test_feed_requires_stream(self):
        sim = Simulator(
            make_scheduler("batch+"), instance=Instance([]), core="object"
        )
        with pytest.raises(SimulationError, match="start_stream"):
            sim.feed([])
        with pytest.raises(SimulationError, match="start_stream"):
            sim.advance(1.0)
        with pytest.raises(SimulationError, match="start_stream"):
            sim.finish_stream()

    def test_advance_into_past_rejected(self):
        sim = self._stream_sim()
        sim.advance(5.0)
        with pytest.raises(SimulationError, match="in the past"):
            sim.advance(4.0)

    def test_feed_past_arrival_rejected(self):
        sim = self._stream_sim()
        sim.advance(10.0)
        job = Instance.from_triples([(5, 2, 1)]).jobs[0]
        with pytest.raises(SimulationError, match="in the past"):
            sim.feed([job])

    def test_feed_duplicate_id_rejected(self):
        sim = self._stream_sim()
        job = Instance.from_triples([(0, 5, 1)]).jobs[0]
        sim.feed([job])
        with pytest.raises(SimulationError, match="duplicate"):
            sim.feed([job])

    def test_columnar_core_rejected(self):
        sim = Simulator(
            make_scheduler("batch+"), instance=Instance([]), core="columnar"
        )
        with pytest.raises(SimulationError, match="object core"):
            sim.start_stream()

    def test_adversary_rejected(self):
        from repro.adversaries import NonClairvoyantLowerBoundAdversary

        sim = Simulator(
            make_scheduler("batch+"),
            adversary=NonClairvoyantLowerBoundAdversary(mu=3.0),
            core="object",
        )
        with pytest.raises(SimulationError, match="adversar"):
            sim.start_stream()

    def test_stream_session_runs_once(self):
        sim = self._stream_sim()
        sim.finish_stream()
        with pytest.raises(SimulationError, match="only run once|start_stream"):
            sim.start_stream()

    def test_run_after_stream_rejected(self):
        sim = self._stream_sim()
        with pytest.raises(SimulationError, match="only run once"):
            sim.run()

    def test_finish_stream_starts_every_fed_job(self):
        sim = self._stream_sim()
        inst = Instance.from_triples([(0, 3, 2), (1, 2, 1)])
        for job in inst.jobs:
            sim.feed([job])
            sim.advance(job.arrival, inclusive=False)
        result = sim.finish_stream()
        assert set(result.schedule.starts()) == {j.id for j in inst.jobs}
        assert result.span > 0
