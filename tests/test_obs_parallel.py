"""Cross-process aggregation: parallel and serial sweeps must merge to
the same metrics (the ParallelRunner determinism contract, extended to
observability)."""

from __future__ import annotations

import pytest

from repro.obs import NULL_RECORDER, TraceRecorder, set_recorder
from repro.offline import span_lower_bound
from repro.perf.parallel import ParallelRunner
from repro.schedulers import make_scheduler
from repro.workloads import WorkloadSpec, generate, run_grid


@pytest.fixture(autouse=True)
def _restore_ambient():
    previous = set_recorder(NULL_RECORDER)
    yield
    set_recorder(previous)


def grid_metrics(workers: int, monkeypatch) -> tuple[list, dict, ParallelRunner]:
    """Run the reference grid under an armed ambient recorder.

    ``REPRO_TRACE=1`` is exported so pool workers arm themselves from the
    environment they inherit; the parent's recorder is installed
    explicitly so the test owns it.
    """
    monkeypatch.setenv("REPRO_TRACE", "1")
    recorder = TraceRecorder()
    set_recorder(recorder)
    spec = WorkloadSpec(n=30, laxity_scale=2.0)
    instances = [generate(spec, seed=s) for s in range(6)]
    protos = [make_scheduler(n) for n in ("batch", "batch+", "eager")]
    runner = ParallelRunner(workers=workers)
    results = run_grid(protos, instances, span_lower_bound, runner=runner)
    return results, recorder.metrics.snapshot(), runner


def sim_only(metrics: dict) -> dict:
    """Strip wall-clock-dependent quantities before comparing runs.

    Span wall-times and the worker-count gauge legitimately differ
    between serial and parallel execution; everything else must match.
    """
    return {
        "counters": {
            k: v
            for k, v in metrics["counters"].items()
            if not k.startswith("span.")
        },
        "gauges": {
            k: v for k, v in metrics["gauges"].items() if k != "runner.workers"
        },
        "histograms": {
            k: v
            for k, v in metrics["histograms"].items()
            if not k.startswith("span.")
        },
    }


class TestParallelSerialMetricEquality:
    def test_merged_metrics_match_serial(self, monkeypatch):
        serial_results, serial_metrics, _ = grid_metrics(1, monkeypatch)
        par_results, par_metrics, runner = grid_metrics(4, monkeypatch)

        # The runner contract: identical result streams either way.
        key = lambda r: (r.scheduler_name, r.instance_name, r.span, r.reference)
        assert [key(r) for r in serial_results] == [key(r) for r in par_results]
        assert runner.last_stats.mode == "parallel"

        a, b = sim_only(serial_metrics), sim_only(par_metrics)
        # Counters and gauges merge exactly.
        assert a["counters"] == b["counters"]
        assert a["gauges"] == b["gauges"]
        # Histograms: bucket counts, count, min, max exactly; totals only
        # to float rounding (cross-process addition is not associative).
        assert set(a["histograms"]) == set(b["histograms"])
        for name in a["histograms"]:
            ha, hb = a["histograms"][name], b["histograms"][name]
            assert ha["counts"] == hb["counts"], name
            assert ha["count"] == hb["count"], name
            assert ha["min"] == hb["min"] and ha["max"] == hb["max"], name
            assert ha["total"] == pytest.approx(hb["total"], rel=1e-9), name

    def test_progress_counter_counts_every_task(self, monkeypatch):
        _, metrics, _ = grid_metrics(1, monkeypatch)
        # 6 reference evaluations + 3 schedulers x 6 instances = 24 tasks.
        assert metrics["counters"]["runner.tasks_completed"] == 24.0
        assert metrics["counters"]["sweep.cells"] == 18.0

    def test_parallel_sets_worker_gauge(self, monkeypatch):
        _, metrics, runner = grid_metrics(4, monkeypatch)
        assert runner.last_stats.mode == "parallel"
        assert metrics["gauges"]["runner.workers"] == 4.0
        assert metrics["counters"]["runner.tasks_completed"] == 24.0

    def test_serial_armed_map_emits_span(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        recorder = TraceRecorder()
        set_recorder(recorder)
        runner = ParallelRunner(workers=1)
        assert runner.map(abs, [-1, 2, -3]) == [1, 2, 3]
        assert recorder.metrics.counters["runner.tasks_completed"] == 3.0
        spans = [r for r in recorder.records if r.name == "runner.map"]
        assert spans and spans[0].attrs["mode"] == "serial"

    def test_disarmed_runner_records_nothing(self):
        recorder = TraceRecorder()  # NOT installed as ambient
        runner = ParallelRunner(workers=1)
        runner.map(abs, [-1, 2])
        assert len(recorder.records) == 0
        assert not recorder.metrics
