"""Property tests for serialization round-trips and the auditor.

* any valid instance survives dict/JSON round-trips bit-exactly;
* any simulated schedule survives, re-validates, and audits clean;
* the auditor flags *exactly* the violations injected into a schedule.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Instance,
    Job,
    audit,
    instance_from_dict,
    instance_to_dict,
    schedule_from_dict,
    schedule_to_dict,
    simulate,
)
from repro.schedulers import BatchPlus


@st.composite
def instances(draw, max_jobs=10):
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    jobs = []
    for i in range(n):
        a = draw(st.floats(min_value=0, max_value=50, allow_nan=False))
        lax = draw(st.floats(min_value=0, max_value=20, allow_nan=False))
        p = draw(st.floats(min_value=0.1, max_value=10, allow_nan=False))
        size = draw(st.floats(min_value=0.05, max_value=2.0, allow_nan=False))
        jobs.append(Job(i, float(a), float(a + lax), float(p), size=float(size)))
    return Instance(jobs, name="hyp-io")


class TestRoundTripProperties:
    @given(instances())
    @settings(max_examples=50, deadline=None)
    def test_instance_dict_round_trip_exact(self, inst):
        back = instance_from_dict(instance_to_dict(inst))
        assert back.name == inst.name
        for a, b in zip(inst, back):
            assert (a.id, a.arrival, a.deadline, a.length, a.size) == (
                b.id, b.arrival, b.deadline, b.length, b.size,
            )

    @given(instances())
    @settings(max_examples=30, deadline=None)
    def test_schedule_dict_round_trip_exact(self, inst):
        result = simulate(BatchPlus(), inst)
        back = schedule_from_dict(schedule_to_dict(result.schedule))
        assert back.starts() == result.schedule.starts()
        assert back.span == pytest.approx(result.schedule.span)

    @given(instances())
    @settings(max_examples=30, deadline=None)
    def test_simulated_schedules_audit_clean(self, inst):
        result = simulate(BatchPlus(), inst)
        report = audit(inst, result.schedule.starts())
        assert report.feasible
        assert report.span == pytest.approx(result.schedule.span)


class TestAuditInjectionProperties:
    @given(instances(max_jobs=8), st.data())
    @settings(max_examples=40, deadline=None)
    def test_injected_violations_detected_exactly(self, inst, data):
        """Corrupt a random subset of starts; the auditor must flag each
        corrupted job (and only corrupted jobs) as a violation."""
        result = simulate(BatchPlus(), inst)
        starts = result.schedule.starts()
        to_break = data.draw(
            st.lists(
                st.sampled_from(sorted(starts)),
                unique=True,
                max_size=len(starts),
            )
        )
        for jid in to_break:
            job = inst[jid]
            # push the start strictly past the deadline
            starts[jid] = job.deadline + 1.0 + job.known_length
        report = audit(inst, starts)
        flagged = {f.job_id for f in report.violations}
        assert flagged == set(to_break)
        assert report.feasible == (not to_break)
