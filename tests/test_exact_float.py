"""Unit tests for the float-exact (candidate-closure) solver."""

from __future__ import annotations

import math

import pytest

from repro.adversaries import PHI
from repro.core import Instance, Job, SolverError
from repro.offline import (
    exact_optimal_schedule_float,
    exact_optimal_span,
    exact_optimal_span_float,
)
from repro.offline.exact_float import _candidate_offsets
from repro.workloads import small_integral_instance


class TestCandidateOffsets:
    def test_single_length(self):
        assert _candidate_offsets([2.0]) == [-2.0, 0.0, 2.0]

    def test_two_lengths(self):
        offsets = _candidate_offsets([1.0, 3.0])
        assert set(offsets) == {-4.0, -3.0, -2.0, -1.0, 0.0, 1.0, 2.0, 3.0, 4.0}

    def test_size_bound(self):
        assert len(_candidate_offsets([1.0, 2.0, 4.0])) <= 27


class TestFloatExact:
    def test_empty(self):
        assert exact_optimal_span_float(Instance([])) == 0.0

    def test_single_job(self):
        inst = Instance.from_triples([(0, 2.5, 1.75)])
        assert exact_optimal_span_float(inst) == pytest.approx(1.75)

    @pytest.mark.parametrize("seed", range(12))
    def test_matches_integral_solver(self, seed):
        inst = small_integral_instance(5, seed=seed)
        assert exact_optimal_span_float(inst) == pytest.approx(
            exact_optimal_span(inst)
        )

    def test_irrational_instance(self):
        """Two φ-length jobs and two unit jobs from the §4.1 adversary's
        n=2 run: the optimum batches the long jobs at t=φ+1, giving span
        1 + (1 + φ) — the paper's witness value φ + (n-1) + ... computed
        exactly."""
        t2 = PHI + 1.0
        jobs = [
            Job(0, 0.0, 0.0, 1.0),
            Job(1, 0.0, 2 * t2, PHI),
            Job(2, t2, t2, 1.0),
            Job(3, t2, 2 * t2, PHI),
        ]
        inst = Instance(jobs, name="phi-n2")
        # witness: shorts at their arrivals (span 2·1? the second short is
        # covered by the batched longs) — shorts [0,1) and [t2, t2+1);
        # longs both at t2 → [t2, t2+φ).  span = 1 + φ.
        assert exact_optimal_span_float(inst) == pytest.approx(1.0 + PHI)

    def test_fractional_overlap_optimum(self):
        # J0 may run [0.3, 2.8); J1 length 1.2 fits inside when started
        # at its deadline region: exact overlap only reachable at float
        # candidate points.
        inst = Instance(
            [Job(0, 0.3, 0.3, 2.5), Job(1, 0.4, 1.6, 1.2)], name="frac"
        )
        assert exact_optimal_span_float(inst) == pytest.approx(2.5)

    def test_witness_schedule_validates(self):
        inst = Instance(
            [Job(0, 0.0, 1.5, math.pi), Job(1, 0.5, 2.0, 1.0)], name="pi-ok"
        )
        res = exact_optimal_schedule_float(inst)
        res.schedule.validate()
        assert res.schedule.span == pytest.approx(res.span)
        assert all(c >= 2 for c in res.candidates_per_job.values())

    def test_too_many_jobs_rejected(self):
        inst = small_integral_instance(12, seed=0)
        with pytest.raises(SolverError):
            exact_optimal_span_float(inst)

    def test_node_budget(self):
        # seed 3 needs ~9 search nodes (heuristic incumbent not optimal
        # at the root), so a budget of 1 must trip.
        inst = small_integral_instance(6, seed=3)
        assert exact_optimal_schedule_float(inst).nodes_explored > 1
        with pytest.raises(SolverError):
            exact_optimal_span_float(inst, node_budget=1)

    def test_never_above_integral_heuristics(self):
        """Float-exact is a true optimum: never above best_offline."""
        from repro.offline import best_offline_span, span_lower_bound

        for seed in range(8):
            inst = small_integral_instance(6, seed=seed)
            opt = exact_optimal_span_float(inst)
            assert span_lower_bound(inst) - 1e-9 <= opt
            assert opt <= best_offline_span(inst) + 1e-9
