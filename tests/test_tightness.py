"""Unit tests for the Figure 2 / Figure 3 tightness families."""

from __future__ import annotations

import pytest

from repro.adversaries import (
    batch_tightness_instance,
    batchplus_tightness_instance,
)
from repro.core import simulate
from repro.schedulers import Batch, BatchPlus


class TestBatchFamily:
    def test_shape(self):
        fam = batch_tightness_instance(m=3, mu=4.0)
        assert len(fam.instance) == 3 + 3 + 6  # two short groups + 2m long
        assert fam.limit_ratio == 8.0

    def test_witness_span_formula(self):
        m, mu, eps = 10, 4.0, 1e-3
        fam = batch_tightness_instance(m=m, mu=mu, epsilon=eps)
        assert fam.optimal_span == pytest.approx(m * (1 + eps) + mu)

    def test_ratio_converges_to_2mu(self):
        mu = 3.0
        ratios = []
        for m in (1, 4, 16, 64):
            fam = batch_tightness_instance(m=m, mu=mu)
            r = simulate(Batch(), fam.instance)
            ratios.append(r.span / fam.optimal_span)
        assert all(b > a for a, b in zip(ratios, ratios[1:]))
        assert ratios[-1] > 2 * mu * 0.9

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            batch_tightness_instance(0, 2.0)
        with pytest.raises(ValueError):
            batch_tightness_instance(1, 1.0)
        with pytest.raises(ValueError):
            batch_tightness_instance(1, 2.0, epsilon=1.5)

    def test_batchplus_does_better_on_batch_family(self):
        """Batch+ beats Batch on Batch's own worst case (its open phase
        absorbs the second short group and the long jobs)."""
        fam = batch_tightness_instance(m=16, mu=4.0)
        span_batch = simulate(Batch(), fam.instance).span
        span_plus = simulate(BatchPlus(), fam.instance).span
        assert span_plus < span_batch


class TestBatchPlusFamily:
    def test_shape(self):
        fam = batchplus_tightness_instance(m=5, mu=3.0)
        assert len(fam.instance) == 10
        assert fam.limit_ratio == 4.0

    def test_witness_span_formula(self):
        m, mu = 7, 3.0
        fam = batchplus_tightness_instance(m=m, mu=mu)
        assert fam.optimal_span == pytest.approx(m + mu)

    def test_batchplus_span_formula(self):
        m, mu, eps = 12, 5.0, 1e-3
        fam = batchplus_tightness_instance(m=m, mu=mu, epsilon=eps)
        r = simulate(BatchPlus(), fam.instance)
        assert r.span == pytest.approx(m * (mu + 1 - eps))

    def test_ratio_converges_to_mu_plus_one(self):
        mu = 5.0
        ratios = []
        for m in (1, 4, 16, 128):
            fam = batchplus_tightness_instance(m=m, mu=mu)
            r = simulate(BatchPlus(), fam.instance)
            ratios.append(r.span / fam.optimal_span)
        assert all(b > a for a, b in zip(ratios, ratios[1:]))
        assert ratios[-1] > (mu + 1) * 0.95

    def test_long_jobs_started_during_short_runs(self):
        """The construction's mechanism: each long job arrives inside the
        running short job's interval, so Batch+ starts it immediately."""
        fam = batchplus_tightness_instance(m=4, mu=3.0)
        r = simulate(BatchPlus(), fam.instance)
        for i in range(1, 5):
            long_id = 4 + (i - 1)  # long jobs follow the 4 short ones
            job = fam.instance[long_id]
            assert r.schedule.start_of(long_id) == pytest.approx(job.arrival)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            batchplus_tightness_instance(0, 2.0)
        with pytest.raises(ValueError):
            batchplus_tightness_instance(1, 0.5)
        with pytest.raises(ValueError):
            batchplus_tightness_instance(1, 2.0, epsilon=1.0)

    def test_witness_is_feasible(self):
        for fam in (
            batch_tightness_instance(5, 3.0),
            batchplus_tightness_instance(5, 3.0),
        ):
            fam.optimal_schedule.validate()
