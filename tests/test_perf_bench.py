"""Tests for the bench suite, CLI subcommand, and GridResult.ratio edge
cases fixed alongside the perf work."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.perf.bench import (
    BENCH_SCHEMA,
    E1_K2_COLUMNAR_BASELINE_EVENTS_PER_S,
    RATCHET_MARGIN,
    BenchRecord,
    bench_cases,
    check_ratchet,
    run_bench,
)
from repro.workloads import GridResult


class TestRunBench:
    def test_quick_suite_records_and_schema(self, tmp_path):
        out = tmp_path / "BENCH_perf.json"
        records = run_bench(quick=True, repeat=1, out=out)
        assert len(records) >= 4
        assert all(isinstance(r, BenchRecord) for r in records)
        for r in records:
            assert r.events > 0 and r.wall_s >= 0
            assert r.events_per_s > 0

        payload = json.loads(out.read_text())
        assert payload["quick"] is True
        assert payload["schema"] == BENCH_SCHEMA
        for row in payload["results"]:
            assert set(row) == {"case", "events", "wall_s", "events_per_s"}
        cases = [row["case"] for row in payload["results"]]
        assert "micro/event_queue" in cases
        assert any(c.startswith("macro/e1_paper") for c in cases)

    def test_provenance_block(self, tmp_path):
        out = tmp_path / "BENCH_perf.json"
        run_bench(quick=True, repeat=1, out=out)
        prov = json.loads(out.read_text())["provenance"]
        assert set(prov) == {"git_sha", "workers", "recorder_armed"}
        assert isinstance(prov["git_sha"], str) and prov["git_sha"]
        assert prov["recorder_armed"] is False  # tests run disarmed

    def test_refuses_to_overwrite_foreign_schema(self, tmp_path):
        out = tmp_path / "BENCH_perf.json"
        out.write_text('{"schema": "v0:ancient", "results": []}')
        with pytest.raises(FileExistsError, match="--force"):
            run_bench(quick=True, repeat=1, out=out)
        # corrupt files are protected too
        out.write_text("not json at all")
        with pytest.raises(FileExistsError, match="--force"):
            run_bench(quick=True, repeat=1, out=out)
        # --force replaces; same-schema rewrites need no force
        run_bench(quick=True, repeat=1, out=out, force=True)
        assert json.loads(out.read_text())["schema"] == BENCH_SCHEMA
        run_bench(quick=True, repeat=1, out=out)

    def test_no_out_means_no_file(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        records = run_bench(quick=True, repeat=1, out=None)
        assert records and not list(tmp_path.iterdir())

    def test_full_suite_includes_k2_macro(self):
        names = [name for name, _ in bench_cases(quick=False)]
        assert "macro/e1_paper_k2_batch" in names
        quick_names = [name for name, _ in bench_cases(quick=True)]
        assert "macro/e1_paper_k2_batch" not in quick_names  # CI stays fast

    def test_suite_covers_vectorised_and_scalar_paths(self):
        """The ratchet watches a batch-family case AND a scalar-path one."""
        for quick in (False, True):
            names = [name for name, _ in bench_cases(quick=quick)]
            assert any("batch_plus" in n for n in names)
            assert "macro/e5_cdb_alpha2" in names

    def test_case_filter_restricts_run(self):
        records = run_bench(quick=True, repeat=1, out=None, case="cdb")
        assert [r.case for r in records] == ["macro/e5_cdb_alpha2"]

    def test_case_filter_without_match_raises(self):
        with pytest.raises(ValueError, match="matches no bench case"):
            run_bench(quick=True, repeat=1, out=None, case="no-such-case")


class TestRatchet:
    @staticmethod
    def record(case: str, events_per_s: float) -> BenchRecord:
        return BenchRecord(
            case=case,
            events=1000,
            wall_s=1.0,
            events_per_s=events_per_s,
        )

    def test_pass_at_and_above_margin(self):
        floor = E1_K2_COLUMNAR_BASELINE_EVENTS_PER_S * (1 - RATCHET_MARGIN)
        ok = [self.record("macro/e1_paper_k2_batch", floor)]
        assert check_ratchet(ok) is None

    def test_fail_below_margin(self):
        floor = E1_K2_COLUMNAR_BASELINE_EVENTS_PER_S * (1 - RATCHET_MARGIN)
        bad = [self.record("macro/e1_paper_k2_batch", floor - 1.0)]
        verdict = check_ratchet(bad)
        assert verdict is not None and "FAILED" in verdict

    def test_missing_case_raises(self):
        with pytest.raises(ValueError, match="perf ratchet needs"):
            check_ratchet([self.record("micro/event_queue", 1e6)])


class TestBenchCLI:
    def test_python_m_repro_bench_quick(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = main(["bench", "--quick", "--repeat", "1", "--out", str(out)])
        assert rc == 0
        assert out.exists()
        printed = capsys.readouterr().out
        assert "events/s" in printed and "micro/event_queue" in printed

    def test_ratchet_flag_rejects_quick_suite(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = main(
            ["bench", "--quick", "--repeat", "1", "--out", str(out), "--ratchet"]
        )
        assert rc == 2
        assert "perf ratchet needs" in capsys.readouterr().err

    def test_case_flag_filters_cli_run(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = main(
            [
                "bench",
                "--quick",
                "--repeat",
                "1",
                "--out",
                str(out),
                "--case",
                "cdb",
            ]
        )
        assert rc == 0
        cases = [r["case"] for r in json.loads(out.read_text())["results"]]
        assert cases == ["macro/e5_cdb_alpha2"]


class TestGridResultRatio:
    @staticmethod
    def cell(span: float, reference: float) -> GridResult:
        return GridResult(
            scheduler_name="s",
            instance_name="i",
            span=span,
            reference=reference,
            events=1,
        )

    def test_positive_reference(self):
        assert self.cell(3.0, 2.0).ratio == 1.5

    def test_zero_zero_is_exactly_one(self):
        assert self.cell(0.0, 0.0).ratio == 1.0

    def test_zero_reference_positive_span_is_inf(self):
        assert self.cell(1.0, 0.0).ratio == float("inf")

    def test_negative_reference_raises(self):
        with pytest.raises(ValueError, match="negative reference"):
            self.cell(1.0, -0.5).ratio
