"""Chaos testing: hypothesis-driven random-but-legal schedulers.

A scheduler that makes arbitrary legal choices (start now? wait? set a
timer?) must still yield a valid schedule — the engine's deadline
backstop and validation make that a theorem about the engine, which this
suite checks over thousands of random decision sequences.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Instance, Job, simulate
from repro.offline import span_lower_bound
from repro.schedulers import OnlineScheduler


class ChaosScheduler(OnlineScheduler):
    """Makes pseudo-random legal decisions from a seed stream."""

    name = "chaos"

    def __init__(self, decisions: list[int]):
        super().__init__()
        self._decisions = list(decisions)
        self._i = 0

    def _decide(self) -> int:
        if not self._decisions:
            return 0
        d = self._decisions[self._i % len(self._decisions)]
        self._i += 1
        return d

    def on_arrival(self, ctx, job):
        d = self._decide() % 3
        if d == 0:
            ctx.start(job.id)
        elif d == 1 and job.laxity > 0:
            # wait for a mid-window timer
            ctx.set_timer(job.arrival + job.laxity / 2, job.id)
        # else: rely on the deadline backstop

    def on_timer(self, ctx, tag):
        if isinstance(tag, int) and not ctx.is_started(tag):
            if self._decide() % 2 == 0:
                ctx.start(tag)

    def on_deadline(self, ctx, job):
        ctx.start(job.id)

    def on_completion(self, ctx, job):
        # occasionally start a pending job on completion
        if self._decide() % 4 == 0:
            for p in ctx.pending():
                ctx.start(p.id)
                break


@st.composite
def chaos_cases(draw):
    n = draw(st.integers(min_value=1, max_value=15))
    jobs = []
    for i in range(n):
        a = draw(st.floats(min_value=0, max_value=20, allow_nan=False))
        lax = draw(st.floats(min_value=0, max_value=10, allow_nan=False))
        p = draw(st.floats(min_value=0.1, max_value=6, allow_nan=False))
        jobs.append(Job(id=i, arrival=a, deadline=a + lax, length=p))
    decisions = draw(st.lists(st.integers(min_value=0, max_value=11), max_size=60))
    return Instance(jobs, name="chaos"), decisions


class TestChaos:
    @given(chaos_cases())
    @settings(max_examples=80, deadline=None)
    def test_any_legal_decision_sequence_is_feasible(self, case):
        inst, decisions = case
        result = simulate(ChaosScheduler(decisions), inst)
        result.schedule.validate()
        assert result.span >= span_lower_bound(inst) - 1e-6

    @given(chaos_cases())
    @settings(max_examples=40, deadline=None)
    def test_chaos_replay_deterministic(self, case):
        inst, decisions = case
        r1 = simulate(ChaosScheduler(decisions), inst)
        r2 = simulate(ChaosScheduler(decisions), inst)
        assert r1.schedule.starts() == r2.schedule.starts()
