"""Unit tests for instance/schedule JSON serialization."""

from __future__ import annotations

import json

import pytest

from repro.core import (
    Instance,
    InvalidInstanceError,
    InvalidScheduleError,
    Job,
    instance_from_dict,
    instance_to_dict,
    load_instance,
    load_schedule,
    save_instance,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
    simulate,
)
from repro.schedulers import BatchPlus
from repro.workloads import poisson_instance


class TestInstanceRoundTrip:
    def test_round_trip_preserves_everything(self, simple_instance, tmp_path):
        path = tmp_path / "inst.json"
        save_instance(simple_instance, path)
        loaded = load_instance(path)
        assert loaded.name == simple_instance.name
        assert len(loaded) == len(simple_instance)
        for a, b in zip(simple_instance, loaded):
            assert (a.id, a.arrival, a.deadline, a.length, a.size) == (
                b.id, b.arrival, b.deadline, b.length, b.size,
            )

    def test_adversary_lengths_preserved(self, tmp_path):
        inst = Instance([Job(0, 0.0, 5.0, None)], name="adv")
        path = tmp_path / "adv.json"
        save_instance(inst, path)
        assert load_instance(path)[0].length is None

    def test_sizes_preserved(self, tmp_path):
        inst = Instance([Job(0, 0.0, 5.0, 2.0, size=0.25)])
        path = tmp_path / "sized.json"
        save_instance(inst, path)
        assert load_instance(path)[0].size == 0.25

    def test_wrong_format_rejected(self):
        with pytest.raises(InvalidInstanceError):
            instance_from_dict({"format": "something-else", "jobs": []})

    def test_wrong_version_rejected(self):
        data = instance_to_dict(Instance([]))
        data["version"] = 99
        with pytest.raises(InvalidInstanceError):
            instance_from_dict(data)

    def test_malformed_job_rejected(self):
        data = instance_to_dict(Instance([]))
        data["jobs"] = [{"id": 0}]  # missing fields
        with pytest.raises(InvalidInstanceError):
            instance_from_dict(data)

    def test_invalid_job_values_rejected(self):
        data = instance_to_dict(Instance([]))
        data["jobs"] = [
            {"id": 0, "arrival": 5.0, "deadline": 1.0, "length": 1.0}
        ]
        with pytest.raises(Exception):
            instance_from_dict(data)

    def test_file_is_plain_json(self, simple_instance, tmp_path):
        path = tmp_path / "inst.json"
        save_instance(simple_instance, path)
        doc = json.loads(path.read_text())
        assert doc["format"] == "fjs-instance"
        assert len(doc["jobs"]) == 4


class TestScheduleRoundTrip:
    def test_round_trip_revalidates(self, tmp_path):
        inst = poisson_instance(20, seed=1)
        result = simulate(BatchPlus(), inst)
        path = tmp_path / "sched.json"
        save_schedule(result.schedule, path)
        loaded = load_schedule(path)
        assert loaded.starts() == result.schedule.starts()
        assert loaded.span == pytest.approx(result.schedule.span)

    def test_tampered_span_detected(self):
        inst = poisson_instance(5, seed=0)
        result = simulate(BatchPlus(), inst)
        data = schedule_to_dict(result.schedule)
        data["span"] = data["span"] + 1.0
        with pytest.raises(InvalidScheduleError):
            schedule_from_dict(data)

    def test_tampered_start_detected(self):
        inst = poisson_instance(5, seed=0)
        result = simulate(BatchPlus(), inst)
        data = schedule_to_dict(result.schedule)
        first = next(iter(data["starts"]))
        data["starts"][first] = -100.0  # outside the window
        with pytest.raises(InvalidScheduleError):
            schedule_from_dict(data)

    def test_wrong_format_rejected(self):
        with pytest.raises(InvalidScheduleError):
            schedule_from_dict({"format": "nope"})
