"""Unit tests for the time-indexed LP lower bound."""

from __future__ import annotations

import pytest

from repro.core import Instance, SolverError
from repro.offline import (
    chain_lower_bound,
    exact_optimal_span,
    lp_lower_bound,
    mandatory_lower_bound,
)
from repro.workloads import small_integral_instance


class TestLpLowerBound:
    def test_empty(self):
        assert lp_lower_bound(Instance([])) == 0.0

    def test_single_rigid_job(self):
        inst = Instance.from_triples([(0, 0, 3)])
        assert lp_lower_bound(inst) == pytest.approx(3.0, abs=1e-6)

    def test_high_laxity_relaxation_can_overlap(self):
        # two unit jobs sharing a wide window: LP packs them, bound ≈ 1.
        inst = Instance.from_triples([(0, 5, 1), (0, 5, 1)])
        assert lp_lower_bound(inst) == pytest.approx(1.0, abs=1e-6)

    @pytest.mark.parametrize("seed", range(15))
    def test_sound_vs_exact(self, seed):
        inst = small_integral_instance(7, seed=seed)
        assert lp_lower_bound(inst) <= exact_optimal_span(inst) + 1e-6

    def test_can_beat_combinatorial_bounds(self):
        """Over random instances the LP strictly improves on
        max(chain, mandatory, max p) at least sometimes."""
        stronger = 0
        for seed in range(15):
            inst = small_integral_instance(7, seed=seed)
            combo = max(
                chain_lower_bound(inst),
                mandatory_lower_bound(inst),
                inst.max_length,
            )
            if lp_lower_bound(inst) > combo + 1e-9:
                stronger += 1
        assert stronger >= 3

    def test_never_below_when_integral_dominance_possible(self):
        """The LP is at least as strong as the mandatory bound (the IP
        contains the mandatory covering constraints for laxity-poor
        jobs)."""
        for seed in range(8):
            inst = small_integral_instance(7, seed=seed, max_laxity=1)
            assert lp_lower_bound(inst) >= mandatory_lower_bound(inst) - 1e-6

    def test_non_integral_rejected(self):
        inst = Instance.from_triples([(0, 1, 1.5)])
        with pytest.raises(SolverError, match="integral"):
            lp_lower_bound(inst)

    def test_horizon_guard(self):
        inst = Instance.from_triples([(0, 10_000, 1)])
        with pytest.raises(SolverError, match="slots"):
            lp_lower_bound(inst, max_slots=100)
