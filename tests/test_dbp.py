"""Unit tests for the MinUsageTime DBP extension (paper §5)."""

from __future__ import annotations

import pytest

from repro.core import CapacityExceededError, Instance, Job
from repro.dbp import (
    Bin,
    ClassifyByDurationFirstFit,
    FirstFit,
    PlacedItem,
    pack_schedule,
    run_pipeline,
    usage_lower_bound,
)
from repro.offline import best_offline
from repro.schedulers import BatchPlus, Eager, Profit
from repro.workloads import cloud_instance


class TestBin:
    def test_usage_time_union(self):
        b = Bin(index=0, capacity=1.0)
        b.place(PlacedItem(0, 0.0, 2.0, 0.5))
        b.place(PlacedItem(1, 1.0, 3.0, 0.5))
        assert b.usage_time == pytest.approx(3.0)

    def test_capacity_enforced(self):
        b = Bin(index=0, capacity=1.0)
        b.place(PlacedItem(0, 0.0, 2.0, 0.7))
        with pytest.raises(CapacityExceededError):
            b.place(PlacedItem(1, 1.0, 3.0, 0.7))

    def test_departure_frees_capacity(self):
        b = Bin(index=0, capacity=1.0)
        b.place(PlacedItem(0, 0.0, 2.0, 0.7))
        # item 0 departs at 2 (half-open): a size-0.7 item fits at t=2.
        b.place(PlacedItem(1, 2.0, 4.0, 0.7))
        assert b.usage_time == pytest.approx(4.0)

    def test_load_query_must_be_chronological(self):
        b = Bin(index=0, capacity=1.0)
        b.load_at(5.0)
        with pytest.raises(ValueError):
            b.load_at(4.0)

    def test_busy_union_components(self):
        b = Bin(index=0, capacity=2.0)
        b.place(PlacedItem(0, 0.0, 1.0, 1.0))
        b.place(PlacedItem(1, 5.0, 6.0, 1.0))
        assert len(b.busy_union()) == 2


class TestFirstFit:
    def test_opens_bins_as_needed(self):
        ff = FirstFit(capacity=1.0)
        assert ff.place(0, 0.0, 2.0, 0.6) == 0
        assert ff.place(1, 0.5, 2.5, 0.6) == 1  # doesn't fit in bin 0
        assert ff.place(2, 0.5, 2.5, 0.3) == 0  # fits back in bin 0
        assert ff.bins_used == 2

    def test_reuses_freed_bin(self):
        ff = FirstFit(capacity=1.0)
        ff.place(0, 0.0, 1.0, 1.0)
        assert ff.place(1, 2.0, 3.0, 1.0) == 0

    def test_oversize_item_rejected(self):
        ff = FirstFit(capacity=1.0)
        with pytest.raises(CapacityExceededError):
            ff.place(0, 0.0, 1.0, 1.5)

    def test_total_usage_time(self):
        ff = FirstFit(capacity=1.0)
        ff.place(0, 0.0, 2.0, 0.6)
        ff.place(1, 1.0, 3.0, 0.6)  # second bin, [1,3)
        assert ff.total_usage_time == pytest.approx(4.0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FirstFit(capacity=0.0)


class TestCDFF:
    def test_separate_pools_per_duration_class(self):
        cdff = ClassifyByDurationFirstFit(capacity=1.0, alpha=2.0)
        cdff.place(0, 0.0, 1.0, 0.3)   # duration 1 → class 0
        cdff.place(1, 0.0, 4.0, 0.3)   # duration 4 → class 2
        assert len(cdff.pools) == 2
        assert cdff.bins_used == 2  # same sizes would fit one bin otherwise

    def test_same_class_shares_bins(self):
        cdff = ClassifyByDurationFirstFit(capacity=1.0, alpha=2.0)
        a = cdff.place(0, 0.0, 3.0, 0.3)
        b = cdff.place(1, 0.0, 4.0, 0.3)  # durations 3, 4 → same class
        assert a == b

    def test_global_indices_stable(self):
        cdff = ClassifyByDurationFirstFit(capacity=1.0, alpha=2.0)
        i0 = cdff.place(0, 0.0, 1.0, 0.9)
        i1 = cdff.place(1, 0.0, 4.0, 0.9)
        i2 = cdff.place(2, 0.2, 1.2, 0.9)  # class of i0, new bin
        assert len({i0, i1, i2}) == 3

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ClassifyByDurationFirstFit(capacity=0.0)
        with pytest.raises(ValueError):
            ClassifyByDurationFirstFit(capacity=1.0, alpha=1.0)


class TestPipeline:
    @pytest.fixture
    def sized_instance(self):
        return Instance(
            [
                Job(0, 0.0, 2.0, 3.0, size=0.5),
                Job(1, 0.5, 3.0, 2.0, size=0.5),
                Job(2, 1.0, 5.0, 4.0, size=0.5),
                Job(3, 6.0, 9.0, 2.0, size=0.9),
            ],
            name="sized",
        )

    def test_run_pipeline_end_to_end(self, sized_instance):
        result = run_pipeline(BatchPlus(), FirstFit(1.0), sized_instance)
        assert result.total_usage_time > 0
        assert set(result.assignments) == {0, 1, 2, 3}
        assert result.scheduler_name == "batch+"

    def test_usage_at_least_span(self, sized_instance):
        """Total usage time can never undercut the schedule's span."""
        result = run_pipeline(BatchPlus(), FirstFit(1.0), sized_instance)
        assert result.total_usage_time >= result.span - 1e-9

    def test_usage_lower_bound_sound(self, sized_instance):
        cap = 1.0
        lb = usage_lower_bound(sized_instance, cap)
        for sched, packer in [
            (Eager(), FirstFit(cap)),
            (BatchPlus(), FirstFit(cap)),
            (Profit(), ClassifyByDurationFirstFit(cap)),
        ]:
            result = run_pipeline(sched, packer, sized_instance)
            assert result.total_usage_time >= lb - 1e-9

    def test_pack_offline_schedule(self, sized_instance):
        sched = best_offline(sized_instance)
        result = pack_schedule(sched, FirstFit(1.0))
        assert result.total_usage_time >= sched.span - 1e-9

    def test_capacity_respected_on_cloud_workload(self):
        inst = cloud_instance(seed=3)
        result = run_pipeline(BatchPlus(), FirstFit(1.0), inst)
        # every bin's instantaneous load stayed within capacity (place()
        # would have raised); sanity: all jobs assigned.
        assert len(result.assignments) == len(inst)

    def test_flexibility_reduces_usage_vs_rigid_at_high_capacity(self):
        """The paper's §5 thesis: scheduling flexibility (Batch+) lowers
        total usage time versus the rigid baseline (Eager) once the span
        term dominates the work term, i.e. at generous capacity.  (At
        tight capacity the work bound ``Σ size·p / C`` dominates and
        batching cannot help — experiment E8 sweeps this crossover.)"""
        from repro.workloads import batch_window_instance

        inst = batch_window_instance(120, seed=1)
        cap = 64.0
        rigid = run_pipeline(Eager(), FirstFit(cap), inst)
        flexible = run_pipeline(BatchPlus(), FirstFit(cap), inst)
        assert flexible.total_usage_time < rigid.total_usage_time

    def test_usage_lower_bound_validates_capacity(self, sized_instance):
        with pytest.raises(ValueError):
            usage_lower_bound(sized_instance, 0.0)


class TestPeakOpenBins:
    def test_peak_bounded_by_bins_used(self):
        inst = cloud_instance(seed=2)
        result = run_pipeline(BatchPlus(), FirstFit(1.0), inst)
        assert 1 <= result.peak_open_bins <= result.bins_used

    def test_single_bin_peak_is_one(self):
        inst = Instance(
            [Job(0, 0.0, 1.0, 2.0, size=0.4), Job(1, 0.5, 2.0, 2.0, size=0.4)],
            name="one-bin",
        )
        result = run_pipeline(Eager(), FirstFit(1.0), inst)
        assert result.peak_open_bins == 1

    def test_disjoint_bins_counted_at_overlap(self):
        # two size-0.9 items overlapping in time force two simultaneous bins
        inst = Instance(
            [Job(0, 0.0, 0.0, 4.0, size=0.9), Job(1, 1.0, 1.0, 4.0, size=0.9)],
            name="two-bins",
        )
        result = run_pipeline(Eager(), FirstFit(1.0), inst)
        assert result.peak_open_bins == 2
