"""Property-based tests: every scheduler on random instances.

These are the library's core safety net:

* every scheduler produces a *feasible* schedule on arbitrary instances;
* every scheduler's span is at least the certified lower bound;
* the theorem bounds (μ+1 for Batch+, 2μ+1 for Batch, the parametric CDB
  and Profit bounds) hold against the exact optimum on small instances.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import batch_upper_bound, batchplus_ratio, cdb_ratio, profit_ratio
from repro.core import Instance, Job, simulate
from repro.offline import exact_optimal_span, span_lower_bound
from repro.schedulers import (
    Batch,
    BatchPlus,
    ClassifyByDurationBatchPlus,
    Doubler,
    Eager,
    GreedyCover,
    Lazy,
    Profit,
    RandomStart,
    WaitScale,
)

ALL_SCHEDULERS = [
    (Eager, {}),
    (Lazy, {}),
    (RandomStart, {"seed": 0}),
    (Batch, {}),
    (BatchPlus, {}),
    (ClassifyByDurationBatchPlus, {}),
    (Profit, {}),
    (Doubler, {}),
    (WaitScale, {"beta": 0.5}),
    (GreedyCover, {"theta": 0.6}),
]


@st.composite
def instances(draw, max_jobs=12, integral=False, max_t=12):
    """Random feasible instances with bounded integer-ish parameters."""
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    jobs = []
    for i in range(n):
        if integral:
            a = draw(st.integers(min_value=0, max_value=max_t))
            lax = draw(st.integers(min_value=0, max_value=4))
            p = draw(st.integers(min_value=1, max_value=4))
        else:
            a = draw(st.floats(min_value=0, max_value=max_t, allow_nan=False))
            lax = draw(st.floats(min_value=0, max_value=6, allow_nan=False))
            p = draw(st.floats(min_value=0.1, max_value=5, allow_nan=False))
        jobs.append(Job(id=i, arrival=float(a), deadline=float(a + lax), length=float(p)))
    return Instance(jobs, name="hyp")


class TestFeasibility:
    @given(instances())
    @settings(max_examples=40, deadline=None)
    def test_all_schedulers_feasible(self, inst):
        for cls, kwargs in ALL_SCHEDULERS:
            sched = cls(**kwargs)
            result = simulate(
                sched, inst, clairvoyant=cls.requires_clairvoyance
            )
            result.schedule.validate()

    @given(instances())
    @settings(max_examples=40, deadline=None)
    def test_span_at_least_lower_bound(self, inst):
        lb = span_lower_bound(inst)
        for cls, kwargs in ALL_SCHEDULERS:
            result = simulate(
                cls(**kwargs), inst, clairvoyant=cls.requires_clairvoyance
            )
            assert result.span >= lb - 1e-6

    @given(instances())
    @settings(max_examples=40, deadline=None)
    def test_span_at_most_serialised_work(self, inst):
        """No scheduler can exceed total work + total idle forced by
        arrival gaps; a crude but universal sanity bound: span <= horizon."""
        for cls, kwargs in ALL_SCHEDULERS:
            result = simulate(
                cls(**kwargs), inst, clairvoyant=cls.requires_clairvoyance
            )
            assert result.span <= inst.horizon + 1e-6


class TestTheoremBounds:
    @given(instances(max_jobs=7, integral=True, max_t=8))
    @settings(max_examples=25, deadline=None)
    def test_batchplus_mu_plus_one(self, inst):
        opt = exact_optimal_span(inst)
        result = simulate(BatchPlus(), inst)
        assert result.span <= batchplus_ratio(inst.mu) * opt + 1e-6

    @given(instances(max_jobs=7, integral=True, max_t=8))
    @settings(max_examples=25, deadline=None)
    def test_batch_two_mu_plus_one(self, inst):
        opt = exact_optimal_span(inst)
        result = simulate(Batch(), inst)
        assert result.span <= batch_upper_bound(inst.mu) * opt + 1e-6

    @given(
        instances(max_jobs=6, integral=True, max_t=8),
        st.floats(min_value=1.2, max_value=3.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_cdb_parametric_bound(self, inst, alpha):
        opt = exact_optimal_span(inst)
        result = simulate(
            ClassifyByDurationBatchPlus(alpha=alpha), inst, clairvoyant=True
        )
        assert result.span <= cdb_ratio(alpha) * opt + 1e-6

    @given(
        instances(max_jobs=6, integral=True, max_t=8),
        st.floats(min_value=1.2, max_value=3.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_profit_parametric_bound(self, inst, k):
        opt = exact_optimal_span(inst)
        result = simulate(Profit(k=k), inst, clairvoyant=True)
        assert result.span <= profit_ratio(k) * opt + 1e-6

    @given(instances(max_jobs=8, integral=True))
    @settings(max_examples=25, deadline=None)
    def test_batchplus_beats_or_ties_serialisation(self, inst):
        """Batch+'s span never exceeds (μ+1)·Σ p(flag) (Theorem 3.5's
        intermediate inequality)."""
        result = simulate(BatchPlus(), inst)
        flags = result.scheduler.flag_job_ids
        flag_work = sum(inst[j].known_length for j in flags)
        assert result.span <= (inst.mu + 1) * flag_work + 1e-6


class TestDeterminism:
    @given(instances())
    @settings(max_examples=30, deadline=None)
    def test_repeat_runs_identical(self, inst):
        """The engine and every deterministic scheduler replay exactly."""
        for cls, kwargs in ALL_SCHEDULERS:
            r1 = simulate(cls(**kwargs), inst, clairvoyant=cls.requires_clairvoyance)
            r2 = simulate(cls(**kwargs), inst, clairvoyant=cls.requires_clairvoyance)
            assert r1.schedule.starts() == r2.schedule.starts()
