"""Unit tests for the EpochBatch (cron-style) scheduler."""

from __future__ import annotations

import pytest

from repro.core import Instance, simulate
from repro.schedulers import Batch, EpochBatch
from repro.workloads import poisson_instance


class TestEpochBatch:
    def test_starts_align_to_epochs(self):
        # period 5; arrivals at 1, 2 with plenty of laxity → both start at 5.
        inst = Instance.from_triples([(1, 20, 2), (2, 20, 3)], name="align")
        result = simulate(EpochBatch(period=5.0), inst)
        assert result.schedule.start_of(0) == 5.0
        assert result.schedule.start_of(1) == 5.0

    def test_deadline_backstop(self):
        # period 100 but the job's deadline is 3: it must start at 3.
        inst = Instance.from_triples([(0, 3, 1)], name="backstop")
        result = simulate(EpochBatch(period=100.0), inst)
        assert result.schedule.start_of(0) == 3.0

    def test_multiple_epochs(self):
        inst = Instance.from_triples(
            [(1, 20, 1), (6, 20, 1)], name="two-epochs"
        )
        result = simulate(EpochBatch(period=5.0), inst)
        assert result.schedule.start_of(0) == 5.0
        assert result.schedule.start_of(1) == 10.0

    def test_rearms_after_idle(self):
        # first wave batched at 5; queue drains; second arrival at 12
        # re-arms the timer → starts at 15.
        inst = Instance.from_triples([(1, 20, 1), (12, 20, 1)], name="rearm")
        result = simulate(EpochBatch(period=5.0), inst)
        assert result.schedule.start_of(1) == 15.0

    def test_feasible_on_random_workloads(self):
        for period in (0.5, 2.0, 10.0):
            inst = poisson_instance(60, seed=8)
            simulate(EpochBatch(period=period), inst).schedule.validate()

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            EpochBatch(period=0.0)

    def test_clone(self):
        assert EpochBatch(period=7.0).clone().period == 7.0

    def test_blind_epochs_can_lose_to_deadline_batching(self):
        """On the Figure-2-style family EpochBatch's blind points split
        batches that deadline-driven Batch keeps together."""
        inst = Instance.from_triples(
            [(0.0, 0.4, 1), (0.6, 0.4, 1), (1.2, 0.4, 1)], name="split"
        )
        blind = simulate(EpochBatch(period=10.0), inst)  # backstops fire
        aware = simulate(Batch(), inst)
        assert blind.span >= aware.span - 1e-9
