"""Unit tests for the MMPP and cascade arrival processes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import (
    bursty_cascade_arrivals,
    mmpp_arrivals,
    mmpp_instance,
)


class TestMmpp:
    def test_count_and_monotonicity(self):
        rng = np.random.default_rng(0)
        arr = mmpp_arrivals(200, rng)
        assert len(arr) == 200
        assert np.all(np.diff(arr) >= 0)
        assert arr[0] >= 0

    def test_empty(self):
        rng = np.random.default_rng(0)
        assert mmpp_arrivals(0, rng).size == 0

    def test_invalid_params(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            mmpp_arrivals(10, rng, rate_quiet=0.0)
        with pytest.raises(ValueError):
            mmpp_arrivals(10, rng, mean_sojourn=-1.0)

    def test_burstier_than_poisson(self):
        """MMPP inter-arrival coefficient of variation exceeds 1 (the
        Poisson value) when the regimes differ strongly."""
        rng = np.random.default_rng(42)
        arr = mmpp_arrivals(4000, rng, rate_quiet=0.1, rate_busy=10.0)
        gaps = np.diff(arr)
        cv = gaps.std() / gaps.mean()
        assert cv > 1.2

    def test_reproducible(self):
        a = mmpp_arrivals(50, np.random.default_rng(7))
        b = mmpp_arrivals(50, np.random.default_rng(7))
        assert np.array_equal(a, b)


class TestCascade:
    def test_count_and_monotonicity(self):
        rng = np.random.default_rng(1)
        arr = bursty_cascade_arrivals(300, rng)
        assert len(arr) == 300
        assert np.all(np.diff(arr) >= 0)

    def test_empty(self):
        assert bursty_cascade_arrivals(0, np.random.default_rng(0)).size == 0

    def test_contains_large_bursts(self):
        """Pareto burst sizes: some instants carry many near-simultaneous
        arrivals."""
        rng = np.random.default_rng(3)
        arr = bursty_cascade_arrivals(2000, rng)
        gaps = np.diff(arr)
        tiny = (gaps < 0.05).mean()
        assert tiny > 0.3  # a large share of arrivals are within bursts


class TestMmppInstance:
    def test_valid_instance(self):
        inst = mmpp_instance(60, seed=2)
        assert len(inst) == 60
        for j in inst:
            assert j.deadline >= j.arrival
            assert j.known_length > 0

    def test_schedulable(self):
        from repro.core import simulate
        from repro.schedulers import BatchPlus

        inst = mmpp_instance(60, seed=2)
        simulate(BatchPlus(), inst).schedule.validate()

    def test_reproducible(self):
        a = mmpp_instance(30, seed=9)
        b = mmpp_instance(30, seed=9)
        assert [j.arrival for j in a] == [j.arrival for j in b]
