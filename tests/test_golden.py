"""Golden regression tests: pinned outputs for fixed seeds.

Every value below was produced by the current implementation and is
asserted exactly (to float tolerance).  A failure here means *behaviour
changed* — maybe intentionally (update the constant and say why in the
commit), maybe a regression.  The pinned set spans the subsystems most
prone to silent drift: engine event ordering, scheduler decision rules,
offline solvers, and the adversary constructions.
"""

from __future__ import annotations

import pytest

from repro.adversaries import (
    ClairvoyantLowerBoundAdversary,
    NonClairvoyantLowerBoundAdversary,
    batch_tightness_instance,
    batchplus_tightness_instance,
    geometric_profile,
)
from repro.core import simulate
from repro.offline import (
    best_offline_span,
    chain_lower_bound,
    exact_optimal_span,
)
from repro.schedulers import make_scheduler
from repro.workloads import poisson_instance, small_integral_instance

#: scheduler name -> span on poisson_instance(50, seed=42)
GOLDEN_SPANS_POISSON_50_SEED42 = {
    "batch": 39.26813036,
    "batch+": 41.71248963,
    "cdb": 35.75953626,
    "doubler": 45.10829208,
    "eager": 47.72916919,
    "epoch-batch": 47.72333941,
    "greedy-cover": 34.70560648,
    "lazy": 55.37223348,
    "profit": 38.72583970,
    "random": 58.75247160,
    "wait-scale": 45.10829208,
}


class TestGoldenSchedulerSpans:
    @pytest.mark.parametrize("name", sorted(GOLDEN_SPANS_POISSON_50_SEED42))
    def test_span_pinned(self, name):
        inst = poisson_instance(50, seed=42)
        sched = make_scheduler(name)
        result = simulate(
            sched, inst, clairvoyant=type(sched).requires_clairvoyance
        )
        assert result.span == pytest.approx(
            GOLDEN_SPANS_POISSON_50_SEED42[name], abs=1e-6
        )


class TestGoldenOffline:
    def test_exact_opt_pinned(self):
        values = [exact_optimal_span(small_integral_instance(7, seed=s)) for s in range(5)]
        assert values == pytest.approx([6.0, 8.0, 8.0, 8.0, 7.0])

    def test_chain_lb_pinned(self):
        inst = poisson_instance(50, seed=42)
        assert chain_lower_bound(inst) == pytest.approx(21.20134670, abs=1e-6)

    def test_best_offline_pinned(self):
        inst = poisson_instance(50, seed=42)
        assert best_offline_span(inst) == pytest.approx(31.25760851, abs=1e-6)


class TestGoldenAdversaries:
    def test_clairvoyant_ratio_pinned(self):
        adv = ClairvoyantLowerBoundAdversary(25)
        result = simulate(
            make_scheduler("profit"), adversary=adv, clairvoyant=True
        )
        witness = adv.paper_optimal_schedule(result.instance)
        assert result.span / witness.span == pytest.approx(1.57899899, abs=1e-6)

    def test_nonclairvoyant_ratio_pinned(self):
        adv = NonClairvoyantLowerBoundAdversary(
            mu=5.0, profile=geometric_profile(3, 10)
        )
        result = simulate(
            make_scheduler("batch+"), adversary=adv, clairvoyant=False
        )
        witness = adv.paper_optimal_schedule(result.instance)
        assert result.span / witness.span == pytest.approx(2.0, abs=1e-9)

    def test_tightness_spans_pinned(self):
        fam = batch_tightness_instance(m=10, mu=4.0)
        assert simulate(make_scheduler("batch"), fam.instance).span == pytest.approx(80.0)
        fam = batchplus_tightness_instance(m=10, mu=4.0)
        assert simulate(make_scheduler("batch+"), fam.instance).span == pytest.approx(
            10 * (4.0 + 1 - 1e-3)
        )
