"""Unit tests for workload generators and the sweep harness."""

from __future__ import annotations

import pytest

from repro.core import simulate
from repro.offline import span_lower_bound
from repro.schedulers import Batch, BatchPlus, Eager
from repro.workloads import (
    WorkloadSpec,
    batch_window_instance,
    bimodal_instance,
    cloud_instance,
    generate,
    heavy_tail_instance,
    poisson_instance,
    ratio_stats,
    rigid_instance,
    run_grid,
    small_integral_instance,
)


class TestGenerate:
    def test_reproducible(self):
        spec = WorkloadSpec(n=50)
        a = generate(spec, seed=7)
        b = generate(spec, seed=7)
        assert [j.arrival for j in a] == [j.arrival for j in b]
        assert [j.length for j in a] == [j.length for j in b]

    def test_seed_changes_output(self):
        spec = WorkloadSpec(n=50)
        a = generate(spec, seed=1)
        b = generate(spec, seed=2)
        assert [j.arrival for j in a] != [j.arrival for j in b]

    @pytest.mark.parametrize("arrival", ["poisson", "uniform", "bursty"])
    @pytest.mark.parametrize(
        "length", ["uniform", "lognormal", "bimodal", "pareto", "constant"]
    )
    def test_all_combinations_valid(self, arrival, length):
        spec = WorkloadSpec(n=30, arrival=arrival, length=length)
        inst = generate(spec, seed=0)
        assert len(inst) == 30
        for j in inst:
            assert j.arrival >= 0
            assert j.deadline >= j.arrival
            assert j.length > 0

    @pytest.mark.parametrize("laxity", ["proportional", "constant", "uniform", "zero"])
    def test_laxity_models(self, laxity):
        spec = WorkloadSpec(n=30, laxity=laxity)
        inst = generate(spec, seed=0)
        if laxity == "zero":
            assert all(j.laxity == 0 for j in inst)
        else:
            assert any(j.laxity > 0 for j in inst)

    def test_lengths_respect_bounds(self):
        spec = WorkloadSpec(n=100, length="pareto", length_low=2.0, length_high=9.0)
        inst = generate(spec, seed=0)
        assert all(2.0 <= j.known_length <= 9.0 for j in inst)
        assert inst.mu <= 4.5 + 1e-9

    def test_integral_flag(self):
        spec = WorkloadSpec(n=40, integral=True)
        inst = generate(spec, seed=0)
        assert inst.is_integral
        assert all(j.known_length >= 1 for j in inst)

    def test_empty_workload(self):
        assert len(generate(WorkloadSpec(n=0), 0)) == 0

    def test_invalid_length_bounds(self):
        with pytest.raises(ValueError):
            generate(WorkloadSpec(n=5, length_low=0.0), 0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            generate(WorkloadSpec(n=5, arrival="nope"), 0)  # type: ignore[arg-type]


class TestShortcutFamilies:
    def test_poisson(self):
        inst = poisson_instance(25, seed=1)
        assert len(inst) == 25

    def test_bimodal_mu(self):
        inst = bimodal_instance(60, seed=0, mu=12.0)
        lengths = {j.known_length for j in inst}
        assert lengths == {1.0, 12.0}
        assert inst.mu == 12.0

    def test_heavy_tail(self):
        inst = heavy_tail_instance(40, seed=0, hi=50.0)
        assert max(j.known_length for j in inst) <= 50.0

    def test_rigid(self):
        inst = rigid_instance(20, seed=0)
        assert all(j.laxity == 0 for j in inst)

    def test_small_integral(self):
        inst = small_integral_instance(6, seed=0)
        assert inst.is_integral and len(inst) == 6

    def test_cloud_instance(self):
        inst = cloud_instance(seed=0)
        assert len(inst) == 500
        assert all(j.size > 0 for j in inst)

    def test_batch_window(self):
        inst = batch_window_instance(30, seed=0, window=24.0)
        assert all(j.deadline <= 24.0 + 1e-9 for j in inst)


class TestSweep:
    def test_run_grid_shape_and_ratios(self):
        instances = [poisson_instance(20, seed=s) for s in range(3)]
        results = run_grid([Eager(), Batch()], instances, span_lower_bound)
        assert len(results) == 6
        assert all(r.ratio >= 1.0 - 1e-9 for r in results)

    def test_grid_uses_clones(self):
        """The prototypes must stay pristine across the grid."""
        proto = Batch()
        run_grid([proto], [poisson_instance(10, seed=0)], span_lower_bound)
        assert proto.flag_job_ids == []

    def test_ratio_stats(self):
        instances = [poisson_instance(15, seed=s) for s in range(4)]
        results = run_grid([Eager(), BatchPlus()], instances, span_lower_bound)
        stats = ratio_stats(results)
        assert set(stats) == {"eager", "batch+"}
        for s in stats.values():
            assert s["runs"] == 4
            assert 1.0 - 1e-9 <= s["mean"] <= s["max"] + 1e-9

    def test_grid_matches_direct_simulation(self):
        inst = poisson_instance(20, seed=5)
        results = run_grid([Batch()], [inst], span_lower_bound)
        direct = simulate(Batch(), inst)
        assert results[0].span == pytest.approx(direct.span)
