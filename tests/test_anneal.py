"""Unit tests for the simulated-annealing improver."""

from __future__ import annotations

import pytest

from repro.core import Instance
from repro.offline import anneal, exact_optimal_span, greedy_overlap
from repro.workloads import poisson_instance, small_integral_instance


class TestAnneal:
    def test_never_worse_than_input(self):
        for seed in range(6):
            inst = small_integral_instance(8, seed=seed, max_arrival=12)
            start = greedy_overlap(inst, "arrival")
            out = anneal(start, iterations=800, seed=seed)
            assert out.span <= start.span + 1e-9
            out.validate()

    def test_never_below_exact_opt(self):
        for seed in range(6):
            inst = small_integral_instance(6, seed=seed)
            out = anneal(greedy_overlap(inst), iterations=800, seed=seed)
            assert out.span >= exact_optimal_span(inst) - 1e-9

    def test_deterministic_given_seed(self):
        inst = poisson_instance(25, seed=1)
        start = greedy_overlap(inst, "arrival")
        a = anneal(start, iterations=500, seed=9)
        b = anneal(start, iterations=500, seed=9)
        assert a.starts() == b.starts()

    def test_sometimes_escapes_local_optimum(self):
        """Across seeds, annealing strictly improves at least one greedy
        schedule (it would be useless otherwise)."""
        improved = 0
        for seed in range(10):
            inst = small_integral_instance(8, seed=seed, max_arrival=12)
            start = greedy_overlap(inst, "arrival")
            out = anneal(start, iterations=1500, seed=seed)
            if out.span < start.span - 1e-9:
                improved += 1
        assert improved >= 1

    def test_zero_iterations_is_identity(self):
        inst = poisson_instance(15, seed=0)
        start = greedy_overlap(inst)
        assert anneal(start, iterations=0).starts() == start.starts()

    def test_single_job_is_identity(self):
        inst = Instance.from_triples([(0, 4, 2)])
        start = greedy_overlap(inst)
        assert anneal(start, iterations=100).span == start.span

    def test_rigid_jobs_untouched(self):
        inst = Instance.from_triples([(0, 0, 2), (1, 0, 2)])
        start = greedy_overlap(inst)
        out = anneal(start, iterations=200)
        assert out.starts() == start.starts()

    def test_invalid_params(self):
        inst = poisson_instance(5, seed=0)
        start = greedy_overlap(inst)
        with pytest.raises(ValueError):
            anneal(start, iterations=-1)
        with pytest.raises(ValueError):
            anneal(start, cooling=1.0)
