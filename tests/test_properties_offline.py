"""Property-based tests for the offline solvers.

The solver triangle must always hold:

    chain LB  <=  exact OPT  ==  brute force  <=  best_offline  <=  any
    online scheduler's span.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Instance, Job, simulate
from repro.offline import (
    best_offline_span,
    bruteforce_optimal_span,
    chain_lower_bound,
    exact_optimal_span,
    span_lower_bound,
)
from repro.schedulers import BatchPlus


@st.composite
def tiny_integral_instances(draw, max_jobs=5):
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    jobs = []
    for i in range(n):
        a = draw(st.integers(min_value=0, max_value=6))
        lax = draw(st.integers(min_value=0, max_value=3))
        p = draw(st.integers(min_value=1, max_value=3))
        jobs.append(Job(id=i, arrival=float(a), deadline=float(a + lax), length=float(p)))
    return Instance(jobs, name="hyp-tiny")


class TestSolverTriangle:
    @given(tiny_integral_instances())
    @settings(max_examples=40, deadline=None)
    def test_exact_equals_bruteforce(self, inst):
        assert abs(exact_optimal_span(inst) - bruteforce_optimal_span(inst)) <= 1e-9

    @given(tiny_integral_instances(max_jobs=7))
    @settings(max_examples=40, deadline=None)
    def test_chain_lb_below_exact(self, inst):
        assert chain_lower_bound(inst) <= exact_optimal_span(inst) + 1e-9

    @given(tiny_integral_instances(max_jobs=7))
    @settings(max_examples=40, deadline=None)
    def test_exact_below_heuristic(self, inst):
        assert exact_optimal_span(inst) <= best_offline_span(inst) + 1e-9

    @given(tiny_integral_instances(max_jobs=7))
    @settings(max_examples=30, deadline=None)
    def test_exact_below_online(self, inst):
        online = simulate(BatchPlus(), inst)
        assert exact_optimal_span(inst) <= online.span + 1e-9

    @given(tiny_integral_instances(max_jobs=7))
    @settings(max_examples=40, deadline=None)
    def test_exact_at_least_max_length(self, inst):
        assert exact_optimal_span(inst) >= inst.max_length - 1e-9

    @given(tiny_integral_instances(max_jobs=7))
    @settings(max_examples=40, deadline=None)
    def test_span_lower_bound_consistency(self, inst):
        assert span_lower_bound(inst) >= chain_lower_bound(inst) - 1e-12
        assert span_lower_bound(inst) <= exact_optimal_span(inst) + 1e-9


class TestSolverInvariance:
    @given(tiny_integral_instances(max_jobs=5), st.integers(min_value=1, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_time_scaling(self, inst, factor):
        """OPT scales linearly with uniform time scaling."""
        scaled = inst.scaled(float(factor))
        assert abs(
            exact_optimal_span(scaled) - factor * exact_optimal_span(inst)
        ) <= 1e-6

    @given(tiny_integral_instances(max_jobs=5))
    @settings(max_examples=25, deadline=None)
    def test_adding_zero_laxity_contained_job_no_op(self, inst):
        """Adding a job that must run inside the hull of an existing job's
        mandatory interval can only keep OPT or grow it; removing jobs
        never grows it (monotonicity under subset)."""
        sub = inst.subset(list(inst.job_ids)[: max(1, len(inst) - 1)])
        assert exact_optimal_span(sub) <= exact_optimal_span(inst) + 1e-9
