"""Unit tests for counterfactual placement regrets."""

from __future__ import annotations

import pytest

from repro.analysis import placement_regrets, total_regret
from repro.core import simulate
from repro.offline import greedy_overlap, local_search
from repro.schedulers import Eager, Lazy
from repro.workloads import poisson_instance, small_integral_instance


class TestPlacementRegrets:
    def test_local_search_fixpoint_has_zero_regret(self):
        for seed in range(5):
            inst = small_integral_instance(8, seed=seed)
            sched = local_search(greedy_overlap(inst), max_sweeps=50)
            assert total_regret(sched) == pytest.approx(0.0, abs=1e-9)

    def test_eager_on_staggered_jobs_has_regret(self):
        # Eager serialises staggered laxity-rich jobs: regrets are large.
        from repro.core import Instance

        inst = Instance.from_triples(
            [(i, 10, 1) for i in range(5)], name="staircase"
        )
        result = simulate(Eager(), inst)
        regrets = placement_regrets(result.schedule)
        assert regrets[0].regret > 0
        # moving any one job onto a neighbour saves its full length
        assert regrets[0].regret == pytest.approx(1.0)

    def test_sorted_descending(self):
        inst = poisson_instance(25, seed=3)
        result = simulate(Lazy(), inst)
        regrets = placement_regrets(result.schedule)
        values = [r.regret for r in regrets]
        assert values == sorted(values, reverse=True)

    def test_regret_moves_are_feasible(self):
        inst = poisson_instance(25, seed=4)
        result = simulate(Lazy(), inst)
        for r in placement_regrets(result.schedule):
            job = inst[r.job_id]
            assert job.arrival - 1e-9 <= r.best_start <= job.deadline + 1e-9

    def test_applying_best_single_move_reduces_span(self):
        inst = poisson_instance(30, seed=5)
        result = simulate(Eager(), inst)
        regrets = placement_regrets(result.schedule)
        top = regrets[0]
        if top.regret > 0:
            starts = result.schedule.starts()
            starts[top.job_id] = top.best_start
            from repro.core import Schedule

            moved = Schedule(inst, starts)
            assert moved.span == pytest.approx(
                result.schedule.span - top.regret, abs=1e-9
            )

    def test_all_jobs_reported(self):
        inst = poisson_instance(20, seed=6)
        result = simulate(Eager(), inst)
        regrets = placement_regrets(result.schedule)
        assert sorted(r.job_id for r in regrets) == sorted(inst.job_ids)
