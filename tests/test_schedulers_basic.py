"""Unit tests for the baseline schedulers (Eager, Lazy, RandomStart,
Doubler) and the registry."""

from __future__ import annotations

import pytest

from repro.core import Instance, simulate
from repro.schedulers import (
    Doubler,
    Eager,
    Lazy,
    RandomStart,
    clairvoyant_schedulers,
    make_scheduler,
    nonclairvoyant_schedulers,
    scheduler_names,
)
from repro.workloads import poisson_instance


class TestEagerLazy:
    def test_eager_serialises_staggered_jobs(self):
        # E7 mechanism: jobs arriving 1 apart, each of length 1, with
        # plenty of laxity — Eager keeps span n while opt batches to ~1+n·0.
        inst = Instance.from_triples(
            [(i, 10, 1) for i in range(5)], name="staircase"
        )
        result = simulate(Eager(), inst)
        assert result.span == pytest.approx(5.0)

    def test_lazy_wastes_clustered_arrivals(self):
        # all jobs arrive at 0 but deadlines spread: Lazy serialises them.
        inst = Instance(
            [
                __import__("repro").Job(i, 0.0, 3.0 * i, 1.0)
                for i in range(4)
            ],
            name="spread",
        )
        result = simulate(Lazy(), inst)
        assert result.span == pytest.approx(4.0)
        # whereas starting all at 0 gives span 1
        eager = simulate(Eager(), inst)
        assert eager.span == pytest.approx(1.0)


class TestRandomStart:
    def test_reproducible_given_seed(self):
        inst = poisson_instance(30, seed=1)
        r1 = simulate(RandomStart(seed=42), inst)
        r2 = simulate(RandomStart(seed=42), inst)
        assert r1.schedule.starts() == r2.schedule.starts()

    def test_different_seeds_differ(self):
        inst = poisson_instance(30, seed=1)
        r1 = simulate(RandomStart(seed=1), inst)
        r2 = simulate(RandomStart(seed=2), inst)
        assert r1.schedule.starts() != r2.schedule.starts()

    def test_starts_within_windows(self):
        inst = poisson_instance(50, seed=3)
        result = simulate(RandomStart(seed=0), inst)
        result.schedule.validate()

    def test_zero_laxity_starts_immediately(self):
        inst = Instance.from_triples([(2, 0, 1)])
        result = simulate(RandomStart(seed=0), inst)
        assert result.schedule.start_of(0) == 2.0

    def test_clone_resets_rng(self):
        proto = RandomStart(seed=7)
        inst = poisson_instance(20, seed=0)
        r1 = simulate(proto.clone(), inst)
        r2 = simulate(proto.clone(), inst)
        assert r1.schedule.starts() == r2.schedule.starts()


class TestDoubler:
    def test_waits_own_length(self):
        # single job, laxity 10, p=3: Doubler starts at a + p = 3.
        inst = Instance.from_triples([(0, 10, 3)], name="wait")
        result = simulate(Doubler(), inst, clairvoyant=True)
        assert result.schedule.start_of(0) == 3.0

    def test_deadline_caps_wait(self):
        # laxity 1 < p=3: start at the deadline.
        inst = Instance.from_triples([(0, 1, 3)], name="cap")
        result = simulate(Doubler(), inst, clairvoyant=True)
        assert result.schedule.start_of(0) == 1.0

    def test_piggybacks_when_covered(self):
        # J0 runs [2, 10) after waiting min(d,a+p)=2 (p=8, laxity 2).
        # J1 arrives at 3 with p=2: [3,5) ⊆ [2,10) → starts immediately.
        inst = Instance.from_triples([(0, 2, 8), (3, 20, 2)], name="piggy")
        result = simulate(Doubler(), inst, clairvoyant=True)
        assert result.schedule.start_of(0) == 2.0
        assert result.schedule.start_of(1) == 3.0

    def test_not_covered_waits(self):
        # J1 (p=9) at t=3 is not covered by [2,10): waits until a+p=12.
        inst = Instance.from_triples([(0, 2, 8), (3, 20, 9)], name="nocover")
        result = simulate(Doubler(), inst, clairvoyant=True)
        assert result.schedule.start_of(1) == 12.0

    def test_feasible_on_random_workloads(self):
        inst = poisson_instance(60, seed=9)
        result = simulate(Doubler(), inst, clairvoyant=True)
        result.schedule.validate()


class TestRegistry:
    def test_all_names_resolve(self):
        for name in scheduler_names():
            sched = make_scheduler(name)
            assert sched.name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_scheduler("nope")

    def test_kwargs_forwarded(self):
        sched = make_scheduler("profit", k=2.25)
        assert sched.k == 2.25

    def test_clairvoyance_partition(self):
        cl = set(clairvoyant_schedulers())
        ncl = set(nonclairvoyant_schedulers())
        assert cl | ncl == set(scheduler_names())
        assert not (cl & ncl)
        assert {"cdb", "profit", "doubler"} <= cl
        assert {"batch", "batch+", "eager", "lazy"} <= ncl

    def test_describe_strings(self):
        for name in scheduler_names():
            desc = make_scheduler(name).describe()
            assert isinstance(desc, str) and desc
