"""Unit tests for the §4.1 clairvoyant lower-bound adversary."""

from __future__ import annotations

import pytest

from repro.adversaries import PHI, ClairvoyantLowerBoundAdversary
from repro.analysis import clairvoyant_adversary_ratio
from repro.core import simulate
from repro.schedulers import (
    Batch,
    BatchPlus,
    ClassifyByDurationBatchPlus,
    Doubler,
    Eager,
    Lazy,
    Profit,
)


def play(scheduler, n, clairvoyant):
    adv = ClairvoyantLowerBoundAdversary(n=n)
    result = simulate(scheduler, adversary=adv, clairvoyant=clairvoyant)
    witness = adv.paper_optimal_schedule(result.instance)
    return adv, result, witness


class TestConstruction:
    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ClairvoyantLowerBoundAdversary(n=0)

    def test_iteration_jobs_shape(self):
        adv = ClairvoyantLowerBoundAdversary(n=3)
        jobs = list(adv.initial_jobs())
        short, long = jobs
        assert short.length == 1.0 and short.laxity == 0.0
        assert long.length == pytest.approx(PHI)
        assert long.deadline == pytest.approx(3 * (PHI + 1))

    def test_all_long_jobs_share_deadline(self):
        adv, result, _ = play(Profit(), 5, True)
        longs = [j for j in result.instance if j.id % 2 == 0]
        deadlines = {round(j.deadline, 9) for j in longs}
        assert len(deadlines) == 1


class TestForcedRatios:
    def test_eager_style_stops_first_iteration(self):
        """A scheduler that never delays the long job into the short's
        interval... Eager *does* start it at arrival = inside [T,T+1):
        it survives, but pays φ per iteration."""
        adv, result, witness = play(Eager(), 20, False)
        assert not adv.stopped_early
        ratio = result.span / witness.span
        assert ratio >= clairvoyant_adversary_ratio(20) - 1e-9

    def test_lazy_stops_immediately(self):
        """Lazy starts long jobs at their (huge) deadlines — never within
        the short's interval — so the adversary stops at iteration 1 and
        still forces >= φ-ish ratio via the early-stop branch."""
        adv, result, witness = play(Lazy(), 20, False)
        assert adv.stopped_early
        assert adv.iterations_played == 1
        ratio = result.span / witness.span
        assert ratio >= PHI - 1e-9

    @pytest.mark.parametrize(
        "scheduler,clair",
        [
            (Profit(), True),
            (ClassifyByDurationBatchPlus(), True),
            (Doubler(), True),
            (Batch(), False),
            (BatchPlus(), False),
            (Eager(), False),
            (Lazy(), False),
        ],
        ids=["profit", "cdb", "doubler", "batch", "batch+", "eager", "lazy"],
    )
    def test_every_scheduler_forced_to_theory_ratio(self, scheduler, clair):
        """Theorem 4.1: every deterministic scheduler's ratio on the
        construction is at least min(φ, nφ/(φ+n-1))."""
        n = 30
        adv, result, witness = play(scheduler, n, clair)
        ratio = result.span / witness.span
        assert ratio >= clairvoyant_adversary_ratio(n) - 1e-9

    def test_ratio_approaches_phi(self):
        """The forced ratio against a surviving scheduler (Profit) rises
        towards φ as n grows."""
        ratios = []
        for n in (2, 8, 32, 128):
            adv, result, witness = play(Profit(), n, True)
            ratios.append(result.span / witness.span)
        assert all(b >= a - 1e-12 for a, b in zip(ratios, ratios[1:]))
        assert ratios[-1] >= PHI - 0.02

    def test_witness_schedule_is_feasible(self):
        adv, result, witness = play(BatchPlus(), 10, False)
        witness.validate()

    def test_witness_span_formula(self):
        """When the scheduler survives all n iterations, the witness span
        is φ + (n-1)."""
        n = 12
        adv, result, witness = play(Eager(), n, False)
        assert not adv.stopped_early
        assert witness.span == pytest.approx(PHI + (n - 1))
