"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; this guard keeps them from
rotting as the API evolves.  Each runs in a subprocess with a generous
timeout and must exit 0 without touching the repository tree.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
# Underscore-prefixed files are shared helpers (e.g. the ``_bootstrap``
# sys.path shim every example imports first), not runnable examples.
EXAMPLES = sorted(
    p for p in EXAMPLES_DIR.glob("*.py") if not p.name.startswith("_")
)


def test_examples_exist():
    assert len(EXAMPLES) >= 8


def test_examples_import_the_bootstrap_shim():
    """Every example must bootstrap sys.path so it runs from any cwd."""
    for path in EXAMPLES:
        assert "import _bootstrap" in path.read_text(), (
            f"{path.name} is missing the 'import _bootstrap' shim"
        )


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(path, tmp_path):
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=240,
        cwd=tmp_path,  # examples must not rely on (or write into) the repo
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print their results"
