"""Tests for the ``repro.lint`` static analyzer and its runtime twin.

The headline contract: RL001 (the static clairvoyance-leak rule) and the
engine's :class:`ClairvoyanceGuard` (the dynamic oracle, armed under
strict mode) must agree on the shared fixture schedulers in
``tests/data/lint_fixtures/`` — the leaky one is flagged by *both*, the
clean one by *neither*.
"""

from __future__ import annotations

import importlib.util
import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.core import ClairvoyanceError, Instance, Simulator, strict_mode_enabled
from repro.lint import (
    ALL_RULES,
    Baseline,
    default_target,
    lint_paths,
    lint_source,
    load_baseline,
    rule_by_code,
    write_baseline,
)

FIXTURES = Path(__file__).parent / "data" / "lint_fixtures"
LEAKY = FIXTURES / "leaky_scheduler.py"
CLEAN = FIXTURES / "clean_scheduler.py"
REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_fixture_class(path: Path, class_name: str):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return getattr(mod, class_name)


def codes(findings) -> set[str]:
    return {f.rule for f in findings}


# ---------------------------------------------------------------------------
# Rule registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_all_rules_registered(self):
        got = {r.code for r in ALL_RULES}
        assert {"RL001", "RL002", "RL003", "RL004", "RL005", "RL006"} <= got

    def test_rule_by_code(self):
        assert rule_by_code("RL001").code == "RL001"
        with pytest.raises(KeyError):
            rule_by_code("RL999")


# ---------------------------------------------------------------------------
# RL001 — clairvoyance leaks
# ---------------------------------------------------------------------------

LEAKY_SRC = textwrap.dedent(
    """
    from repro.schedulers.base import OnlineScheduler

    class Sneaky(OnlineScheduler):
        requires_clairvoyance = False

        def on_arrival(self, ctx, job):
            if job.length > 2:
                ctx.start(job.id)
    """
)


class TestRL001:
    def test_flags_direct_read(self):
        findings = lint_source(LEAKY_SRC, "x.py")
        assert codes(findings) == {"RL001"}
        (f,) = findings
        assert "length" in f.message and "Sneaky" in f.symbol

    def test_declared_clairvoyant_is_fine(self):
        src = LEAKY_SRC.replace(
            "requires_clairvoyance = False", "requires_clairvoyance = True"
        )
        assert lint_source(src, "x.py") == []

    def test_completion_read_is_fine(self):
        src = textwrap.dedent(
            """
            from repro.schedulers.base import OnlineScheduler

            class Honest(OnlineScheduler):
                requires_clairvoyance = False

                def on_completion(self, ctx, job):
                    self.total += job.length
            """
        )
        assert lint_source(src, "x.py") == []

    def test_leak_through_helper_method(self):
        src = textwrap.dedent(
            """
            from repro.schedulers.base import OnlineScheduler

            class Indirect(OnlineScheduler):
                requires_clairvoyance = False

                def on_arrival(self, ctx, job):
                    self._peek(job)

                def _peek(self, job):
                    return job.length
            """
        )
        findings = lint_source(src, "x.py")
        assert codes(findings) == {"RL001"}
        assert any("_peek" in f.symbol for f in findings)

    def test_pending_loop_variable_tracked(self):
        src = textwrap.dedent(
            """
            from repro.schedulers.base import OnlineScheduler

            class LoopLeak(OnlineScheduler):
                requires_clairvoyance = False

                def on_deadline(self, ctx, job):
                    for p in ctx.pending():
                        if p.length < 1:
                            ctx.start(p.id)
            """
        )
        assert codes(lint_source(src, "x.py")) == {"RL001"}

    def test_non_scheduler_class_untouched(self):
        src = textwrap.dedent(
            """
            class Interval:
                def __init__(self, length):
                    self.job = object()

                def use(self, job):
                    return job.length
            """
        )
        assert lint_source(src, "x.py") == []


# ---------------------------------------------------------------------------
# RL002 — nondeterminism (scoped to schedulers/ and adversaries/ paths)
# ---------------------------------------------------------------------------


class TestRL002:
    SCOPED = "src/repro/schedulers/x.py"

    def test_unseeded_random_flagged(self):
        src = "import random\n\ndef pick(xs):\n    return random.choice(xs)\n"
        assert codes(lint_source(src, self.SCOPED)) == {"RL002"}

    def test_seeded_generator_ok(self):
        src = (
            "import numpy as np\n\n"
            "def pick(xs, seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return rng.choice(xs)\n"
        )
        assert lint_source(src, self.SCOPED) == []

    def test_wall_clock_flagged(self):
        src = "import time\n\ndef now():\n    return time.time()\n"
        assert codes(lint_source(src, self.SCOPED)) == {"RL002"}

    def test_set_iteration_flagged(self):
        src = (
            "def order(jobs):\n"
            "    ids = {j.id for j in jobs}\n"
            "    for i in ids:\n"
            "        yield i\n"
        )
        assert codes(lint_source(src, self.SCOPED)) == {"RL002"}

    def test_sorted_set_iteration_ok(self):
        src = (
            "def order(jobs):\n"
            "    ids = {j.id for j in jobs}\n"
            "    for i in sorted(ids):\n"
            "        yield i\n"
        )
        assert lint_source(src, self.SCOPED) == []

    def test_out_of_scope_path_ignored(self):
        src = "import random\n\ndef pick(xs):\n    return random.choice(xs)\n"
        assert lint_source(src, "src/repro/workloads/x.py") == []


# ---------------------------------------------------------------------------
# RL003 — float equality in certification code (scoped paths)
# ---------------------------------------------------------------------------


class TestRL003:
    SCOPED = "src/repro/offline/x.py"

    def test_float_equality_flagged(self):
        src = (
            "def check(a: float, b: float) -> bool:\n"
            "    return a == b\n"
        )
        assert codes(lint_source(src, self.SCOPED)) == {"RL003"}

    def test_known_float_attr_flagged(self):
        src = (
            "def rigid(job):\n"
            "    return job.laxity == 0\n"
        )
        assert codes(lint_source(src, self.SCOPED)) == {"RL003"}

    def test_tolerance_comparison_ok(self):
        src = (
            "def check(a: float, b: float) -> bool:\n"
            "    return abs(a - b) <= 1e-12\n"
        )
        assert lint_source(src, self.SCOPED) == []

    def test_int_comparison_ok(self):
        src = (
            "def check(xs: list) -> bool:\n"
            "    return len(xs) == 0\n"
        )
        assert lint_source(src, self.SCOPED) == []

    def test_none_sentinel_ok(self):
        src = (
            "def check(a: float) -> bool:\n"
            "    return a != None\n"
        )
        assert lint_source(src, self.SCOPED) == []


# ---------------------------------------------------------------------------
# RL004 / RL005 — scheduler state-mutation and reset contract
# ---------------------------------------------------------------------------


class TestRL004:
    def test_job_attribute_assignment_flagged(self):
        src = textwrap.dedent(
            """
            from repro.schedulers.base import OnlineScheduler

            class Mutator(OnlineScheduler):
                def on_arrival(self, ctx, job):
                    job.deadline = job.deadline + 1
            """
        )
        assert codes(lint_source(src, "x.py")) == {"RL004"}

    def test_own_state_assignment_ok(self):
        src = textwrap.dedent(
            """
            from repro.schedulers.base import OnlineScheduler

            class Stateful(OnlineScheduler):
                def on_arrival(self, ctx, job):
                    self.last_seen = job.id
            """
        )
        assert lint_source(src, "x.py") == []


class TestRL005:
    def test_reset_without_super_flagged(self):
        src = textwrap.dedent(
            """
            from repro.schedulers.base import OnlineScheduler

            class Forgetful(OnlineScheduler):
                def reset(self):
                    self.items = []
            """
        )
        findings = lint_source(src, "x.py")
        assert codes(findings) == {"RL005"}
        assert "super().reset()" in findings[0].message

    def test_reset_with_super_ok(self):
        src = textwrap.dedent(
            """
            from repro.schedulers.base import OnlineScheduler

            class Careful(OnlineScheduler):
                def reset(self):
                    super().reset()
                    self.items = []
            """
        )
        assert lint_source(src, "x.py") == []


# ---------------------------------------------------------------------------
# RL006 — unused imports
# ---------------------------------------------------------------------------


class TestRL006:
    def test_unused_import_flagged(self):
        src = "import math\n\ndef f():\n    return 1\n"
        assert codes(lint_source(src, "x.py")) == {"RL006"}

    def test_used_via_attribute_ok(self):
        src = "import math\n\ndef f():\n    return math.pi\n"
        assert lint_source(src, "x.py") == []

    def test_dunder_all_export_ok(self):
        src = "from os import path\n\n__all__ = ['path']\n"
        assert lint_source(src, "x.py") == []

    def test_init_py_exempt(self):
        src = "from .mod import thing\n"
        assert lint_source(src, "pkg/__init__.py") == []


HOT = "src/repro/core/engine.py"


class TestRL011:
    def test_print_in_core_flagged(self):
        src = "def dispatch(ev):\n    print(ev)\n"
        assert codes(lint_source(src, HOT)) == {"RL011"}

    def test_print_in_schedulers_flagged(self):
        src = "def on_deadline(self, ctx, job):\n    print(job.id)\n"
        findings = lint_source(src, "src/repro/schedulers/batch.py")
        assert "RL011" in codes(findings)

    def test_module_logging_call_flagged(self):
        src = textwrap.dedent(
            """
            import logging

            def dispatch(ev):
                logging.info("event %s", ev)
            """
        )
        assert codes(lint_source(src, HOT)) == {"RL011"}

    def test_chained_get_logger_flagged(self):
        src = textwrap.dedent(
            """
            import logging

            def dispatch(ev):
                logging.getLogger(__name__).debug("event %s", ev)
            """
        )
        assert codes(lint_source(src, HOT)) == {"RL011"}

    def test_bound_logger_flagged(self):
        src = textwrap.dedent(
            """
            import logging

            log = logging.getLogger(__name__)

            def dispatch(ev):
                log.warning("event %s", ev)
            """
        )
        assert codes(lint_source(src, HOT)) == {"RL011"}

    def test_stdio_writes_flagged(self):
        src = textwrap.dedent(
            """
            import sys

            def dispatch(ev):
                sys.stdout.write(str(ev))
                sys.stderr.write(str(ev))
            """
        )
        findings = [f for f in lint_source(src, HOT) if f.rule == "RL011"]
        assert len(findings) == 2
        assert {f.symbol for f in findings} == {"sys.stdout", "sys.stderr"}

    def test_non_hot_path_ignored(self):
        src = "def render(report):\n    print(report)\n"
        assert lint_source(src, "src/repro/workloads/profiles.py") == []
        assert lint_source(src, "src/repro/cli.py") == []

    def test_recorder_usage_clean(self):
        src = textwrap.dedent(
            """
            def on_deadline(self, ctx, job):
                if self.obs.enabled:
                    self.obs.decision(
                        "deadline-flag", job=job.id, t=ctx.now,
                        scheduler=self._obs_scheduler,
                    )
                ctx.start(job.id)
            """
        )
        assert lint_source(src, "src/repro/schedulers/batch.py") == []

    def test_inline_ignore_suppresses(self):
        src = "def dispatch(ev):\n    print(ev)  # lint: ignore[RL011]\n"
        assert lint_source(src, HOT) == []

    def test_windows_separators_normalized(self):
        src = "def dispatch(ev):\n    print(ev)\n"
        findings = lint_source(src, "src\\repro\\core\\engine.py")
        assert codes(findings) == {"RL011"}


class TestRL012:
    """hot-path-object-alloc: columnar-core allocation discipline."""

    BAD_FIXTURE = FIXTURES / "hot_alloc_engine.py"
    CLEAN_FIXTURE = FIXTURES / "hot_alloc_clean.py"

    def rl012(self, src: str, path: str):
        return [f for f in lint_source(src, path) if f.rule == "RL012"]

    def test_fixture_hot_sections_flagged(self):
        findings = self.rl012(self.BAD_FIXTURE.read_text(), HOT)
        # one Job(...) ctor, one comprehension gather, one for-append
        assert len(findings) == 3
        assert {f.symbol for f in findings} == {
            "Job",
            "_cohort_arrival",
            "_start_batch",
        }

    def test_fixture_non_hot_function_passes(self):
        """_finish_report allocates per job but is not a hot section."""
        findings = self.rl012(self.BAD_FIXTURE.read_text(), HOT)
        assert all("_finish_report" not in f.message for f in findings)

    def test_clean_fixture_passes(self):
        src = self.CLEAN_FIXTURE.read_text()
        assert self.rl012(src, "src/repro/core/columnar.py") == []

    def test_job_ctor_in_handler_flagged(self):
        src = textwrap.dedent(
            """
            def _handle_completion(self, idx):
                return Job(id=idx, arrival=0.0, deadline=1.0, length=1.0)
            """
        )
        assert codes(self.rl012(src, HOT)) == {"RL012"}
        assert codes(self.rl012(src, "src/repro/core/columnar.py")) == {
            "RL012"
        }

    def test_attribute_gather_comprehension_flagged(self):
        src = textwrap.dedent(
            """
            def _cohort_arrival(self, cohort):
                return [view.deadline for view in cohort]
            """
        )
        assert codes(self.rl012(src, HOT)) == {"RL012"}

    def test_for_append_gather_flagged(self):
        src = textwrap.dedent(
            """
            def _start_batch(self, views):
                out = []
                for v in views:
                    out.append(v.start_time)
                return out
            """
        )
        assert codes(self.rl012(src, HOT)) == {"RL012"}

    def test_subscript_gather_is_sanctioned(self):
        """Row-index plumbing (list mirrors / columns) must pass."""
        src = textwrap.dedent(
            """
            def _cohort_arrival(self, cohort):
                deadline_l = self._table.deadline_list
                return [(deadline_l[idx], 3, idx) for idx in cohort]
            """
        )
        assert self.rl012(src, HOT) == []

    def test_error_path_ctor_outside_hot_section_passes(self):
        src = textwrap.dedent(
            """
            def materialize(self, rows):
                return [Job(id=r, arrival=0.0, deadline=1.0) for r in rows]
            """
        )
        assert self.rl012(src, HOT) == []

    def test_other_files_not_policed(self):
        src = textwrap.dedent(
            """
            def _handle_completion(self, idx):
                return Job(id=idx, arrival=0.0, deadline=1.0, length=1.0)
            """
        )
        assert self.rl012(src, "src/repro/schedulers/batch.py") == []
        assert self.rl012(src, "src/repro/perf/bench.py") == []

    def test_inline_ignore_suppresses(self):
        src = (
            "def _handle_completion(self, idx):\n"
            "    return Job(id=idx, arrival=0.0, deadline=1.0)"
            "  # lint: ignore[RL012]\n"
        )
        assert self.rl012(src, HOT) == []

    def test_shipped_engine_cores_are_clean(self):
        for rel in ("src/repro/core/engine.py", "src/repro/core/columnar.py"):
            path = REPO_ROOT / rel
            findings = self.rl012(path.read_text(), str(path))
            assert findings == [], f"{rel}: {findings}"


class TestLiveTelemetryScope:
    """RL011/RL012 cover the live telemetry plane (repro/obs/live.py).

    The per-record ``_handle_*`` feed runs on every armed serve
    session's collect loop, so it is policed exactly like the engine
    cores — via the ``live_feed_*`` fixture pair — while the rest of
    the obs package (per-scrape rendering, CLI) stays exempt.
    """

    LIVE = "src/repro/obs/live.py"
    BAD_FIXTURE = FIXTURES / "live_feed_leaky.py"
    CLEAN_FIXTURE = FIXTURES / "live_feed_clean.py"

    def test_leaky_fixture_flagged_by_both_rules(self):
        findings = lint_source(self.BAD_FIXTURE.read_text(), self.LIVE)
        assert codes(findings) == {"RL011", "RL012"}
        rl012 = [f for f in findings if f.rule == "RL012"]
        # one Job(...) ctor, one attribute-gather comprehension
        assert {f.symbol for f in rl012} == {"Job", "_handle_start"}

    def test_leaky_fixture_non_hot_section_passes(self):
        """render_snapshot allocates per row but runs per scrape."""
        findings = lint_source(self.BAD_FIXTURE.read_text(), self.LIVE)
        assert all("render_snapshot" not in f.message for f in findings)

    def test_clean_fixture_passes(self):
        assert lint_source(self.CLEAN_FIXTURE.read_text(), self.LIVE) == []

    def test_other_obs_files_not_policed(self):
        src = "def _handle_release(self, attrs):\n    print(attrs)\n"
        assert lint_source(src, "src/repro/obs/top.py") == []
        assert lint_source(src, "src/repro/obs/cli.py") == []

    def test_shipped_live_module_is_clean(self):
        path = REPO_ROOT / "src/repro/obs/live.py"
        findings = lint_source(path.read_text(), str(path))
        assert findings == [], f"live.py: {findings}"


# ---------------------------------------------------------------------------
# Suppressions, baseline, runner
# ---------------------------------------------------------------------------


class TestSuppression:
    def test_inline_ignore(self):
        src = "import math  # lint: ignore[RL006]\n\ndef f():\n    return 1\n"
        assert lint_source(src, "x.py") == []

    def test_noqa_spelling(self):
        src = "import math  # noqa: RL006\n\ndef f():\n    return 1\n"
        assert lint_source(src, "x.py") == []

    def test_wrong_code_does_not_suppress(self):
        src = "import math  # lint: ignore[RL001]\n\ndef f():\n    return 1\n"
        assert codes(lint_source(src, "x.py")) == {"RL006"}


class TestBaseline:
    def test_round_trip_and_filter(self, tmp_path):
        findings = lint_source("import math\n", "x.py")
        assert findings
        base = Baseline.from_findings(findings)
        path = tmp_path / "baseline.json"
        write_baseline(base, path)
        loaded = load_baseline(path)
        fresh, absorbed = loaded.filter(findings)
        assert fresh == [] and absorbed == 1

    def test_missing_file_is_empty(self, tmp_path):
        base = load_baseline(tmp_path / "nope.json")
        findings = lint_source("import math\n", "x.py")
        fresh, absorbed = base.filter(findings)
        assert len(fresh) == 1 and absorbed == 0

    def test_bad_version_rejected(self, tmp_path):
        p = tmp_path / "baseline.json"
        p.write_text(json.dumps({"version": 99, "findings": {}}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(p)


class TestRunner:
    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        report = lint_paths([bad])
        assert not report.clean
        assert codes(report.findings) == {"RL000"}

    def test_shipped_package_is_clean(self):
        report = lint_paths([default_target()])
        assert report.clean, report.render()

    def test_json_rendering(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text("import math\n")
        report = lint_paths([f])
        data = json.loads(report.render_json())
        assert data["findings"][0]["rule"] == "RL006"


# ---------------------------------------------------------------------------
# CLI gate
# ---------------------------------------------------------------------------


def _run_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )


class TestCLI:
    def test_exits_nonzero_on_leaky_fixture(self):
        proc = _run_cli(str(LEAKY), "--no-baseline")
        assert proc.returncode == 1
        assert "RL001" in proc.stdout

    def test_exits_zero_on_clean_fixture(self):
        proc = _run_cli(str(CLEAN), "--no-baseline")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_exits_zero_on_shipped_suite(self):
        proc = _run_cli()
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_select_restricts_rules(self):
        # The leaky fixture only violates RL001; selecting RL006 passes it.
        proc = _run_cli(str(LEAKY), "--no-baseline", "--select", "RL006")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_list_rules(self):
        proc = _run_cli("--list-rules")
        assert proc.returncode == 0
        for code in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006"):
            assert code in proc.stdout


# ---------------------------------------------------------------------------
# Static rule ↔ runtime guard agreement (the cross-validation contract)
# ---------------------------------------------------------------------------


@pytest.fixture
def two_jobs() -> Instance:
    return Instance.from_triples([(0, 2, 1), (0, 2, 3)], name="guard-probe")


class TestStaticDynamicAgreement:
    def test_leaky_flagged_statically(self):
        report = lint_paths([LEAKY])
        assert "RL001" in codes(report.findings)

    def test_leaky_trips_runtime_guard(self, two_jobs):
        sched = _load_fixture_class(LEAKY, "LeakyScheduler")()
        sim = Simulator(sched, instance=two_jobs, clairvoyant=True, strict=True)
        with pytest.raises(ClairvoyanceError, match="requires_clairvoyance=False"):
            sim.run()
        guard = sim.strict_guard
        assert guard is not None and guard.accesses, (
            "the guard must record the offending (job, time) access"
        )

    def test_clean_passes_statically(self):
        report = lint_paths([CLEAN])
        assert report.clean, report.render()

    def test_clean_passes_runtime_guard(self, two_jobs):
        sched = _load_fixture_class(CLEAN, "CleanScheduler")()
        sim = Simulator(sched, instance=two_jobs, clairvoyant=True, strict=True)
        result = sim.run()
        guard = sim.strict_guard
        assert guard is not None and guard.accesses == []
        assert result.span > 0
        assert sorted(sched.observed_lengths) == [1.0, 3.0]

    def test_leaky_runs_silently_without_strict(self, two_jobs):
        # Exactly the hole the guard closes: a mis-declared scheduler in a
        # clairvoyant run reads lengths with impunity when strict is off.
        sched = _load_fixture_class(LEAKY, "LeakyScheduler")()
        sim = Simulator(sched, instance=two_jobs, clairvoyant=True, strict=False)
        result = sim.run()
        assert sim.strict_guard is None
        assert result.span > 0

    def test_declared_clairvoyant_scheduler_not_guarded(self, two_jobs):
        from repro.schedulers import Doubler

        sched = Doubler()
        sim = Simulator(sched, instance=two_jobs, clairvoyant=True, strict=True)
        sim.run()
        assert sim.strict_guard is None

    def test_env_var_arms_strict_mode(self, two_jobs, monkeypatch):
        monkeypatch.setenv("REPRO_STRICT", "1")
        assert strict_mode_enabled()
        sched = _load_fixture_class(LEAKY, "LeakyScheduler")()
        with pytest.raises(ClairvoyanceError):
            Simulator(sched, instance=two_jobs, clairvoyant=True).run()

    def test_env_var_off_values(self, monkeypatch):
        for value in ("", "0", "false", "off"):
            monkeypatch.setenv("REPRO_STRICT", value)
            assert not strict_mode_enabled()


class TestServeHotPathScope:
    """``repro/serve`` is inside the RL011/RL012 hot-path scope: the
    daemon speaks JSONL on sockets, so stray prints corrupt the protocol
    stream and per-op allocation churn sits on the serving hot loop."""

    def test_print_in_serve_daemon_flagged(self):
        src = "def _route(self, op, conn):\n    print(op)\n"
        assert "RL011" in codes(lint_source(src, "src/repro/serve/daemon.py"))

    def test_logging_in_serve_session_flagged(self):
        src = textwrap.dedent(
            """
            import logging

            def dispatch(ev):
                logging.info("op %s", ev)
            """
        )
        assert codes(lint_source(src, "src/repro/serve/session.py")) == {
            "RL011"
        }

    def test_job_ctor_in_serve_handler_flagged(self):
        src = textwrap.dedent(
            """
            def _handle_completion(self, op):
                return Job(id=1, arrival=0.0, deadline=2.0, length=1.0)
            """
        )
        findings = [
            f
            for f in lint_source(src, "src/repro/serve/daemon.py")
            if f.rule == "RL012"
        ]
        assert codes(findings) == {"RL012"}
