"""Unit tests for offline heuristics (greedy overlap + local search)."""

from __future__ import annotations

import pytest

from repro.core import Instance
from repro.core.intervals import Interval, IntervalUnion
from repro.offline import (
    best_offline,
    best_offline_span,
    candidate_starts,
    exact_optimal_span,
    greedy_overlap,
    local_search,
    span_lower_bound,
)
from repro.workloads import poisson_instance, small_integral_instance


class TestCandidateStarts:
    def test_empty_union_gives_window_ends(self):
        job = Instance.from_triples([(1, 4, 2)])[0]
        assert candidate_starts(job, IntervalUnion()) == [1.0, 5.0]

    def test_component_endpoints_included(self):
        job = Instance.from_triples([(0, 10, 2)])[0]
        union = IntervalUnion([Interval(3, 6)])
        cands = candidate_starts(job, union)
        # endpoints 3, 6 and their -p shifts 1, 4, plus window ends 0, 10
        assert set(cands) == {0.0, 1.0, 3.0, 4.0, 6.0, 10.0}

    def test_candidates_clipped_to_window(self):
        job = Instance.from_triples([(5, 1, 2)])[0]
        union = IntervalUnion([Interval(0, 100)])
        for s in candidate_starts(job, union):
            assert 5.0 <= s <= 6.0


class TestGreedyOverlap:
    def test_produces_feasible_schedule(self):
        inst = poisson_instance(40, seed=2)
        for order in ("deadline", "arrival", "length"):
            greedy_overlap(inst, order).validate()

    def test_unknown_order_rejected(self, simple_instance):
        with pytest.raises(ValueError):
            greedy_overlap(simple_instance, "nope")  # type: ignore[arg-type]

    def test_overlappable_jobs_get_overlapped(self):
        inst = Instance.from_triples([(0, 5, 3), (2, 3, 2)])
        sched = greedy_overlap(inst)
        assert sched.span == pytest.approx(3.0)


class TestLocalSearch:
    def test_never_increases_span(self):
        for seed in range(5):
            inst = poisson_instance(25, seed=seed)
            initial = greedy_overlap(inst, "arrival")
            improved = local_search(initial)
            assert improved.span <= initial.span + 1e-9
            improved.validate()

    def test_fixpoint_on_already_optimal(self):
        inst = Instance.from_triples([(0, 0, 2)])
        sched = greedy_overlap(inst)
        assert local_search(sched).span == sched.span


class TestBestOffline:
    def test_empty_instance(self):
        assert best_offline_span(Instance([])) == 0.0

    @pytest.mark.parametrize("seed", range(10))
    def test_brackets_optimum(self, seed):
        """LB <= OPT <= best_offline on small instances."""
        inst = small_integral_instance(6, seed=seed)
        opt = exact_optimal_span(inst)
        assert span_lower_bound(inst) - 1e-9 <= opt <= best_offline_span(inst) + 1e-9

    @pytest.mark.parametrize("seed", range(10))
    def test_often_finds_optimum_on_small_instances(self, seed):
        """The heuristic is usually exact on tiny instances; assert it is
        never more than 50% off (a loose but meaningful regression net)."""
        inst = small_integral_instance(5, seed=seed)
        opt = exact_optimal_span(inst)
        assert best_offline_span(inst) <= 1.5 * opt + 1e-9

    def test_result_is_feasible(self):
        inst = poisson_instance(50, seed=4)
        best_offline(inst).validate()


class TestFastPathEquivalence:
    def test_best_start_fast_matches_reference(self):
        """The MutableIntervalSet-based candidate search must agree with
        the IntervalUnion reference implementation everywhere."""
        import numpy as np

        from repro.core import Job
        from repro.core.intervalset import MutableIntervalSet
        from repro.offline.heuristics import _best_start, _best_start_fast

        rng = np.random.default_rng(7)
        for _ in range(200):
            n = int(rng.integers(0, 10))
            union = IntervalUnion()
            mset = MutableIntervalSet()
            for _ in range(n):
                lo = float(rng.uniform(0, 50))
                w = float(rng.uniform(0, 10))
                union = union.insert(Interval(lo, lo + w))
                mset.add(lo, lo + w)
            a = float(rng.uniform(0, 40))
            lax = float(rng.uniform(0, 15))
            p = float(rng.uniform(0.5, 8))
            job = Job(0, a, a + lax, p)
            assert _best_start(job, union) == pytest.approx(
                _best_start_fast(job, mset)
            )

    def test_greedy_scales_to_large_instances(self):
        """The fast path keeps greedy placement practical at 10^4 jobs."""
        import time

        inst = poisson_instance(10_000, seed=0)
        t0 = time.perf_counter()
        sched = greedy_overlap(inst)
        elapsed = time.perf_counter() - t0
        sched.validate()
        assert elapsed < 5.0  # generous CI margin; typically ~0.1 s
