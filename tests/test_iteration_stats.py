"""Unit tests for per-iteration scheduler statistics."""

from __future__ import annotations

import pytest

from repro.core import Instance, simulate
from repro.schedulers import Batch, BatchPlus
from repro.workloads import poisson_instance, small_integral_instance


class TestBatchIterations:
    def test_one_iteration_batches_everything(self, batchable_instance):
        result = simulate(Batch(), batchable_instance)
        iters = result.scheduler.iterations
        assert len(iters) == 1
        assert iters[0].flag_id == 0
        assert iters[0].start_time == 4.0
        assert sorted(iters[0].batch_job_ids) == [0, 1, 2, 3]
        assert iters[0].open_started_job_ids == []
        assert iters[0].batch_size == 4

    def test_serial_iterations(self, serial_instance):
        result = simulate(Batch(), serial_instance)
        iters = result.scheduler.iterations
        assert [it.flag_id for it in iters] == [0, 1, 2]
        assert all(it.batch_size == 1 for it in iters)

    def test_iterations_cover_all_jobs_exactly_once(self):
        inst = small_integral_instance(20, seed=4, max_arrival=30)
        result = simulate(Batch(), inst)
        started = [j for it in result.scheduler.iterations for j in it.batch_job_ids]
        assert sorted(started) == sorted(inst.job_ids)

    def test_iteration_times_increase(self):
        inst = poisson_instance(40, seed=1)
        result = simulate(Batch(), inst)
        times = [it.start_time for it in result.scheduler.iterations]
        assert times == sorted(times)


class TestBatchPlusIterations:
    def test_open_phase_pickups_recorded(self):
        inst = Instance.from_triples(
            [(0, 0, 10), (3, 5, 1), (4, 5, 1)], name="pickups"
        )
        result = simulate(BatchPlus(), inst)
        iters = result.scheduler.iterations
        assert len(iters) == 1
        assert iters[0].batch_job_ids == [0]
        assert iters[0].open_started_job_ids == [1, 2]
        assert iters[0].total_jobs == 3

    def test_jobs_partitioned_across_iterations(self):
        inst = small_integral_instance(25, seed=7, max_arrival=40)
        result = simulate(BatchPlus(), inst)
        seen = []
        for it in result.scheduler.iterations:
            seen.extend(it.batch_job_ids)
            seen.extend(it.open_started_job_ids)
        assert sorted(seen) == sorted(inst.job_ids)

    def test_flag_in_its_own_batch(self):
        inst = small_integral_instance(10, seed=2)
        result = simulate(BatchPlus(), inst)
        for it in result.scheduler.iterations:
            assert it.flag_id in it.batch_job_ids

    def test_flags_match_flag_job_ids(self):
        inst = poisson_instance(40, seed=3)
        result = simulate(BatchPlus(), inst)
        assert [
            it.flag_id for it in result.scheduler.iterations
        ] == result.scheduler.flag_job_ids

    def test_clone_clears_iterations(self):
        proto = BatchPlus()
        simulate(proto.clone(), poisson_instance(10, seed=0))
        assert proto.clone().iterations == []
