"""Property tests for CDB's boundary-tolerant duration classification.

``duration_category`` (src/repro/schedulers/cdb.py) places a length into
the category ``i`` with ``b·α^(i-1) < p <= b·α^i``.  A length lying
*exactly* on a boundary ``b·α^i`` is the worst case: ``log`` rounding can
push the raw index to either side, so the implementation absorbs it with
a relative tolerance ``_BOUNDARY_RTOL = 1e-12``.  These tests pin the
intended contract across the paper-relevant ratios
``α ∈ {1 + √(2/3), 2, 10}`` (the Theorem 4.4 optimum, a typical doubling
ratio, and a coarse one):

* boundary-exact lengths land in category ``i`` — never ``i+1``;
* perturbations well inside the tolerance (``|δ| <= 1e-13``) cannot flip
  the category, perturbations well outside it (``δ >= 1e-9``) must;
* the returned category always contains its length (up to tolerance) and
  is monotone in the length.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedulers import OPTIMAL_CDB_ALPHA, duration_category
from repro.schedulers.cdb import _BOUNDARY_RTOL

#: The ratios the satellite pins: Theorem 4.4's optimum, 2, and 10.
ALPHAS = (OPTIMAL_CDB_ALPHA, 2.0, 10.0)

#: Bases exercising b != 1 (category boundaries are anchored at b·α^i).
BASES = (1.0, 3.0, 0.25)

alphas = st.sampled_from(ALPHAS)
bases = st.sampled_from(BASES)
# Exponent range kept moderate so b·α^i stays far from overflow/underflow
# even at α = 10 (10^18 · 3 is still exact-ish in double precision).
exponents = st.integers(min_value=-12, max_value=18)


def test_boundary_rtol_is_the_documented_magnitude() -> None:
    # The properties below are calibrated against 1e-12: perturbations at
    # 1e-13 must be absorbed, at 1e-9 must not.  If the tolerance moves,
    # these tests must be re-derived, so pin it.
    assert _BOUNDARY_RTOL == 1e-12


@settings(max_examples=200)
@given(alpha=alphas, base=bases, i=exponents)
def test_boundary_exact_length_lands_in_lower_category(
    alpha: float, base: float, i: int
) -> None:
    """``p = b·α^i`` belongs to category ``i`` (the interval's top end)."""
    length = base * alpha**i
    assert duration_category(length, alpha, base) == i


@settings(max_examples=200)
@given(
    alpha=alphas,
    base=bases,
    i=exponents,
    delta=st.floats(min_value=-1e-13, max_value=1e-13),
)
def test_sub_tolerance_perturbation_cannot_flip_the_category(
    alpha: float, base: float, i: int, delta: float
) -> None:
    """Float noise an order of magnitude below the tolerance is absorbed."""
    length = base * alpha**i * (1.0 + delta)
    assert duration_category(length, alpha, base) == i


@settings(max_examples=200)
@given(
    alpha=alphas,
    base=bases,
    i=st.integers(min_value=-12, max_value=15),
    delta=st.floats(min_value=1e-9, max_value=1e-6),
)
def test_super_tolerance_excess_promotes_to_the_next_category(
    alpha: float, base: float, i: int, delta: float
) -> None:
    """A length decisively above ``b·α^i`` belongs to category ``i+1``."""
    length = base * alpha**i * (1.0 + delta)
    assert duration_category(length, alpha, base) == i + 1


@settings(max_examples=200)
@given(
    alpha=alphas,
    base=bases,
    i=exponents,
    frac=st.floats(min_value=0.05, max_value=0.95),
)
def test_interior_lengths_are_unambiguous(
    alpha: float, base: float, i: int, frac: float
) -> None:
    """Geometric interpolants of ``(b·α^(i-1), b·α^i)`` get category ``i``."""
    length = base * alpha ** (i - 1 + frac)
    assert duration_category(length, alpha, base) == i


@settings(max_examples=200)
@given(
    alpha=alphas,
    base=bases,
    length=st.floats(min_value=1e-9, max_value=1e12),
)
def test_returned_category_contains_its_length(
    alpha: float, base: float, length: float
) -> None:
    """Classification is sound: ``b·α^(i-1) < p <= b·α^i`` up to tolerance."""
    i = duration_category(length, alpha, base)
    tol = 10.0 * _BOUNDARY_RTOL
    assert length <= base * alpha**i * (1.0 + tol)
    assert length > base * alpha ** (i - 1) * (1.0 - tol)


@settings(max_examples=200)
@given(
    alpha=alphas,
    base=bases,
    a=st.floats(min_value=1e-9, max_value=1e12),
    b=st.floats(min_value=1e-9, max_value=1e12),
)
def test_category_is_monotone_in_length(
    alpha: float, base: float, a: float, b: float
) -> None:
    lo, hi = (a, b) if a <= b else (b, a)
    assert duration_category(lo, alpha, base) <= duration_category(hi, alpha, base)


@pytest.mark.parametrize("alpha", ALPHAS)
def test_adjacent_boundaries_differ_by_exactly_one(alpha: float) -> None:
    """Deterministic sweep: consecutive boundary lengths step the index."""
    cats = [duration_category(alpha**i, alpha) for i in range(-6, 13)]
    assert cats == list(range(-6, 13))
    assert all(b - a == 1 for a, b in zip(cats, cats[1:]))


def test_optimal_alpha_matches_theorem_4_4_minimiser() -> None:
    """``1 + √(2/3)`` minimises ``3α + 4 + 2/(α-1)`` (context for ALPHAS)."""
    assert OPTIMAL_CDB_ALPHA == pytest.approx(1.0 + math.sqrt(2.0 / 3.0))
    bound = lambda a: 3 * a + 4 + 2 / (a - 1)  # noqa: E731
    at_opt = bound(OPTIMAL_CDB_ALPHA)
    for eps in (-1e-3, 1e-3):
        assert bound(OPTIMAL_CDB_ALPHA + eps) >= at_opt
