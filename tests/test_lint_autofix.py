"""Tests for ``repro lint --fix`` (mechanical RL006 autofix).

Covers the pure ``fix_source`` transform (full-statement deletion,
partial rewrite, suppression and ``__init__.py`` exemptions, semicolon
safety), idempotency (fixing fixed output is a no-op), and the
``apply_fixes``/CLI layer including ``--fix --dry-run`` previews.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.lint import apply_fixes, fix_source
from repro.lint.autofix import FIXABLE_RULES

REPO_ROOT = Path(__file__).resolve().parents[1]


def _run_cli(*argv: str, cwd: Path | None = None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True,
        text=True,
        cwd=str(cwd or REPO_ROOT),
        env=env,
    )


class TestFixSource:
    def test_only_rl006_is_fixable(self):
        assert FIXABLE_RULES == ("RL006",)

    def test_whole_statement_deleted(self):
        src = "import os\nimport sys\n\nprint(sys.path)\n"
        fixed, removed = fix_source(src, "mod.py")
        assert removed == 1
        assert fixed == "import sys\n\nprint(sys.path)\n"

    def test_partial_statement_rewritten(self):
        src = "import sys, json\n\nprint(sys.path)\n"
        fixed, removed = fix_source(src, "mod.py")
        assert removed == 1
        assert fixed == "import sys\n\nprint(sys.path)\n"

    def test_from_import_keeps_survivors_and_aliases(self):
        src = textwrap.dedent(
            """
            from os.path import join, split as sp, dirname

            print(sp(dirname("x")))
            """
        )
        fixed, removed = fix_source(src, "mod.py")
        assert removed == 1
        assert "from os.path import split as sp, dirname" in fixed
        assert "join" not in fixed

    def test_multiline_import_collapses_to_one_line(self):
        src = textwrap.dedent(
            """
            from os.path import (
                join,
                dirname,
            )

            print(dirname("x"))
            """
        )
        fixed, removed = fix_source(src, "mod.py")
        assert removed == 1
        assert "from os.path import dirname\n" in fixed
        assert "(" not in fixed.splitlines()[1]

    def test_relative_import_levels_preserved(self):
        src = "from ..core import engine, columnar\n\nprint(engine)\n"
        fixed, removed = fix_source(src, "pkg/sub/mod.py")
        assert removed == 1
        assert "from ..core import engine\n" in fixed

    def test_semicolon_shared_line_untouched(self):
        src = "import os; X = 1\n\nprint(X)\n"
        fixed, removed = fix_source(src, "mod.py")
        assert removed == 0
        assert fixed == src

    def test_suppressed_finding_not_fixed(self):
        src = "import os  # lint: ignore[RL006]\n"
        fixed, removed = fix_source(src, "mod.py")
        assert removed == 0
        assert fixed == src

    def test_init_py_exempt(self):
        # __init__.py re-export hubs are outside RL006's scope; the
        # fixer must honour the same applies_to gate.
        src = "from .engine import Simulator\n"
        fixed, removed = fix_source(src, "pkg/__init__.py")
        assert removed == 0
        assert fixed == src

    def test_future_import_never_removed(self):
        src = "from __future__ import annotations\n"
        fixed, removed = fix_source(src, "mod.py")
        assert removed == 0
        assert fixed == src

    def test_syntax_error_returns_input(self):
        src = "import os\ndef broken(:\n"
        fixed, removed = fix_source(src, "mod.py")
        assert removed == 0
        assert fixed == src

    def test_idempotent(self):
        src = textwrap.dedent(
            """
            import os
            import sys, json
            from os.path import join, dirname

            print(sys.path, dirname("x"))
            """
        )
        once, removed_once = fix_source(src, "mod.py")
        assert removed_once == 3
        twice, removed_twice = fix_source(once, "mod.py")
        assert removed_twice == 0
        assert twice == once


class TestApplyFixes:
    def _write(self, tmp_path: Path) -> Path:
        f = tmp_path / "mod.py"
        f.write_text("import os\nimport sys\n\nprint(sys.path)\n")
        return f

    def test_writes_file_and_reports(self, tmp_path):
        f = self._write(tmp_path)
        result = apply_fixes([str(tmp_path)])
        assert result.changed
        assert result.removed == 1
        assert result.written == [str(f)]
        assert "import os" not in f.read_text()
        assert "-import os" in result.diffs[str(f)]

    def test_dry_run_does_not_write(self, tmp_path):
        f = self._write(tmp_path)
        before = f.read_text()
        result = apply_fixes([str(tmp_path)], dry_run=True)
        assert result.changed
        assert result.removed == 1
        assert result.written == []
        assert f.read_text() == before
        assert "dry run" in result.render()

    def test_clean_tree_nothing_to_fix(self, tmp_path):
        (tmp_path / "mod.py").write_text("import sys\n\nprint(sys.path)\n")
        result = apply_fixes([str(tmp_path)])
        assert not result.changed
        assert result.render() == "nothing to fix"


class TestFixCLI:
    def test_dry_run_requires_fix(self):
        proc = _run_cli("--dry-run")
        assert proc.returncode == 2
        assert "--dry-run requires --fix" in proc.stderr

    def test_fix_dry_run_previews_diff_without_writing(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text("import os\nimport sys\n\nprint(sys.path)\n")
        before = f.read_text()
        proc = _run_cli("--fix", "--dry-run", str(tmp_path))
        assert proc.returncode == 0, proc.stderr
        assert "-import os" in proc.stdout
        assert "dry run" in proc.stdout
        assert f.read_text() == before

    def test_fix_writes_then_relints_clean(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text("import os\nimport sys\n\nprint(sys.path)\n")
        proc = _run_cli("--fix", str(tmp_path))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "import os" not in f.read_text()

    def test_shipped_tree_has_nothing_to_fix(self):
        # The repo itself must stay autofix-clean (zero unused imports).
        proc = _run_cli("--fix", "--dry-run", "src/repro")
        assert proc.returncode == 0, proc.stderr
        assert "nothing to fix" in proc.stdout
