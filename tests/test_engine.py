"""Unit tests for the discrete-event simulator."""

from __future__ import annotations

import pytest

from repro.core import (
    ClairvoyanceError,
    DeadlineMissedError,
    Instance,
    Job,
    SchedulingViolationError,
    SimulationError,
    Simulator,
    simulate,
)
from repro.core.engine import AdversaryResponse
from repro.schedulers import Eager, Lazy, OnlineScheduler
from repro.adversaries import BaseAdversary


class Recorder(OnlineScheduler):
    """Starts everything eagerly and records every hook invocation."""

    name = "recorder"

    def __init__(self):
        super().__init__()
        self.log: list[tuple[str, float, int | None]] = []

    def on_arrival(self, ctx, job):
        self.log.append(("arrival", ctx.now, job.id))
        ctx.start(job.id)

    def on_completion(self, ctx, job):
        self.log.append(("completion", ctx.now, job.id))

    def on_deadline(self, ctx, job):
        self.log.append(("deadline", ctx.now, job.id))
        ctx.start(job.id)


class TestBasicRuns:
    def test_result_schedule_is_feasible(self, simple_instance):
        result = simulate(Eager(), simple_instance)
        result.schedule.validate()
        assert result.span > 0
        assert result.events_processed > 0

    def test_eager_starts_at_arrivals(self, simple_instance):
        result = simulate(Eager(), simple_instance)
        for job in simple_instance:
            assert result.schedule.start_of(job.id) == job.arrival

    def test_lazy_starts_at_deadlines(self, simple_instance):
        result = simulate(Lazy(), simple_instance)
        for job in simple_instance:
            assert result.schedule.start_of(job.id) == job.deadline

    def test_hooks_fire_in_time_order(self, simple_instance):
        rec = Recorder()
        simulate(rec, simple_instance)
        times = [t for _, t, _ in rec.log]
        assert times == sorted(times)

    def test_completion_reveals_length(self):
        seen: dict[int, float] = {}

        class LengthPeek(OnlineScheduler):
            def on_arrival(self, ctx, job):
                with pytest.raises(ClairvoyanceError):
                    job.length  # hidden in non-clairvoyant mode
                ctx.start(job.id)

            def on_completion(self, ctx, job):
                seen[job.id] = job.length  # visible now

        inst = Instance.from_triples([(0, 2, 3)])
        simulate(LengthPeek(), inst, clairvoyant=False)
        assert seen == {0: 3.0}

    def test_clairvoyant_mode_reveals_length_at_arrival(self):
        class Peek(OnlineScheduler):
            requires_clairvoyance = True

            def on_arrival(self, ctx, job):
                assert job.length == 3.0
                assert job.length_if_known == 3.0
                ctx.start(job.id)

        simulate(Peek(), Instance.from_triples([(0, 2, 3)]), clairvoyant=True)

    def test_simulator_single_use(self, simple_instance):
        sim = Simulator(Eager(), instance=simple_instance)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run()

    def test_requires_instance_xor_adversary(self, simple_instance):
        with pytest.raises(SimulationError):
            Simulator(Eager())
        with pytest.raises(SimulationError):
            Simulator(
                Eager(), instance=simple_instance, adversary=BaseAdversary()
            )

    def test_empty_instance(self):
        result = simulate(Eager(), Instance([]))
        assert result.span == 0.0


class TestViolations:
    def test_deadline_missed_raises(self, simple_instance):
        class DoNothing(OnlineScheduler):
            pass

        with pytest.raises(DeadlineMissedError):
            simulate(DoNothing(), simple_instance)

    def test_double_start_rejected(self):
        class DoubleStart(OnlineScheduler):
            def on_arrival(self, ctx, job):
                ctx.start(job.id)
                ctx.start(job.id)

        with pytest.raises(SchedulingViolationError):
            simulate(DoubleStart(), Instance.from_triples([(0, 1, 1)]))

    def test_unknown_job_rejected(self):
        class StartGhost(OnlineScheduler):
            def on_arrival(self, ctx, job):
                ctx.start(999)

        with pytest.raises(SchedulingViolationError):
            simulate(StartGhost(), Instance.from_triples([(0, 1, 1)]))

    def test_past_timer_rejected(self):
        class PastTimer(OnlineScheduler):
            def on_arrival(self, ctx, job):
                ctx.set_timer(ctx.now - 1.0)

        with pytest.raises(SchedulingViolationError):
            simulate(PastTimer(), Instance.from_triples([(1, 1, 1)]))

    def test_event_budget(self, simple_instance):
        class TimerLoop(OnlineScheduler):
            def on_arrival(self, ctx, job):
                ctx.start(job.id)
                ctx.set_timer(ctx.now)

            def on_timer(self, ctx, tag):
                ctx.set_timer(ctx.now)  # same-time timer forever

        with pytest.raises(SimulationError):
            simulate(TimerLoop(), simple_instance, max_events=1000)

    def test_unknown_length_without_adversary(self):
        inst = Instance([Job(0, 0, 1, None)])
        with pytest.raises(SimulationError):
            simulate(Eager(), inst)


class TestContext:
    def test_pending_sorted_by_deadline(self):
        snapshots: list[list[int]] = []

        class PendingPeek(OnlineScheduler):
            def on_deadline(self, ctx, job):
                snapshots.append([v.id for v in ctx.pending()])
                for v in ctx.pending():
                    ctx.start(v.id)

        # J1 has the earlier deadline; J0 pends behind it.
        inst = Instance(
            [Job(0, 0, 8, 1), Job(1, 0, 3, 1)], name="pending-order"
        )
        simulate(PendingPeek(), inst)
        assert snapshots[0] == [1, 0]

    def test_running_view(self):
        observed: list[list[int]] = []

        class RunningPeek(OnlineScheduler):
            def on_arrival(self, ctx, job):
                ctx.start(job.id)
                observed.append([v.id for v in ctx.running()])

        inst = Instance.from_triples([(0, 0, 5), (1, 0, 5)])
        simulate(RunningPeek(), inst)
        assert observed == [[0], [0, 1]]

    def test_is_started_and_completed(self):
        class Checker(OnlineScheduler):
            def on_arrival(self, ctx, job):
                assert not ctx.is_started(job.id)
                ctx.start(job.id)
                assert ctx.is_started(job.id)
                assert not ctx.is_completed(job.id)

            def on_completion(self, ctx, job):
                assert ctx.is_completed(job.id)

        simulate(Checker(), Instance.from_triples([(0, 1, 1)]))


class TestSameTimeSemantics:
    def test_completion_before_arrival_at_same_time(self):
        """A job completing at t is not 'running' for an arrival at t."""
        order: list[str] = []

        class Tracker(OnlineScheduler):
            def on_arrival(self, ctx, job):
                order.append(f"arrive{job.id}")
                ctx.start(job.id)

            def on_completion(self, ctx, job):
                order.append(f"complete{job.id}")

        # J0 runs [0,2); J1 arrives exactly at 2.
        inst = Instance.from_triples([(0, 0, 2), (2, 0, 1)])
        simulate(Tracker(), inst)
        assert order == ["arrive0", "complete0", "arrive1", "complete1"]

    def test_zero_laxity_arrival_then_deadline(self):
        """A zero-laxity job gets its arrival hook before the deadline
        backstop at the same instant."""
        order: list[str] = []

        class ArrivalOnly(OnlineScheduler):
            def on_arrival(self, ctx, job):
                order.append("arrival")

            def on_deadline(self, ctx, job):
                order.append("deadline")
                ctx.start(job.id)

        simulate(ArrivalOnly(), Instance.from_triples([(1, 0, 1)]))
        assert order == ["arrival", "deadline"]


class _OneJobAdversary(BaseAdversary):
    """Releases one adversary-controlled job and assigns length 2."""

    def initial_jobs(self):
        return [Job(0, 0.0, 5.0, None)]

    def assign_length(self, job, t):
        return 2.0


class TestAdversaryIntegration:
    def test_adaptive_length_assignment(self):
        result = simulate(Eager(), adversary=_OneJobAdversary(), clairvoyant=False)
        assert result.instance[0].length == 2.0
        assert result.span == 2.0

    def test_adversary_requires_nonclairvoyant(self):
        with pytest.raises(SimulationError):
            simulate(Eager(), adversary=_OneJobAdversary(), clairvoyant=True)

    def test_adversary_release_in_past_rejected(self):
        class PastRelease(BaseAdversary):
            def initial_jobs(self):
                return [Job(0, 1.0, 2.0, 1.0)]

            def on_start(self, job, t):
                return AdversaryResponse(release=(Job(1, 0.0, 3.0, 1.0),))

        with pytest.raises(SimulationError):
            simulate(Eager(), adversary=PastRelease(), clairvoyant=False)

    def test_nonpositive_assigned_length_rejected(self):
        class BadLength(_OneJobAdversary):
            def assign_length(self, job, t):
                return 0.0

        with pytest.raises(SimulationError):
            simulate(Eager(), adversary=BadLength(), clairvoyant=False)

    def test_base_adversary_assign_not_implemented(self):
        class NoAssign(BaseAdversary):
            def initial_jobs(self):
                return [Job(0, 0.0, 5.0, None)]

        with pytest.raises(NotImplementedError):
            simulate(Eager(), adversary=NoAssign(), clairvoyant=False)
