"""Focused tests for corners not exercised elsewhere."""

from __future__ import annotations

import pytest

from repro.core import Instance, Job, simulate
from repro.schedulers import (
    ClassifyByDurationBatchPlus,
    OnlineScheduler,
    Profit,
)
from repro.workloads import GridResult, WorkloadSpec, run_grid
from repro.offline import span_lower_bound


class TestJobViewSurface:
    def test_lifecycle_flags(self):
        observed = {}

        class Peek(OnlineScheduler):
            def on_arrival(self, ctx, job):
                observed["pre"] = (job.started, job.start_time, job.completed)
                ctx.start(job.id)
                observed["post"] = (job.started, job.start_time, job.completed)

            def on_completion(self, ctx, job):
                observed["done"] = (job.started, job.completed)

        simulate(Peek(), Instance.from_triples([(1, 2, 3)]))
        assert observed["pre"] == (False, None, False)
        assert observed["post"] == (True, 1.0, False)
        assert observed["done"] == (True, True)

    def test_length_if_known_hidden_then_revealed(self):
        seen = {}

        class Peek(OnlineScheduler):
            def on_arrival(self, ctx, job):
                seen["arrival"] = job.length_if_known
                ctx.start(job.id)

            def on_completion(self, ctx, job):
                seen["completion"] = job.length_if_known

        simulate(Peek(), Instance.from_triples([(0, 1, 2)]), clairvoyant=False)
        assert seen["arrival"] is None
        assert seen["completion"] == 2.0

    def test_size_always_visible(self):
        class Peek(OnlineScheduler):
            def on_arrival(self, ctx, job):
                assert job.size == 0.25
                ctx.start(job.id)

        inst = Instance([Job(0, 0.0, 1.0, 1.0, size=0.25)])
        simulate(Peek(), inst, clairvoyant=False)


class TestProfitMultiFlagAttribution:
    def test_arrival_attributed_to_latest_ending_flag(self):
        """When an arrival is profitable to several running flags, the
        implementation deterministically picks the one with the latest
        completion (most slack)."""
        # flag A: d=0, p=4 → ends 4.  flag B: d=1, p=100 → ends 101
        # (B unprofitable to A: 100 > k·4).  J2 arrives at 2 with p=3:
        # profitable to both; must attribute to B (later end).
        inst = Instance(
            [
                Job(0, 0.0, 0.0, 4.0),
                Job(1, 0.0, 1.0, 100.0),
                Job(2, 2.0, 50.0, 3.0),
            ],
            name="multi-flag",
        )
        result = simulate(Profit(k=1.5), inst, clairvoyant=True)
        sched = result.scheduler
        assert sorted(sched.flag_job_ids) == [0, 1]
        assert result.schedule.start_of(2) == 2.0
        assert sched.attribution[2] == 1


class TestCdbBaseParameter:
    def test_base_shifts_boundaries(self):
        # α=2: with base 1, lengths 3 and 4 share category (2,4]; with
        # base 3, boundaries are (1.5,3],(3,6]: 3 and 4 land apart.
        inst = Instance.from_triples([(0, 5, 3), (0, 5, 4)], name="base")
        base1 = simulate(
            ClassifyByDurationBatchPlus(alpha=2.0, base=1.0), inst, clairvoyant=True
        )
        base3 = simulate(
            ClassifyByDurationBatchPlus(alpha=2.0, base=3.0), inst, clairvoyant=True
        )
        assert base1.scheduler.num_categories == 1
        assert base3.scheduler.num_categories == 2


class TestGridResultEdgeCases:
    def test_zero_reference_gives_inf(self):
        r = GridResult(
            scheduler_name="x",
            instance_name="y",
            span=1.0,
            reference=0.0,
            events=1,
        )
        assert r.ratio == float("inf")

    def test_clairvoyant_override(self):
        from repro.schedulers import Batch
        from repro.workloads import poisson_instance

        # forcing clairvoyant=True on a non-clairvoyant scheduler is
        # allowed (extra information, unused).
        results = run_grid(
            [Batch()],
            [poisson_instance(10, seed=0)],
            span_lower_bound,
            clairvoyant=True,
        )
        assert len(results) == 1 and results[0].span > 0


class TestWorkloadSpecDescribe:
    def test_describe_mentions_axes(self):
        spec = WorkloadSpec(n=5, arrival="bursty", length="pareto", laxity="uniform")
        desc = spec.describe()
        assert "bursty" in desc and "pareto" in desc and "uniform" in desc


class TestInstanceHorizonWithAdversaryJobs:
    def test_horizon_treats_unknown_length_as_zero(self):
        inst = Instance([Job(0, 0.0, 5.0, None), Job(1, 0.0, 2.0, 4.0)])
        assert inst.horizon == 6.0


class TestSchedulerReprs:
    def test_all_registry_reprs_render(self):
        from repro.schedulers import SCHEDULERS, make_scheduler

        for name in SCHEDULERS:
            assert name is not None
            r = repr(make_scheduler(name))
            assert r.startswith("<") and r.endswith(">")
