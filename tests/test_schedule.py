"""Unit tests for Schedule construction, validation and metrics."""

from __future__ import annotations

import pytest

from repro.core import Instance, InvalidScheduleError, Schedule
from repro.core.intervals import Interval


class TestValidation:
    def test_valid_schedule(self, simple_instance):
        sched = Schedule(simple_instance, {0: 0.0, 1: 2.0, 2: 2.0, 3: 7.0})
        assert len(sched) == 4

    def test_missing_job_rejected(self, simple_instance):
        with pytest.raises(InvalidScheduleError):
            Schedule(simple_instance, {0: 0.0, 1: 2.0, 2: 2.0})

    def test_extra_job_rejected(self, simple_instance):
        with pytest.raises(InvalidScheduleError):
            Schedule(
                simple_instance, {0: 0.0, 1: 2.0, 2: 2.0, 3: 7.0, 9: 0.0}
            )

    def test_start_before_arrival_rejected(self, simple_instance):
        with pytest.raises(InvalidScheduleError):
            Schedule(simple_instance, {0: 0.0, 1: 0.5, 2: 2.0, 3: 7.0})

    def test_start_after_deadline_rejected(self, simple_instance):
        with pytest.raises(InvalidScheduleError):
            Schedule(simple_instance, {0: 5.5, 1: 2.0, 2: 2.0, 3: 7.0})

    def test_start_exactly_at_deadline_allowed(self, simple_instance):
        sched = Schedule(simple_instance, {0: 5.0, 1: 5.0, 2: 2.0, 3: 9.0})
        assert sched.start_of(0) == 5.0

    def test_validate_skipped_when_disabled(self, simple_instance):
        # validate=False defers the error; explicit validate() raises.
        sched = Schedule(
            simple_instance, {0: 99.0, 1: 2.0, 2: 2.0, 3: 7.0}, validate=False
        )
        with pytest.raises(InvalidScheduleError):
            sched.validate()


class TestAccessors:
    def test_interval_of(self, simple_instance):
        sched = Schedule(simple_instance, {0: 0.0, 1: 2.0, 2: 2.0, 3: 7.0})
        assert sched.interval_of(1) == Interval(2.0, 5.0)
        assert sched.end_of(3) == 9.0

    def test_rows_in_instance_order(self, simple_instance):
        sched = Schedule(simple_instance, {0: 0.0, 1: 2.0, 2: 2.0, 3: 7.0})
        rows = list(sched.rows())
        assert [r.job.id for r in rows] == [0, 1, 2, 3]
        assert rows[1].end == 5.0

    def test_starts_copy_is_independent(self, simple_instance):
        sched = Schedule(simple_instance, {0: 0.0, 1: 2.0, 2: 2.0, 3: 7.0})
        starts = sched.starts()
        starts[0] = 99.0
        assert sched.start_of(0) == 0.0


class TestSpan:
    def test_span_overlapping(self, simple_instance):
        # intervals: [0,2) [2,5) [2,3) [7,9)  → union [0,5) ∪ [7,9) = 7
        sched = Schedule(simple_instance, {0: 0.0, 1: 2.0, 2: 2.0, 3: 7.0})
        assert sched.span == pytest.approx(7.0)

    def test_span_cached(self, simple_instance):
        sched = Schedule(simple_instance, {0: 0.0, 1: 2.0, 2: 2.0, 3: 7.0})
        assert sched.span == sched.span  # second call hits the cache

    def test_active_union(self, simple_instance):
        sched = Schedule(simple_instance, {0: 0.0, 1: 2.0, 2: 2.0, 3: 7.0})
        union = sched.active_union()
        assert union.measure == pytest.approx(sched.span)
        assert len(union) == 2

    def test_makespan(self, simple_instance):
        sched = Schedule(simple_instance, {0: 0.0, 1: 2.0, 2: 2.0, 3: 7.0})
        assert sched.makespan() == 9.0

    def test_empty_schedule(self):
        sched = Schedule(Instance([]), {})
        assert sched.span == 0.0
        assert sched.makespan() == 0.0

    def test_serial_span_is_total_work(self, serial_instance):
        sched = Schedule(serial_instance, {0: 0.0, 1: 4.0, 2: 8.0})
        assert sched.span == pytest.approx(serial_instance.total_work)
