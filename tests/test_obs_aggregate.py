"""Aggregation invariants: summaries, metric merges, and regression diffs."""

from __future__ import annotations

import pytest

from repro.core.engine import simulate
from repro.obs import (
    DiffEntry,
    MetricsRegistry,
    TraceRecorder,
    diff_bench,
    diff_summaries,
    merge_metric_dicts,
    render_diff,
    render_summary,
    summarize_trace,
)
from repro.schedulers import Batch


@pytest.fixture
def summary(simple_instance):
    rec = TraceRecorder()
    simulate(Batch(), simple_instance, recorder=rec)
    return summarize_trace(rec)


class TestSummarize:
    def test_counts_and_kinds(self, summary, simple_instance):
        assert summary.record_count > 0
        assert sum(summary.kind_counts.values()) == summary.record_count
        assert summary.kind_counts["decision"] == len(simple_instance)
        assert set(summary.decisions) <= {"deadline-flag", "batch-start"}
        assert sum(summary.decisions.values()) == len(simple_instance)

    def test_span_aggregates_are_consistent(self, summary):
        dispatch = summary.spans["engine.dispatch"]
        assert dispatch["count"] >= 1
        assert dispatch["total_s"] >= dispatch["max_s"] >= 0
        assert dispatch["mean_s"] == pytest.approx(
            dispatch["total_s"] / dispatch["count"]
        )

    def test_metrics_carried_over_sorted(self, summary):
        assert list(summary.counters) == sorted(summary.counters)
        assert "engine.events_processed" in summary.counters
        assert "engine.span" in summary.gauges
        hist = summary.histograms["engine.job_length"]
        assert hist["count"] == 4.0
        assert hist["min"] <= hist["mean"] <= hist["max"]

    def test_render_summary_mentions_key_sections(self, summary):
        text = render_summary(summary)
        for token in ("records", "decisions", "spans", "counters", "gauges"):
            assert token in text


class TestMergeMetricDicts:
    def test_merges_in_order_skipping_none(self):
        a = MetricsRegistry()
        a.counter_add("c", 1.0)
        a.gauge_set("g", 1.0)
        b = MetricsRegistry()
        b.counter_add("c", 2.0)
        b.gauge_set("g", 9.0)
        merged = merge_metric_dicts([a.to_dict(), None, b.to_dict()])
        assert merged.counters["c"] == 3.0
        assert merged.gauges["g"] == 9.0  # last-set wins, in iteration order

    def test_merges_into_existing_registry(self):
        into = MetricsRegistry()
        into.counter_add("c", 5.0)
        src = MetricsRegistry()
        src.counter_add("c", 1.0)
        out = merge_metric_dicts([src.to_dict()], into=into)
        assert out is into
        assert into.counters["c"] == 6.0


class TestDiffSummaries:
    @staticmethod
    def _summary(counters=None, spans=None):
        from repro.obs import TraceSummary

        s = TraceSummary()
        s.counters = dict(counters or {})
        s.spans = {
            name: {"count": 1.0, "total_s": total, "mean_s": total, "max_s": total}
            for name, total in (spans or {}).items()
        }
        return s

    def test_counter_growth_is_a_regression(self):
        before = self._summary(counters={"engine.events_processed": 100.0})
        after = self._summary(counters={"engine.events_processed": 150.0})
        entries = diff_summaries(before, after, threshold=0.10)
        assert [e.name for e in entries] == ["engine.events_processed"]
        assert entries[0].regressed
        assert entries[0].regression == pytest.approx(0.5)

    def test_within_threshold_is_silent(self):
        before = self._summary(counters={"c": 100.0}, spans={"s": 1.0})
        after = self._summary(counters={"c": 105.0}, spans={"s": 1.05})
        assert diff_summaries(before, after, threshold=0.10) == []

    def test_span_slowdown_flagged_and_speedup_negative(self):
        before = self._summary(spans={"slow": 1.0, "fast": 1.0})
        after = self._summary(spans={"slow": 2.0, "fast": 0.5})
        entries = {e.name: e for e in diff_summaries(before, after, threshold=0.10)}
        assert entries["slow"].regressed
        assert not entries["fast"].regressed
        assert entries["fast"].regression < 0

    def test_missing_quantities_skipped(self):
        before = self._summary(counters={"only.before": 1.0})
        after = self._summary(counters={"only.after": 99.0})
        assert diff_summaries(before, after, threshold=0.0) == []


class TestDiffBench:
    @staticmethod
    def _payload(**cases: float) -> dict:
        return {
            "schema": "test",
            "results": [
                {"case": name, "events": 1, "wall_s": 1.0, "events_per_s": eps}
                for name, eps in cases.items()
            ],
        }

    def test_injected_ten_percent_regression_is_flagged(self):
        before = self._payload(**{"macro/e1": 100_000.0, "micro/q": 1_000_000.0})
        after = self._payload(**{"macro/e1": 88_000.0, "micro/q": 1_000_000.0})
        entries = diff_bench(before, after, threshold=0.10)
        assert [e.name for e in entries] == ["macro/e1"]
        assert entries[0].regressed
        assert entries[0].regression == pytest.approx(0.12)

    def test_improvement_reported_but_not_regressed(self):
        before = self._payload(**{"macro/e1": 100_000.0})
        after = self._payload(**{"macro/e1": 200_000.0})
        (entry,) = diff_bench(before, after, threshold=0.10)
        assert not entry.regressed
        assert entry.regression == pytest.approx(-1.0)

    def test_unshared_cases_skipped(self):
        before = self._payload(**{"gone": 1.0})
        after = self._payload(**{"new": 1.0})
        assert diff_bench(before, after, threshold=0.0) == []

    def test_zero_baseline_edge(self):
        before = self._payload(**{"z": 0.0})
        after = self._payload(**{"z": 0.0})
        assert diff_bench(before, after, threshold=0.10) == []


class TestRenderDiff:
    def test_empty_renders_threshold(self):
        assert "10.0%" in render_diff([], threshold=0.10)

    def test_regressions_sorted_first_and_tagged(self):
        entries = [
            DiffEntry("bench", "win", 1.0, 2.0, -0.5),
            DiffEntry("bench", "loss", 2.0, 1.0, 0.5),
        ]
        text = render_diff(entries, threshold=0.10)
        assert text.index("loss") < text.index("win")
        assert "REGRESSION" in text and "improved" in text
