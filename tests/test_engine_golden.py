"""Golden-trace regression tests for the optimized simulator.

``tests/data/golden_traces.json`` was captured from the *pre-optimization*
engine (dataclass-event heap, getattr-per-event dispatch, per-job
admission).  The optimized engine — raw tuple heap, dispatch table,
hoisted hooks, batch admission, incremental pending/running indexes —
must reproduce every run **event for event**: same record kinds, same
times, same job ids, same details, same event counts, same spans.

If an engine change breaks these on purpose (a deliberate semantic
change), recapture the fixture and say so loudly in the PR: same-time
event ordering is what the paper's §3.1/§4.1 constructions hinge on.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.adversaries import NonClairvoyantLowerBoundAdversary, geometric_profile
from repro.core import simulate
from repro.core.job import Instance
from repro.schedulers import Batch, BatchPlus, Eager, Lazy

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_traces.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

#: The fixed instance all static golden runs use (do not edit: the
#: fixture was captured against exactly these jobs).
GOLDEN_INSTANCE = Instance.from_triples(
    [(0, 2, 1), (0.5, 1, 3), (1, 4, 2), (2, 0, 1), (3, 3, 5), (3, 3, 0.5), (9, 1, 2)],
    name="golden-7",
)

SCHEDULERS = {"Batch": Batch, "BatchPlus": BatchPlus, "Eager": Eager, "Lazy": Lazy}


def as_rows(trace) -> list[list]:
    return [[r.time, r.kind.value, r.job_id, r.detail] for r in trace]


@pytest.mark.parametrize("name", sorted(SCHEDULERS))
def test_static_golden_trace_event_for_event(name):
    result = simulate(SCHEDULERS[name](), GOLDEN_INSTANCE, trace=True)
    expected = GOLDEN[name]
    assert as_rows(result.trace) == expected["records"]
    assert result.span == expected["span"]
    assert result.events_processed == expected["events"]


def test_adversarial_golden_trace_event_for_event():
    """Adaptive run: RELEASE/ASSIGN/ADVERSARY_WAKEUP records included."""
    adv = NonClairvoyantLowerBoundAdversary(4.0, geometric_profile(2, 3))
    result = simulate(Batch(), adversary=adv, clairvoyant=False, trace=True)
    expected = GOLDEN["adversarial/Batch"]
    assert as_rows(result.trace) == expected["records"]
    assert result.span == expected["span"]
    assert result.events_processed == expected["events"]


def test_trace_off_matches_trace_on():
    """Tracing must be observation only: identical schedule either way."""
    with_trace = simulate(BatchPlus(), GOLDEN_INSTANCE, trace=True)
    without = simulate(BatchPlus(), GOLDEN_INSTANCE, trace=False)
    assert without.trace is None
    assert without.span == with_trace.span
    assert without.events_processed == with_trace.events_processed
    assert without.schedule.starts() == with_trace.schedule.starts()


def test_pending_running_indexes_match_schedule():
    """The incremental ctx.pending()/ctx.running() indexes stay honest."""

    class Probe(Eager):
        name = "probe"

        def __init__(self):
            super().__init__()
            self.snapshots = []

        def on_arrival(self, ctx, job):
            super().on_arrival(ctx, job)
            pending_ids = [v.id for v in ctx.pending()]
            running_ids = [v.id for v in ctx.running()]
            assert not set(pending_ids) & set(running_ids)
            self.snapshots.append((ctx.now, pending_ids, running_ids))

    probe = Probe()
    result = simulate(probe, GOLDEN_INSTANCE)
    assert probe.snapshots  # hook ran
    # Eager starts on arrival, so nothing may linger pending afterwards.
    final = result.schedule.starts()
    assert set(final) == set(GOLDEN_INSTANCE.job_ids)
