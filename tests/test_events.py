"""Unit tests for the deterministic event queue."""

from __future__ import annotations

from repro.core.events import Event, EventKind, EventQueue


class TestEventOrdering:
    def test_time_orders_first(self):
        q = EventQueue()
        q.push(2.0, EventKind.COMPLETION, "late")
        q.push(1.0, EventKind.TIMER, "early")
        assert q.pop().payload == "early"
        assert q.pop().payload == "late"

    def test_same_time_kind_priority(self):
        """At equal times: COMPLETION < ASSIGN < ARRIVAL < DEADLINE < TIMER
        < ADVERSARY — the half-open interval semantics of Section 2."""
        q = EventQueue()
        q.push(1.0, EventKind.ADVERSARY, 5)
        q.push(1.0, EventKind.ARRIVAL, 2)
        q.push(1.0, EventKind.DEADLINE, 3)
        q.push(1.0, EventKind.COMPLETION, 0)
        q.push(1.0, EventKind.TIMER, 4)
        q.push(1.0, EventKind.ASSIGN, 1)
        order = [q.pop().payload for _ in range(6)]
        assert order == [0, 1, 2, 3, 4, 5]

    def test_same_time_same_kind_fifo(self):
        q = EventQueue()
        for i in range(5):
            q.push(1.0, EventKind.ARRIVAL, i)
        assert [q.pop().payload for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(1.0, EventKind.TIMER, "x")
        assert q.peek().payload == "x"
        assert len(q) == 1

    def test_bool_and_len(self):
        q = EventQueue()
        assert not q
        q.push(0.0, EventKind.ARRIVAL, None)
        assert q and len(q) == 1


class TestEvent:
    def test_payload_excluded_from_comparison(self):
        a = Event(1.0, EventKind.ARRIVAL, 0, payload={"un": "hashable"})
        b = Event(1.0, EventKind.ARRIVAL, 1, payload=None)
        assert a < b  # ordered by seq despite incomparable payloads

    def test_kind_enum_values_are_processing_order(self):
        assert (
            EventKind.COMPLETION
            < EventKind.ASSIGN
            < EventKind.ARRIVAL
            < EventKind.DEADLINE
            < EventKind.TIMER
            < EventKind.ADVERSARY
        )
