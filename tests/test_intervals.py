"""Unit tests for the half-open interval algebra."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.intervals import (
    Interval,
    IntervalUnion,
    merge_intervals,
    union_measure,
)


class TestInterval:
    def test_length(self):
        assert Interval(1.0, 3.5).length == 2.5

    def test_empty_interval(self):
        assert Interval(2.0, 2.0).empty
        assert not Interval(2.0, 2.1).empty

    def test_invalid_order_raises(self):
        with pytest.raises(ValueError):
            Interval(3.0, 2.0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Interval(math.nan, 1.0)

    def test_contains_half_open(self):
        iv = Interval(1.0, 2.0)
        assert iv.contains(1.0)
        assert iv.contains(1.999)
        assert not iv.contains(2.0)  # right end excluded
        assert not iv.contains(0.999)

    def test_overlaps(self):
        assert Interval(0, 2).overlaps(Interval(1, 3))
        assert not Interval(0, 2).overlaps(Interval(2, 3))  # abutting
        assert not Interval(0, 1).overlaps(Interval(2, 3))

    def test_touches_or_overlaps(self):
        assert Interval(0, 2).touches_or_overlaps(Interval(2, 3))
        assert not Interval(0, 1).touches_or_overlaps(Interval(2, 3))

    def test_intersection(self):
        assert Interval(0, 3).intersection(Interval(2, 5)) == Interval(2, 3)
        assert Interval(0, 2).intersection(Interval(2, 5)) is None

    def test_intersection_length(self):
        assert Interval(0, 3).intersection_length(Interval(2, 5)) == 1.0
        assert Interval(0, 1).intersection_length(Interval(3, 5)) == 0.0

    def test_hull(self):
        assert Interval(0, 1).hull(Interval(4, 5)) == Interval(0, 5)

    def test_shift(self):
        assert Interval(1, 2).shift(2.5) == Interval(3.5, 4.5)

    def test_ordering(self):
        assert Interval(0, 5) < Interval(1, 2)
        assert Interval(0, 1) < Interval(0, 2)


class TestMergeIntervals:
    def test_empty(self):
        assert merge_intervals([]) == []

    def test_drops_empty_intervals(self):
        assert merge_intervals([Interval(1, 1), Interval(2, 3)]) == [Interval(2, 3)]

    def test_merges_overlapping(self):
        merged = merge_intervals([Interval(0, 2), Interval(1, 4)])
        assert merged == [Interval(0, 4)]

    def test_merges_abutting(self):
        merged = merge_intervals([Interval(0, 2), Interval(2, 3)])
        assert merged == [Interval(0, 3)]

    def test_keeps_disjoint(self):
        merged = merge_intervals([Interval(5, 6), Interval(0, 1)])
        assert merged == [Interval(0, 1), Interval(5, 6)]

    def test_nested(self):
        merged = merge_intervals([Interval(0, 10), Interval(2, 3), Interval(4, 5)])
        assert merged == [Interval(0, 10)]


class TestIntervalUnion:
    def test_measure_empty(self):
        assert IntervalUnion().measure == 0.0
        assert IntervalUnion().empty

    def test_measure_merged(self):
        u = IntervalUnion([Interval(0, 2), Interval(1, 3), Interval(5, 6)])
        assert u.measure == 4.0
        assert len(u) == 2

    def test_left_right(self):
        u = IntervalUnion([Interval(1, 2), Interval(5, 7)])
        assert u.left == 1.0
        assert u.right == 7.0

    def test_left_of_empty_raises(self):
        with pytest.raises(ValueError):
            IntervalUnion().left

    def test_component_at(self):
        u = IntervalUnion([Interval(0, 2), Interval(5, 7)])
        assert u.component_at(1.0) == Interval(0, 2)
        assert u.component_at(5.0) == Interval(5, 7)
        assert u.component_at(2.0) is None  # half-open
        assert u.component_at(3.0) is None

    def test_contains(self):
        u = IntervalUnion([Interval(0, 1)])
        assert u.contains(0.5)
        assert not u.contains(1.0)

    def test_intersection_length(self):
        u = IntervalUnion([Interval(0, 2), Interval(4, 6)])
        assert u.intersection_length(Interval(1, 5)) == 2.0

    def test_added_measure(self):
        u = IntervalUnion([Interval(0, 2)])
        assert u.added_measure(Interval(1, 4)) == 2.0
        assert u.added_measure(Interval(0, 2)) == 0.0

    def test_gaps(self):
        u = IntervalUnion([Interval(0, 1), Interval(3, 4), Interval(6, 7)])
        assert u.gaps() == [Interval(1, 3), Interval(4, 6)]

    def test_union_with_interval(self):
        u = IntervalUnion([Interval(0, 1)]).union(Interval(1, 2))
        assert u.components == (Interval(0, 2),)

    def test_union_with_union(self):
        a = IntervalUnion([Interval(0, 1)])
        b = IntervalUnion([Interval(2, 3)])
        assert a.union(b).measure == 2.0

    def test_intersection_of_unions(self):
        a = IntervalUnion([Interval(0, 3), Interval(5, 8)])
        b = IntervalUnion([Interval(2, 6)])
        inter = a.intersection(b)
        assert inter.components == (Interval(2, 3), Interval(5, 6))

    def test_equality_and_hash(self):
        a = IntervalUnion([Interval(0, 1), Interval(1, 2)])
        b = IntervalUnion([Interval(0, 2)])
        assert a == b
        assert hash(a) == hash(b)

    def test_key_is_canonical(self):
        u = IntervalUnion([Interval(1, 2), Interval(0, 1)])
        assert u.key() == ((0.0, 2.0),)

    def test_from_starts_lengths(self):
        u = IntervalUnion.from_starts_lengths([0, 3], [2, 1])
        assert u.measure == 3.0


class TestUnionMeasure:
    def test_empty(self):
        assert union_measure([], []) == 0.0

    def test_single(self):
        assert union_measure([1.0], [2.0]) == 2.0

    def test_overlapping(self):
        assert union_measure([0, 1], [2, 2]) == 3.0

    def test_nested(self):
        assert union_measure([0, 1], [10, 1]) == 10.0

    def test_disjoint(self):
        assert union_measure([0, 5], [1, 1]) == 2.0

    def test_zero_lengths(self):
        assert union_measure([0, 0], [0, 0]) == 0.0

    def test_unsorted_input(self):
        assert union_measure([5, 0], [1, 1]) == 2.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            union_measure([0, 1], [1])

    def test_negative_length_raises(self):
        with pytest.raises(ValueError):
            union_measure([0], [-1])

    def test_matches_interval_union(self):
        rng = np.random.default_rng(7)
        starts = rng.uniform(0, 100, 200)
        lengths = rng.uniform(0, 10, 200)
        expected = IntervalUnion.from_starts_lengths(starts, lengths).measure
        assert union_measure(starts, lengths) == pytest.approx(expected)
