"""Unit tests for the ablation schedulers WaitScale and GreedyCover."""

from __future__ import annotations

import pytest

from repro.core import Instance, simulate
from repro.schedulers import Doubler, Eager, GreedyCover, WaitScale
from repro.workloads import poisson_instance


class TestWaitScale:
    def test_beta_zero_is_eager(self):
        inst = poisson_instance(30, seed=1)
        ws = simulate(WaitScale(beta=0.0), inst, clairvoyant=True)
        eager = simulate(Eager(), inst)
        assert ws.schedule.starts() == eager.schedule.starts()

    def test_beta_one_matches_doubler(self):
        """β=1 with piggybacking is exactly the Doubler reconstruction."""
        for seed in range(5):
            inst = poisson_instance(40, seed=seed)
            ws = simulate(WaitScale(beta=1.0), inst, clairvoyant=True)
            dl = simulate(Doubler(), inst, clairvoyant=True)
            assert ws.schedule.starts() == dl.schedule.starts()

    def test_large_beta_approaches_lazy(self):
        inst = Instance.from_triples([(0, 5, 1), (0, 7, 2)])
        result = simulate(WaitScale(beta=100.0), inst, clairvoyant=True)
        # waits hit the deadlines
        assert result.schedule.start_of(0) == 5.0
        assert result.schedule.start_of(1) == 7.0

    def test_wait_clipped_to_window(self):
        # laxity 1 < β·p = 6 → start at deadline.
        inst = Instance.from_triples([(0, 1, 3)])
        result = simulate(WaitScale(beta=2.0), inst, clairvoyant=True)
        assert result.schedule.start_of(0) == 1.0

    def test_piggyback_toggle(self):
        # J0 runs [2,10) (β=1, p=8, laxity 2).  J1 (p=2) at t=3 is fully
        # covered: starts immediately with piggyback, waits β·p=2 without.
        inst = Instance.from_triples([(0, 2, 8), (3, 20, 2)])
        with_pb = simulate(WaitScale(beta=1.0, piggyback=True), inst, clairvoyant=True)
        without = simulate(WaitScale(beta=1.0, piggyback=False), inst, clairvoyant=True)
        assert with_pb.schedule.start_of(1) == 3.0
        assert without.schedule.start_of(1) == 5.0

    def test_feasible_across_betas(self):
        inst = poisson_instance(50, seed=4)
        for beta in (0.0, 0.5, 1.0, 2.0, 10.0):
            simulate(WaitScale(beta=beta), inst, clairvoyant=True).schedule.validate()

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            WaitScale(beta=-0.1)

    def test_clone(self):
        c = WaitScale(beta=2.5, piggyback=False).clone()
        assert c.beta == 2.5 and not c.piggyback


class TestGreedyCover:
    def test_theta_zero_is_eager(self):
        inst = poisson_instance(30, seed=2)
        gc = simulate(GreedyCover(theta=0.0), inst, clairvoyant=True)
        eager = simulate(Eager(), inst)
        assert gc.schedule.starts() == eager.schedule.starts()

    def test_waits_until_coverage(self):
        # J0 rigid, runs [0, 10).  J1 (p=4) arrives at 1: [1,5) fully
        # covered → starts immediately at θ=1.
        inst = Instance.from_triples([(0, 0, 10), (1, 10, 4)])
        result = simulate(GreedyCover(theta=1.0), inst, clairvoyant=True)
        assert result.schedule.start_of(1) == 1.0

    def test_insufficient_coverage_waits_for_deadline(self):
        # J1 (p=20) at t=1 has coverage 9/20 < 0.9 and nothing changes it
        # before its deadline at 6.
        inst = Instance.from_triples([(0, 0, 10), (1, 5, 20)])
        result = simulate(GreedyCover(theta=0.9), inst, clairvoyant=True)
        assert result.schedule.start_of(1) == 6.0

    def test_chain_unlock(self):
        """Starting one pending job can unlock another at the same time."""
        # J0 rigid runs [0, 4).  J1 (p=4, arrives 0): coverage 4/4=1? no —
        # [0,4) covered → starts at 0 (θ=1).  J2 (p=8, arrives 0):
        # coverage 4/8 = 0.5 → pends at θ=0.6; J1's start does not extend
        # coverage; at J1's... use θ=0.5: starts immediately.
        inst = Instance.from_triples([(0, 0, 4), (0, 9, 4), (0, 9, 8)])
        result = simulate(GreedyCover(theta=0.5), inst, clairvoyant=True)
        assert result.schedule.start_of(2) == 0.0

    def test_feasible_across_thetas(self):
        inst = poisson_instance(50, seed=5)
        for theta in (0.0, 0.3, 0.7, 1.0):
            simulate(GreedyCover(theta=theta), inst, clairvoyant=True).schedule.validate()

    def test_invalid_theta(self):
        with pytest.raises(ValueError):
            GreedyCover(theta=1.5)
        with pytest.raises(ValueError):
            GreedyCover(theta=-0.1)

    def test_clone(self):
        assert GreedyCover(theta=0.25).clone().theta == 0.25
