"""The daemon's telemetry plane end to end.

Covers the wiring the unit tests in ``test_obs_live.py`` cannot: the
``stats`` op carrying a telemetry section, the read-only HTTP listener
(Prometheus text + JSON snapshots), ``repro obs top --once`` against a
live daemon, the merged multi-tenant trace, and the post-hoc
``summarize`` / ``explain`` reconciliation of the scraped ratio.

Same conventions as ``test_serve_daemon.py``: no pytest-asyncio, so
each test wraps its scenario in ``asyncio.run`` with an outer timeout;
blocking HTTP fetches from the test run in ``asyncio.to_thread`` so
the daemon's event loop keeps serving.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.cli import main
from repro.obs.explain import explain_trace
from repro.obs.jsonl import read_jsonl
from repro.obs.aggregate import summarize_trace
from repro.obs.top import fetch_snapshot, render_top
from repro.serve.daemon import MERGED_TRACE_NAME, ServeDaemon

from tests.test_serve_daemon import (
    Client,
    job_line,
    run_async,
    start_daemon,
    stop_daemon,
)

TIMEOUT = 60.0


async def _start_with_telemetry(tmp_path, **kwargs):
    """Daemon with a telemetry listener on an OS-assigned port."""
    daemon, task, sock = await start_daemon(
        tmp_path, telemetry_listen=("127.0.0.1", 0), **kwargs
    )
    assert daemon.telemetry_address is not None
    port = int(daemon.telemetry_address.rsplit(":", 1)[1])
    return daemon, task, sock, f"127.0.0.1:{port}"


async def _feed_two_tenants(client, jobs=25):
    """Interleave two tenants' tight-window streams, then close both."""
    for i in range(jobs):
        arrival = float(i)
        for tenant in ("alpha", "beta"):
            await client.send(job_line(tenant, i, arrival, arrival + 3.0, 2.0))
    for tenant in ("alpha", "beta"):
        await client.send({"op": "close", "tenant": tenant})
        await client.recv_until(
            lambda r: r.get("kind") == "serve.closed" and r.get("tenant") == tenant
        )


class TestStatsOp:
    def test_stats_carries_telemetry_section(self, tmp_path):
        async def scenario():
            daemon, task, sock = await start_daemon(tmp_path)
            client = await Client.connect(sock)
            await _feed_two_tenants(client)
            await client.send({"op": "stats"})
            seen = await client.recv_until(
                lambda r: r.get("kind") == "serve.stats"
            )
            stats = seen[-1]
            telemetry = stats["telemetry"]
            assert telemetry["kind"] == "telemetry"
            alpha = telemetry["tenants"]["alpha"]
            assert alpha["jobs"]["completed"] == 25
            assert alpha["span"] > 0.0
            assert alpha["ratio"] >= 1.0
            assert telemetry["aggregate"]["tenants"] == 2
            assert telemetry["daemon"]["draining"] is False
            await client.close()
            await stop_daemon(daemon, task)

        run_async(scenario())

    def test_stats_disarmed_reports_disabled(self, tmp_path):
        async def scenario():
            daemon, task, sock = await start_daemon(tmp_path, telemetry=False)
            client = await Client.connect(sock)
            await client.send({"op": "stats"})
            seen = await client.recv_until(
                lambda r: r.get("kind") == "serve.stats"
            )
            telemetry = seen[-1]["telemetry"]
            assert telemetry == {
                "kind": "telemetry", "enabled": False, "tenants": {},
            }
            await client.close()
            await stop_daemon(daemon, task)

        run_async(scenario())


class TestListener:
    def test_snapshot_and_metrics_endpoints(self, tmp_path):
        async def scenario():
            daemon, task, sock, connect = await _start_with_telemetry(tmp_path)
            client = await Client.connect(sock)
            await _feed_two_tenants(client)
            snap = await asyncio.to_thread(fetch_snapshot, connect)
            assert set(snap["tenants"]) == {"alpha", "beta"}
            assert snap["tenants"]["alpha"]["opt_lb"]["value"] > 0.0

            def scrape_metrics():
                import http.client

                host, port = connect.rsplit(":", 1)
                conn = http.client.HTTPConnection(host, int(port), timeout=5.0)
                try:
                    conn.request("GET", "/metrics")
                    response = conn.getresponse()
                    return response.status, response.read().decode()
                finally:
                    conn.close()

            status, text = await asyncio.to_thread(scrape_metrics)
            assert status == 200
            assert 'repro_tenant_span{tenant="alpha"} ' in text
            assert "repro_daemon_lines_in_total" in text
            assert text.endswith("\n")
            await client.close()
            await stop_daemon(daemon, task)

        run_async(scenario())

    def test_top_once_json_and_text(self, tmp_path):
        async def scenario():
            daemon, task, sock, connect = await _start_with_telemetry(tmp_path)
            client = await Client.connect(sock)
            await _feed_two_tenants(client)
            snap = await asyncio.to_thread(fetch_snapshot, connect)
            frame = render_top(snap)
            assert "alpha" in frame and "beta" in frame
            assert "max_ratio=" in frame
            # The CLI's --once --format json path is this snapshot verbatim.
            assert json.loads(json.dumps(snap)) == snap
            await client.close()
            await stop_daemon(daemon, task)
            return snap

        snap = run_async(scenario())
        assert snap["tenants"]["alpha"]["ratio"] >= 1.0

    def test_listener_absent_without_config(self, tmp_path):
        async def scenario():
            daemon, task, sock = await start_daemon(tmp_path)
            assert daemon.telemetry_address is None
            await stop_daemon(daemon, task)

        run_async(scenario())

    def test_fetch_snapshot_rejects_bad_address(self):
        with pytest.raises(ValueError):
            fetch_snapshot("no-port")


class TestReconciliation:
    """Scrape → drain → post-hoc summarize/explain must agree."""

    def test_scraped_ratio_matches_explain_replay(self, tmp_path):
        trace_dir = tmp_path / "traces"

        async def scenario():
            daemon, task, sock, connect = await _start_with_telemetry(
                tmp_path, trace_dir=str(trace_dir)
            )
            client = await Client.connect(sock)
            await _feed_two_tenants(client)
            snap = await asyncio.to_thread(fetch_snapshot, connect)
            await client.close()
            await stop_daemon(daemon, task)
            return snap

        snap = run_async(scenario())
        for tenant in ("alpha", "beta"):
            scraped = snap["tenants"][tenant]
            explanation = explain_trace(
                read_jsonl(trace_dir / f"{tenant}.trace.jsonl")
            )
            row = explanation.telemetry[tenant]
            assert row["monotone"] is True
            assert row["consistent"] is True
            assert row["span"] == pytest.approx(scraped["span"])
            assert row["live_lb"] == pytest.approx(scraped["opt_lb"]["value"])
            assert row["ratio"] == pytest.approx(scraped["ratio"])
            assert row["live_lb"] <= row["reference_lb"] + 1e-9
            assert explanation.lb_monotone is True
            assert explanation.lb_consistent is True

    def test_merged_trace_summarizes_per_tenant(self, tmp_path):
        trace_dir = tmp_path / "traces"

        async def scenario():
            daemon, task, sock, _ = await _start_with_telemetry(
                tmp_path, trace_dir=str(trace_dir)
            )
            client = await Client.connect(sock)
            await _feed_two_tenants(client)
            await client.close()
            await stop_daemon(daemon, task)

        run_async(scenario())
        merged = read_jsonl(trace_dir / MERGED_TRACE_NAME)
        summary = summarize_trace(merged)
        assert set(summary.tenants) == {"alpha", "beta"}
        for tenant in ("alpha", "beta"):
            per_tenant = summarize_trace(
                read_jsonl(trace_dir / f"{tenant}.trace.jsonl")
            )
            merged_row = summary.tenants[tenant]
            solo_row = per_tenant.tenants[tenant]
            assert merged_row["span"] == pytest.approx(solo_row["span"])
            assert merged_row["jobs"] == solo_row["jobs"]
            assert merged_row["decisions"] == solo_row["decisions"]


class TestCliFlags:
    def test_serve_cli_rejects_bad_telemetry_spec(self, capsys):
        assert main(["serve", "--telemetry", "nonsense", "--stdio"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_no_telemetry_flag_disarms(self, tmp_path):
        async def scenario():
            daemon, task, sock = await start_daemon(tmp_path, telemetry=False)
            assert daemon.live is None
            await stop_daemon(daemon, task)

        run_async(scenario())

    def test_env_disarms(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "0")

        async def scenario():
            daemon, task, sock = await start_daemon(tmp_path)
            assert daemon.live is None
            await stop_daemon(daemon, task)

        run_async(scenario())
