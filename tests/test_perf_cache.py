"""Tests for the content-addressed reference cache (``repro.perf.cache``)."""

from __future__ import annotations

import json

import pytest

from repro.core.job import Instance, Job
from repro.offline import exact_optimal_span, span_lower_bound
from repro.perf import (
    ReferenceCache,
    cached_reference,
    get_default_cache,
    instance_fingerprint,
    reset_default_cache,
)
from repro.perf.cache import CACHE_DIR_ENV, CACHE_ENABLE_ENV


def small_instance(name: str = "inst") -> Instance:
    return Instance.from_triples(
        [(0, 2, 1), (1, 3, 2), (2, 1, 1), (4, 2, 3)], name=name
    )


class TestFingerprint:
    def test_stable_across_equal_content(self):
        assert instance_fingerprint(small_instance("a")) == instance_fingerprint(
            small_instance("b")
        )  # name excluded: content-addressed

    def test_any_job_field_change_invalidates(self):
        base = small_instance()
        fp = instance_fingerprint(base)
        jobs = list(base.jobs)
        moved = jobs[1].with_length(jobs[1].length + 1.0)
        changed = Instance(jobs[:1] + [moved] + jobs[2:], name=base.name)
        assert instance_fingerprint(changed) != fp

    def test_job_order_does_not_matter(self):
        base = small_instance()
        shuffled = Instance(reversed(base.jobs), name="shuffled")
        assert instance_fingerprint(base) == instance_fingerprint(shuffled)


class TestReferenceCache:
    def test_hit_miss_counters(self):
        cache = ReferenceCache()
        inst = small_instance()
        calls = []

        def ref(instance):
            calls.append(instance)
            return span_lower_bound(instance)

        first = cache.compute("lb", inst, ref)
        second = cache.compute("lb", inst, ref)
        assert first == second == span_lower_bound(inst)
        assert len(calls) == 1  # second call was a hit
        assert cache.hits == 1 and cache.misses == 1
        assert cache.stats()["hit_rate"] == 0.5

    def test_kind_separates_references(self):
        cache = ReferenceCache()
        inst = small_instance()
        cache.put("a", instance_fingerprint(inst), 1.0)
        assert cache.get("b", instance_fingerprint(inst)) is None

    def test_fingerprint_change_invalidates(self):
        cache = ReferenceCache()
        inst = small_instance()
        v1 = cache.compute("lb", inst, span_lower_bound)
        grown = Instance(
            list(inst.jobs)
            + [Job(id=99, arrival=100.0, deadline=101.0, length=50.0)],
            name=inst.name,
        )
        v2 = cache.compute("lb", grown, span_lower_bound)
        assert v2 != v1  # recomputed, not served from the old entry
        assert cache.misses == 2

    def test_lru_eviction(self):
        cache = ReferenceCache(maxsize=2)
        cache.put("k", "f1", 1.0)
        cache.put("k", "f2", 2.0)
        assert cache.get("k", "f1") == 1.0  # f1 now most-recent
        cache.put("k", "f3", 3.0)  # evicts f2
        assert cache.get("k", "f2") is None
        assert cache.get("k", "f1") == 1.0
        assert len(cache) == 2

    def test_disk_store_roundtrip(self, tmp_path):
        inst = small_instance()
        first = ReferenceCache(path=tmp_path)
        value = first.compute("lb", inst, span_lower_bound)

        # A brand-new cache (fresh process, conceptually) reads it back.
        second = ReferenceCache(path=tmp_path)
        calls = []

        def never(instance):  # pragma: no cover - must not run
            calls.append(instance)
            return -1.0

        assert second.compute("lb", inst, never) == value
        assert not calls and second.hits == 1

        store = json.loads((tmp_path / "reference_cache.json").read_text())
        assert any(k.startswith("lb:") for k in store)


class TestCachedReference:
    def test_wrapper_matches_uncached(self):
        inst = small_instance()
        ref = cached_reference(span_lower_bound, cache=ReferenceCache())
        assert ref(inst) == span_lower_bound(inst)
        assert ref(inst) == span_lower_bound(inst)  # from cache

    def test_kwargs_fold_into_kind(self):
        a = cached_reference(exact_optimal_span, cache=ReferenceCache())
        b = cached_reference(
            exact_optimal_span, cache=ReferenceCache(), node_budget=10_000
        )
        assert a.kind != b.kind  # parameterisations never collide

    def test_exact_reference_cached(self):
        inst = Instance.from_triples(
            [(0, 2, 1), (1, 1, 2), (3, 2, 1)], name="tiny-int"
        )
        cache = ReferenceCache()
        ref = cached_reference(exact_optimal_span, cache=cache)
        v1 = ref(inst)
        v2 = ref(inst)
        assert v1 == v2 == exact_optimal_span(inst)
        assert cache.hits == 1

    def test_picklable_for_process_pools(self):
        import pickle

        ref = cached_reference(span_lower_bound, cache=ReferenceCache())
        clone = pickle.loads(pickle.dumps(ref))
        assert clone(small_instance()) == span_lower_bound(small_instance())


class TestDefaultCacheEnv:
    @pytest.fixture(autouse=True)
    def _reset(self):
        reset_default_cache()
        yield
        reset_default_cache()

    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENABLE_ENV, raising=False)
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert get_default_cache() is not None

    def test_disable_knob(self, monkeypatch):
        monkeypatch.setenv(CACHE_ENABLE_ENV, "0")
        assert get_default_cache() is None
        # cached_reference still computes correctly with caching off.
        ref = cached_reference(span_lower_bound)
        assert ref(small_instance()) == span_lower_bound(small_instance())

    def test_dir_knob_persists(self, monkeypatch, tmp_path):
        monkeypatch.delenv(CACHE_ENABLE_ENV, raising=False)
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        ref = cached_reference(span_lower_bound)
        ref(small_instance())
        assert (tmp_path / "reference_cache.json").exists()


class TestFlushFailureCleanup:
    """Regression: a failed disk flush must not leak ``.refcache-*``
    temp files into the cache directory (the memory tier still serves)."""

    def test_replace_failure_leaves_no_temp(self, monkeypatch, tmp_path):
        cache = ReferenceCache(path=tmp_path)

        def deny(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr("repro.perf.cache.os.replace", deny)
        cache.put("lb", "fp1", 1.5)  # write-through flush fails silently
        assert cache.get("lb", "fp1") == 1.5  # memory tier unaffected
        leftovers = [p.name for p in tmp_path.iterdir()]
        assert leftovers == []  # no .refcache-* temp, no store file

    def test_flush_recovers_once_disk_returns(self, monkeypatch, tmp_path):
        cache = ReferenceCache(path=tmp_path)
        real_replace = __import__("os").replace
        calls = {"n": 0}

        def flaky(src, dst):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("transient")
            return real_replace(src, dst)

        monkeypatch.setattr("repro.perf.cache.os.replace", flaky)
        cache.put("lb", "fp1", 1.5)  # fails, cleaned up
        cache.put("lb", "fp2", 2.5)  # succeeds, carries both entries
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == ["reference_cache.json"]
        fresh = ReferenceCache(path=tmp_path)
        assert fresh.get("lb", "fp1") == 1.5
        assert fresh.get("lb", "fp2") == 2.5
