"""Unit tests for simulation tracing."""

from __future__ import annotations

import pytest

from repro.adversaries import NonClairvoyantLowerBoundAdversary, geometric_profile
from repro.core import Instance, TraceKind, simulate
from repro.core.trace import Trace
from repro.schedulers import Batch, BatchPlus, Doubler


class TestTraceCollection:
    def test_disabled_by_default(self, simple_instance):
        result = simulate(BatchPlus(), simple_instance)
        assert result.trace is None

    def test_enabled_records_everything(self, simple_instance):
        result = simulate(BatchPlus(), simple_instance, trace=True)
        trace = result.trace
        assert trace is not None
        n = len(simple_instance)
        assert len(trace.filter(TraceKind.RELEASE)) == n
        assert len(trace.filter(TraceKind.ARRIVAL)) == n
        assert len(trace.filter(TraceKind.START)) == n
        assert len(trace.filter(TraceKind.COMPLETION)) == n

    def test_times_monotone(self, simple_instance):
        result = simulate(Batch(), simple_instance, trace=True)
        times = [r.time for r in result.trace]
        assert times == sorted(times)

    def test_starts_match_schedule(self, simple_instance):
        result = simulate(Batch(), simple_instance, trace=True)
        assert result.trace.starts() == result.schedule.starts()

    def test_per_job_lifecycle_order(self, simple_instance):
        result = simulate(BatchPlus(), simple_instance, trace=True)
        for job in simple_instance:
            kinds = [r.kind for r in result.trace.for_job(job.id)]
            assert kinds.index(TraceKind.RELEASE) < kinds.index(TraceKind.ARRIVAL)
            assert kinds.index(TraceKind.ARRIVAL) < kinds.index(TraceKind.START)
            assert kinds.index(TraceKind.START) < kinds.index(TraceKind.COMPLETION)

    def test_timer_records(self):
        inst = Instance.from_triples([(0, 10, 3)])
        result = simulate(Doubler(), inst, clairvoyant=True, trace=True)
        assert len(result.trace.filter(TraceKind.TIMER)) >= 1

    def test_adversary_records(self):
        adv = NonClairvoyantLowerBoundAdversary(
            mu=3.0, profile=geometric_profile(1, 4)
        )
        result = simulate(Batch(), adversary=adv, clairvoyant=False, trace=True)
        trace = result.trace
        assigns = trace.filter(TraceKind.ASSIGN)
        # every adversary-released (length=None) job gets an assignment
        assert len(assigns) == 16  # iteration 1 jobs; final 4 have fixed lengths
        assert len(trace.filter(TraceKind.ADVERSARY_WAKEUP)) >= 1
        # the earmarked job's record carries its committed length μ
        earmark = adv.earmarked_ids[0]
        detail = [r.detail for r in assigns if r.job_id == earmark]
        assert detail == ["length=3"]


class TestTraceApi:
    def test_render_truncates(self):
        t = Trace()
        for i in range(10):
            t.append(float(i), TraceKind.ARRIVAL, i)
        out = t.render(limit=3)
        assert "7 more records" in out

    def test_indexing_and_len(self):
        t = Trace()
        t.append(0.0, TraceKind.ARRIVAL, 1)
        assert len(t) == 1
        assert t[0].job_id == 1

    def test_deadline_only_recorded_when_it_fires(self, simple_instance):
        """Deadline records appear only for jobs still pending at their
        deadline (Eager-started jobs never produce one)."""
        from repro.schedulers import Eager

        result = simulate(Eager(), simple_instance, trace=True)
        assert result.trace.filter(TraceKind.DEADLINE) == []
