"""Unit tests for Classify-by-Duration Batch+ (Theorem 4.4)."""

from __future__ import annotations

import math

import pytest

from repro.analysis import cdb_ratio, optimal_cdb_alpha
from repro.core import Instance, simulate
from repro.offline import exact_optimal_span
from repro.schedulers import ClassifyByDurationBatchPlus, duration_category
from repro.workloads import small_integral_instance


class TestDurationCategory:
    def test_basic_buckets(self):
        # α=2, base=1: category i covers (2^(i-1), 2^i].
        assert duration_category(1.0, 2.0) == 0
        assert duration_category(1.5, 2.0) == 1
        assert duration_category(2.0, 2.0) == 1
        assert duration_category(2.1, 2.0) == 2
        assert duration_category(4.0, 2.0) == 2

    def test_fractional_lengths(self):
        assert duration_category(0.5, 2.0) == -1
        assert duration_category(0.25, 2.0) == -2

    def test_boundary_exact_power(self):
        # lengths exactly on a boundary b·α^i land in category i despite
        # floating-point log rounding.
        alpha = 1 + math.sqrt(2 / 3)
        for i in range(-5, 6):
            length = alpha**i
            assert duration_category(length, alpha) == i

    def test_base_shifts_categories(self):
        assert duration_category(6.0, 2.0, base=3.0) == 1
        assert duration_category(3.0, 2.0, base=3.0) == 0

    def test_ratio_within_category_bounded(self):
        """Any two lengths in the same category differ by at most α."""
        alpha = 1.7
        import numpy as np

        rng = np.random.default_rng(0)
        lengths = rng.uniform(0.1, 50.0, size=300)
        buckets: dict[int, list[float]] = {}
        for p in lengths:
            buckets.setdefault(duration_category(float(p), alpha), []).append(float(p))
        for vals in buckets.values():
            assert max(vals) / min(vals) <= alpha * (1 + 1e-9)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            duration_category(0.0, 2.0)
        with pytest.raises(ValueError):
            duration_category(1.0, 1.0)
        with pytest.raises(ValueError):
            duration_category(1.0, 2.0, base=0.0)


class TestCDBMechanics:
    def test_categories_scheduled_independently(self):
        """Jobs in different duration categories don't batch together."""
        # α=2: p=1 is category 0; p=8 is category 3.  Same window.
        inst = Instance.from_triples([(0, 5, 1), (0, 5, 8)], name="two-cats")
        result = simulate(
            ClassifyByDurationBatchPlus(alpha=2.0), inst, clairvoyant=True
        )
        sched = result.scheduler
        assert sched.num_categories == 2
        # Each category has its own flag job: both jobs are flags.
        assert sorted(sched.flag_job_ids) == [0, 1]
        # Both start at their own deadlines (each the only job pending in
        # its category).
        assert result.schedule.start_of(0) == 5.0
        assert result.schedule.start_of(1) == 5.0

    def test_same_category_batches(self):
        # α=2: both p=3 and p=4 lie in category (2, 4].
        inst = Instance.from_triples([(0, 5, 3), (1, 9, 4)], name="one-cat")
        result = simulate(
            ClassifyByDurationBatchPlus(alpha=2.0), inst, clairvoyant=True
        )
        assert result.scheduler.num_categories == 1
        # J0 is the flag at t=5; J1 (pending) joins the batch.
        assert result.schedule.start_of(0) == 5.0
        assert result.schedule.start_of(1) == 5.0
        assert result.scheduler.flag_job_ids == [0]

    def test_category_flag_jobs_view(self):
        inst = Instance.from_triples([(0, 5, 1), (0, 5, 8)], name="view")
        result = simulate(
            ClassifyByDurationBatchPlus(alpha=2.0), inst, clairvoyant=True
        )
        cats = result.scheduler.category_flag_jobs
        assert sum(len(v) for v in cats.values()) == 2

    def test_requires_clairvoyance_flag(self):
        assert ClassifyByDurationBatchPlus.requires_clairvoyance

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ClassifyByDurationBatchPlus(alpha=1.0)
        with pytest.raises(ValueError):
            ClassifyByDurationBatchPlus(base=0.0)

    def test_clone_preserves_params(self):
        proto = ClassifyByDurationBatchPlus(alpha=3.0, base=2.0)
        clone = proto.clone()
        assert clone.alpha == 3.0 and clone.base == 2.0
        assert clone.num_categories == 0


class TestCDBTheorems:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("alpha", [1.5, optimal_cdb_alpha(), 3.0])
    def test_bound_vs_exact_opt(self, seed, alpha):
        """Theorem 4.4: span(CDB) <= (3α+4+2/(α-1))·span_min."""
        inst = small_integral_instance(6, seed=seed, max_length=6)
        result = simulate(
            ClassifyByDurationBatchPlus(alpha=alpha), inst, clairvoyant=True
        )
        opt = exact_optimal_span(inst)
        assert result.span <= cdb_ratio(alpha) * opt + 1e-9

    def test_optimal_alpha_minimises_bound(self):
        a_star = optimal_cdb_alpha()
        for a in (1.2, 1.5, 2.0, 3.0, 5.0):
            assert cdb_ratio(a_star) <= cdb_ratio(a) + 1e-12
        assert cdb_ratio(a_star) == pytest.approx(7 + 2 * math.sqrt(6))
