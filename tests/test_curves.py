"""Unit tests for the ASCII curve renderer."""

from __future__ import annotations

import pytest

from repro.analysis import render_curve, render_curves


class TestRenderCurves:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_curves({})
        with pytest.raises(ValueError):
            render_curves({"a": []})

    def test_single_point(self):
        out = render_curve([(1.0, 2.0)], name="pt")
        assert "*" in out
        assert "pt" in out

    def test_title_and_labels(self):
        out = render_curves(
            {"s": [(0, 0), (1, 1)]}, title="T", y_label="ratio"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "ratio" in out
        assert "1" in lines[1]  # top y label
        assert "0" in lines[-3]  # bottom y label

    def test_multiple_series_distinct_markers(self):
        out = render_curves(
            {"up": [(0, 0), (1, 1)], "down": [(0, 1), (1, 0)]}
        )
        assert "* up" in out
        assert "o down" in out
        assert "*" in out and "o" in out

    def test_monotone_series_renders_monotone(self):
        """The marker for the max-y point sits on the top row."""
        pts = [(x, x * x) for x in range(6)]
        out = render_curve(pts, height=10)
        rows = [l for l in out.splitlines() if "|" in l]
        assert "*" in rows[0]  # max at top
        assert "*" in rows[-1]  # min at bottom

    def test_width_respected(self):
        out = render_curve([(0, 0), (5, 3)], width=30)
        for line in out.splitlines():
            if "|" in line:
                inner = line.split("|")[1]
                assert len(inner) == 30

    def test_flat_series(self):
        out = render_curve([(0, 1.0), (1, 1.0), (2, 1.0)])
        assert "*" in out

    def test_interpolation_dots(self):
        out = render_curve([(0, 0), (10, 10)], width=40, height=12)
        assert "·" in out  # connecting segments drawn
