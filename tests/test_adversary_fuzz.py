"""Hypothesis fuzzing of the adversary interface.

Random (but protocol-respecting) adversaries stress the engine's dynamic
release, wake-up and length-assignment paths; every run must produce a
valid schedule over the resolved instance.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversaries import BaseAdversary
from repro.core import Job, simulate
from repro.core.engine import AdversaryResponse
from repro.schedulers import Batch, BatchPlus, Eager


class FuzzAdversary(BaseAdversary):
    """Releases waves of jobs driven by a recorded decision stream."""

    def __init__(self, spec):
        self.initial, self.waves, self.lengths = spec
        self._next_id = len(self.initial)
        self._li = 0
        self._wave_i = 0

    def initial_jobs(self):
        return [
            Job(i, a, a + lax, None if ctrl else 1.0 + p)
            for i, (a, lax, p, ctrl) in enumerate(self.initial)
        ]

    def _next_length(self):
        if not self.lengths:
            return 1.0
        v = self.lengths[self._li % len(self.lengths)]
        self._li += 1
        return 1.0 + v

    def assign_length(self, job, t):
        return self._next_length()

    def on_completion(self, job, t):
        if self._wave_i >= len(self.waves):
            return None
        wave = self.waves[self._wave_i]
        self._wave_i += 1
        jobs = []
        for a_off, lax, p, ctrl in wave:
            jobs.append(
                Job(
                    self._next_id,
                    t + a_off,
                    t + a_off + lax,
                    None if ctrl else 1.0 + p,
                )
            )
            self._next_id += 1
        return AdversaryResponse(release=tuple(jobs))


job_spec = st.tuples(
    st.floats(min_value=0, max_value=10, allow_nan=False),   # arrival offset
    st.floats(min_value=0, max_value=8, allow_nan=False),    # laxity
    st.floats(min_value=0, max_value=4, allow_nan=False),    # length - 1
    st.booleans(),                                            # adversary-controlled?
)


@st.composite
def adversary_specs(draw):
    initial = draw(st.lists(job_spec, min_size=1, max_size=6))
    waves = draw(st.lists(st.lists(job_spec, min_size=1, max_size=4), max_size=4))
    lengths = draw(st.lists(st.floats(min_value=0, max_value=5, allow_nan=False), max_size=8))
    return initial, waves, lengths


class TestAdversaryFuzz:
    @given(adversary_specs())
    @settings(max_examples=60, deadline=None)
    def test_batch_survives_any_adversary(self, spec):
        result = simulate(Batch(), adversary=FuzzAdversary(spec), clairvoyant=False)
        result.schedule.validate()
        assert not result.instance.has_unknown_lengths

    @given(adversary_specs())
    @settings(max_examples=40, deadline=None)
    def test_batchplus_and_eager_survive(self, spec):
        for sched in (BatchPlus(), Eager()):
            result = simulate(
                sched, adversary=FuzzAdversary(spec), clairvoyant=False
            )
            result.schedule.validate()

    @given(adversary_specs())
    @settings(max_examples=30, deadline=None)
    def test_deterministic_replay(self, spec):
        r1 = simulate(Batch(), adversary=FuzzAdversary(spec), clairvoyant=False)
        r2 = simulate(Batch(), adversary=FuzzAdversary(spec), clairvoyant=False)
        assert r1.schedule.starts() == r2.schedule.starts()
        assert [j.length for j in r1.instance] == [j.length for j in r2.instance]
