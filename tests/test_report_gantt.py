"""Unit tests for table formatting and Gantt rendering."""

from __future__ import annotations

import pytest

from repro.analysis import Table, format_table, render_gantt
from repro.core import Instance, Schedule, simulate
from repro.schedulers import BatchPlus


class TestFormatTable:
    def test_basic_rendering(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]])
        lines = out.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert "2.5000" in out and "3.2500" in out

    def test_title_and_rule(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"
        assert set(out.splitlines()[1]) == {"="}

    def test_bool_formatting(self):
        out = format_table(["ok"], [[True], [False]])
        assert "yes" in out and "no" in out

    def test_infinity(self):
        out = format_table(["v"], [[float("inf")]])
        assert "∞" in out

    def test_precision(self):
        out = format_table(["v"], [[1 / 3]], precision=2)
        assert "0.33" in out

    def test_column_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_table_builder(self):
        t = Table(["s", "v"], title="demo")
        t.add("x", 1.0)
        t.add("y", 2.0)
        out = t.render()
        assert "demo" in out and "x" in out and "y" in out
        with pytest.raises(ValueError):
            t.add("only-one-cell")


class TestGantt:
    def test_empty_schedule(self):
        assert "empty" in render_gantt(Schedule(Instance([]), {}))

    def test_renders_all_jobs(self, simple_instance):
        result = simulate(BatchPlus(), simple_instance)
        out = render_gantt(result.schedule)
        for job in simple_instance:
            assert f"J{job.id}" in out
        assert "█" in out
        assert "span=" in out.splitlines()[0]

    def test_truncation(self):
        inst = Instance.from_triples([(i, 2, 1) for i in range(20)])
        result = simulate(BatchPlus(), inst)
        out = render_gantt(result.schedule, max_jobs=5)
        assert "15 more jobs not shown" in out

    def test_window_shading_toggle(self, simple_instance):
        result = simulate(BatchPlus(), simple_instance)
        with_window = render_gantt(result.schedule, show_window=True)
        without = render_gantt(result.schedule, show_window=False)
        assert "·" in with_window
        assert "·" not in without

    def test_width_respected(self, simple_instance):
        result = simulate(BatchPlus(), simple_instance)
        out = render_gantt(result.schedule, width=40)
        for line in out.splitlines()[1:]:
            assert len(line) <= 40 + 10  # label + canvas + borders


class TestMarkdown:
    def test_markdown_table(self):
        from repro.analysis import format_markdown

        out = format_markdown(["a", "b"], [[1, 2.5], [3, 4.25]])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "| 2.5000 |" in lines[2]

    def test_table_render_markdown(self):
        t = Table(["x"], precision=2)
        t.add(1 / 3)
        assert "0.33" in t.render_markdown()

    def test_markdown_column_mismatch(self):
        from repro.analysis import format_markdown

        with pytest.raises(ValueError):
            format_markdown(["a", "b"], [[1]])
