"""Unit tests for the flag-forest analysis (Lemmas 4.6–4.9)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    build_flag_forest,
    check_forest_property,
    check_lemma_4_6,
)
from repro.core import Instance, simulate
from repro.schedulers import Profit
from repro.workloads import poisson_instance, small_integral_instance


def profit_run(inst, k=1.7071):
    result = simulate(Profit(k=k), inst, clairvoyant=True)
    return result, result.scheduler.flag_job_ids


class TestForestConstruction:
    def test_single_flag_is_root(self):
        inst = Instance.from_triples([(0, 3, 2)])
        result, flags = profit_run(inst)
        forest = build_flag_forest(result.instance, flags)
        assert forest.roots == [0]
        assert forest.parent == {}

    def test_disjoint_flags_are_separate_roots(self):
        # two flags that can never overlap: second arrives after first's
        # latest completion.
        inst = Instance.from_triples([(0, 1, 2), (10, 1, 2)])
        result, flags = profit_run(inst)
        forest = build_flag_forest(result.instance, flags)
        assert len(forest.roots) == 2
        assert len(forest.trees()) == 2

    def test_edge_construction_matches_definition(self):
        """X(J) membership: a(J') < d(J)+p(J) and d(J) < d(J')."""
        # J0: d=2, p=1 → latest completion 3.  J1: a=1 (<3), d=9 (>2),
        # p=10 (unprofitable) → J1 ∈ X(J0), edge J1 → J0.
        inst = Instance.from_triples([(0, 2, 1), (1, 8, 10)])
        result, flags = profit_run(inst, k=1.5)
        assert sorted(flags) == [0, 1]
        forest = build_flag_forest(result.instance, flags)
        assert forest.x_sets[0] == [1]
        assert forest.parent[0] == 1
        assert forest.roots == [1]
        assert forest.children(1) == [0]

    def test_parent_is_earliest_deadline_in_x(self):
        # Three flags: J0 small early; J1 and J2 both in X(J0) with J1's
        # deadline earlier → J1 is the parent.
        inst = Instance.from_triples(
            [(0, 2, 1), (1, 6, 10), (1, 9, 120)]
        )
        result, flags = profit_run(inst, k=1.5)
        assert sorted(flags) == [0, 1, 2]
        forest = build_flag_forest(result.instance, flags)
        assert forest.parent[0] == 1

    def test_tree_of_and_height(self):
        inst = Instance.from_triples([(0, 2, 1), (1, 8, 10)])
        result, flags = profit_run(inst, k=1.5)
        forest = build_flag_forest(result.instance, flags)
        assert forest.tree_of(0) == {0, 1}
        root = forest.roots[0]
        assert forest.height(root) == 1


class TestLemmas:
    @pytest.mark.parametrize("seed", range(10))
    def test_lemma_4_6_on_random_instances(self, seed):
        """Earlier-deadline flags complete earlier (Profit schedule)."""
        inst = small_integral_instance(10, seed=seed, max_arrival=15)
        result, flags = profit_run(inst)
        assert check_lemma_4_6(result.instance, flags)

    @pytest.mark.parametrize("seed", range(10))
    def test_lemma_4_7_forest_on_random_instances(self, seed):
        """The flag graph is always a forest (acyclic, in-degree <= 1)."""
        inst = small_integral_instance(10, seed=seed, max_arrival=15)
        result, flags = profit_run(inst)
        forest = build_flag_forest(result.instance, flags)
        assert check_forest_property(forest)

    def test_lemma_4_9_disjoint_trees_cannot_overlap(self):
        """Flags in different trees satisfy the non-overlap condition
        a(J') >= d(J) + p(J) (in deadline order)."""
        for seed in range(10):
            inst = poisson_instance(30, seed=seed, laxity_scale=1.0)
            result, flags = profit_run(inst)
            forest = build_flag_forest(result.instance, flags)
            trees = forest.trees()
            for i, t1 in enumerate(trees):
                for t2 in trees[i + 1 :]:
                    for a in t1:
                        for b in t2:
                            ja, jb = result.instance[a], result.instance[b]
                            first, second = (
                                (ja, jb) if ja.deadline < jb.deadline else (jb, ja)
                            )
                            assert (
                                second.arrival
                                >= first.deadline + first.known_length - 1e-9
                            )

    def test_trees_partition_flags(self):
        inst = poisson_instance(40, seed=2, laxity_scale=1.0)
        result, flags = profit_run(inst)
        forest = build_flag_forest(result.instance, flags)
        all_ids = sorted(i for tree in forest.trees() for i in tree)
        assert all_ids == sorted(flags)


class TestTheorem34Selection:
    """The Theorem 3.4 flag-subset machinery (select_disjoint_flags)."""

    def test_empty_and_single(self):
        from repro.analysis import select_disjoint_flags

        inst = Instance.from_triples([(0, 2, 1)])
        assert select_disjoint_flags(inst, []) == []
        assert select_disjoint_flags(inst, [0]) == [0]

    @pytest.mark.parametrize("seed", range(10))
    def test_selection_certifies_batch_bound(self, seed):
        """span(Batch) <= (2μ+1)·Σ p over the chosen flags, and the chosen
        flags are pairwise unoverlappable (so Σ p <= OPT)."""
        from repro.analysis import flags_pairwise_disjoint, select_disjoint_flags
        from repro.schedulers import Batch

        inst = small_integral_instance(14, seed=seed, max_arrival=40)
        result = simulate(Batch(), inst)
        chosen = select_disjoint_flags(result.instance, result.scheduler.flag_job_ids)
        assert chosen
        assert flags_pairwise_disjoint(result.instance, chosen)
        total = sum(result.instance[j].known_length for j in chosen)
        mu = inst.mu
        assert result.span <= (2 * mu + 1) * total + 1e-9

    @pytest.mark.parametrize("seed", range(5))
    def test_chosen_sum_below_exact_opt(self, seed):
        """The certified quantity Σ p(chosen flags) really lower-bounds
        the exact optimum."""
        from repro.analysis import select_disjoint_flags
        from repro.offline import exact_optimal_span
        from repro.schedulers import Batch

        inst = small_integral_instance(7, seed=seed, max_arrival=25)
        result = simulate(Batch(), inst)
        chosen = select_disjoint_flags(result.instance, result.scheduler.flag_job_ids)
        total = sum(result.instance[j].known_length for j in chosen)
        assert total <= exact_optimal_span(inst) + 1e-9
