"""Unit tests for the schedule auditor."""

from __future__ import annotations

import pytest

from repro.core import Instance, Job, audit, simulate
from repro.schedulers import BatchPlus
from repro.workloads import poisson_instance


class TestAuditViolations:
    def test_clean_schedule(self, simple_instance):
        result = simulate(BatchPlus(), simple_instance)
        report = audit(simple_instance, result.schedule.starts())
        assert report.feasible
        assert report.span == pytest.approx(result.span)

    def test_missing_job(self, simple_instance):
        report = audit(simple_instance, {0: 0.0, 1: 2.0, 2: 2.0})
        assert not report.feasible
        assert any(f.code == "missing-job" and f.job_id == 3 for f in report.violations)

    def test_unknown_job(self, simple_instance):
        starts = {0: 0.0, 1: 2.0, 2: 2.0, 3: 7.0, 42: 1.0}
        report = audit(simple_instance, starts)
        assert any(f.code == "unknown-job" and f.job_id == 42 for f in report.violations)

    def test_starts_before_arrival(self, simple_instance):
        starts = {0: 0.0, 1: 0.0, 2: 2.0, 3: 7.0}  # J1 arrives at 1
        report = audit(simple_instance, starts)
        assert any(
            f.code == "starts-before-arrival" and f.job_id == 1
            for f in report.violations
        )

    def test_misses_deadline(self, simple_instance):
        starts = {0: 0.0, 1: 2.0, 2: 3.0, 3: 7.0}  # J2's deadline is 2
        report = audit(simple_instance, starts)
        assert any(
            f.code == "misses-deadline" and f.job_id == 2 for f in report.violations
        )

    def test_unresolved_length(self):
        inst = Instance([Job(0, 0.0, 2.0, None)])
        report = audit(inst, {0: 0.0})
        assert any(f.code == "unresolved-length" for f in report.violations)

    def test_multiple_violations_all_reported(self, simple_instance):
        starts = {0: 99.0, 1: 0.0, 2: 2.0}  # late, early, and one missing
        report = audit(simple_instance, starts)
        codes = {f.code for f in report.violations}
        assert {"misses-deadline", "starts-before-arrival", "missing-job"} <= codes

    def test_never_raises_on_garbage(self):
        inst = Instance([Job(0, 0.0, 1.0, 1.0)])
        report = audit(inst, {5: -3.0})
        assert not report.feasible


class TestAuditObservations:
    def test_idle_gap_detected(self, serial_instance):
        result = simulate(BatchPlus(), serial_instance)
        report = audit(serial_instance, result.schedule.starts())
        assert report.feasible
        assert any(f.code == "idle-gaps" for f in report.observations)
        assert report.idle_within_hull > 0

    def test_deadline_start_observation(self):
        inst = Instance.from_triples([(0, 3, 1)])
        report = audit(inst, {0: 3.0})
        assert any(f.code == "deadline-start" for f in report.observations)

    def test_peak_concurrency(self, batchable_instance):
        report = audit(batchable_instance, {0: 4.0, 1: 4.0, 2: 4.0, 3: 4.0})
        assert report.peak_concurrency == 4

    def test_render_mentions_feasibility(self, simple_instance):
        result = simulate(BatchPlus(), simple_instance)
        out = audit(simple_instance, result.schedule.starts()).render()
        assert "feasible: yes" in out
        bad = audit(simple_instance, {0: 99.0, 1: 2.0, 2: 2.0, 3: 7.0}).render()
        assert "feasible: NO" in bad and "misses-deadline" in bad

    def test_random_schedules_audit_clean(self):
        inst = poisson_instance(40, seed=6)
        result = simulate(BatchPlus(), inst)
        report = audit(inst, result.schedule.starts())
        assert report.feasible
        assert report.span == pytest.approx(result.span)


class TestAuditEdgeCases:
    def test_empty_instance_empty_starts(self):
        report = audit(Instance([]), {})
        assert report.feasible
        assert report.findings == []
        assert report.span is None
        assert report.peak_concurrency is None
        assert report.idle_within_hull is None

    def test_empty_instance_with_spurious_starts(self):
        report = audit(Instance([]), {0: 1.0, 1: 2.0})
        assert not report.feasible
        assert sorted(f.job_id for f in report.violations) == [0, 1]
        assert all(f.code == "unknown-job" for f in report.violations)
        assert report.span is None  # nothing placed

    def test_duplicate_job_ids_rejected_at_instance_level(self):
        # The auditor can never see duplicate ids: Instance refuses them,
        # which is the invariant audit() relies on for its id set algebra.
        from repro.core import InvalidInstanceError

        with pytest.raises(InvalidInstanceError, match="duplicate job id 7"):
            Instance([Job(7, 0.0, 1.0, 1.0), Job(7, 0.0, 2.0, 1.0)])

    def test_start_exactly_at_deadline_is_feasible_with_observation(self):
        inst = Instance.from_triples([(0, 3, 2)])
        report = audit(inst, {0: 3.0})
        assert report.feasible  # d(J) is the latest *permissible* start
        assert any(
            f.code == "deadline-start" and f.job_id == 0
            for f in report.observations
        )
        assert report.span == pytest.approx(2.0)

    def test_zero_laxity_deadline_start_not_flagged(self):
        # A rigid job (a == d) always starts "at its deadline"; flagging
        # it would be noise, so the observation requires laxity > 0.
        inst = Instance.from_triples([(1, 0, 2)])
        report = audit(inst, {0: 1.0})
        assert report.feasible
        assert not any(f.code == "deadline-start" for f in report.observations)

    def test_length_mismatch_flagged(self):
        inst = Instance([Job(0, 0.0, 2.0, 3.0)])
        report = audit(inst, {0: 0.0}, lengths={0: 2.5})
        assert not report.feasible
        assert any(
            f.code == "length-mismatch" and f.job_id == 0
            for f in report.violations
        )

    def test_length_match_within_tolerance_clean(self):
        inst = Instance([Job(0, 0.0, 2.0, 3.0)])
        report = audit(inst, {0: 0.0}, lengths={0: 3.0 + 1e-14})
        assert report.feasible

    def test_executed_lengths_resolve_adversarial_jobs(self):
        inst = Instance([Job(0, 0.0, 2.0, None)])
        report = audit(inst, {0: 1.0}, lengths={0: 4.0})
        assert report.feasible
        assert report.span == pytest.approx(4.0)
        assert not any(f.code == "unresolved-length" for f in report.findings)

    def test_unknown_length_record_flagged(self):
        inst = Instance([Job(0, 0.0, 2.0, 1.0)])
        report = audit(inst, {0: 0.0}, lengths={0: 1.0, 9: 5.0})
        assert any(
            f.code == "unknown-length-record" and f.job_id == 9
            for f in report.violations
        )
