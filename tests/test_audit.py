"""Unit tests for the schedule auditor."""

from __future__ import annotations

import pytest

from repro.core import Instance, Job, audit, simulate
from repro.schedulers import BatchPlus
from repro.workloads import poisson_instance


class TestAuditViolations:
    def test_clean_schedule(self, simple_instance):
        result = simulate(BatchPlus(), simple_instance)
        report = audit(simple_instance, result.schedule.starts())
        assert report.feasible
        assert report.span == pytest.approx(result.span)

    def test_missing_job(self, simple_instance):
        report = audit(simple_instance, {0: 0.0, 1: 2.0, 2: 2.0})
        assert not report.feasible
        assert any(f.code == "missing-job" and f.job_id == 3 for f in report.violations)

    def test_unknown_job(self, simple_instance):
        starts = {0: 0.0, 1: 2.0, 2: 2.0, 3: 7.0, 42: 1.0}
        report = audit(simple_instance, starts)
        assert any(f.code == "unknown-job" and f.job_id == 42 for f in report.violations)

    def test_starts_before_arrival(self, simple_instance):
        starts = {0: 0.0, 1: 0.0, 2: 2.0, 3: 7.0}  # J1 arrives at 1
        report = audit(simple_instance, starts)
        assert any(
            f.code == "starts-before-arrival" and f.job_id == 1
            for f in report.violations
        )

    def test_misses_deadline(self, simple_instance):
        starts = {0: 0.0, 1: 2.0, 2: 3.0, 3: 7.0}  # J2's deadline is 2
        report = audit(simple_instance, starts)
        assert any(
            f.code == "misses-deadline" and f.job_id == 2 for f in report.violations
        )

    def test_unresolved_length(self):
        inst = Instance([Job(0, 0.0, 2.0, None)])
        report = audit(inst, {0: 0.0})
        assert any(f.code == "unresolved-length" for f in report.violations)

    def test_multiple_violations_all_reported(self, simple_instance):
        starts = {0: 99.0, 1: 0.0, 2: 2.0}  # late, early, and one missing
        report = audit(simple_instance, starts)
        codes = {f.code for f in report.violations}
        assert {"misses-deadline", "starts-before-arrival", "missing-job"} <= codes

    def test_never_raises_on_garbage(self):
        inst = Instance([Job(0, 0.0, 1.0, 1.0)])
        report = audit(inst, {5: -3.0})
        assert not report.feasible


class TestAuditObservations:
    def test_idle_gap_detected(self, serial_instance):
        result = simulate(BatchPlus(), serial_instance)
        report = audit(serial_instance, result.schedule.starts())
        assert report.feasible
        assert any(f.code == "idle-gaps" for f in report.observations)
        assert report.idle_within_hull > 0

    def test_deadline_start_observation(self):
        inst = Instance.from_triples([(0, 3, 1)])
        report = audit(inst, {0: 3.0})
        assert any(f.code == "deadline-start" for f in report.observations)

    def test_peak_concurrency(self, batchable_instance):
        report = audit(batchable_instance, {0: 4.0, 1: 4.0, 2: 4.0, 3: 4.0})
        assert report.peak_concurrency == 4

    def test_render_mentions_feasibility(self, simple_instance):
        result = simulate(BatchPlus(), simple_instance)
        out = audit(simple_instance, result.schedule.starts()).render()
        assert "feasible: yes" in out
        bad = audit(simple_instance, {0: 99.0, 1: 2.0, 2: 2.0, 3: 7.0}).render()
        assert "feasible: NO" in bad and "misses-deadline" in bad

    def test_random_schedules_audit_clean(self):
        inst = poisson_instance(40, seed=6)
        result = simulate(BatchPlus(), inst)
        report = audit(inst, result.schedule.starts())
        assert report.feasible
        assert report.span == pytest.approx(result.span)
