"""Recorder invariants: NullRecorder identity, TraceRecorder semantics,
ambient arming, and the REPRO_STRICT + recorder interplay."""

from __future__ import annotations

import pytest

from repro.core import ClairvoyanceError, Instance
from repro.core.engine import Simulator, simulate
from repro.obs import (
    DEFAULT_BUCKETS,
    NULL_RECORDER,
    MetricsRegistry,
    NullRecorder,
    Recorder,
    TraceRecorder,
    get_recorder,
    reset_recorder,
    set_recorder,
    trace_dir,
    trace_enabled,
)
from repro.schedulers import Batch, BatchPlus, Eager
from repro.schedulers.base import OnlineScheduler


@pytest.fixture(autouse=True)
def _isolated_ambient(monkeypatch):
    """Each test runs with a disarmed ambient recorder and a clean env."""
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    previous = set_recorder(NULL_RECORDER)
    yield
    set_recorder(previous)


class TestNullRecorderIdentity:
    """Running with a NullRecorder is indistinguishable from no recorder."""

    def test_results_identical_across_disarmed_recorders(self, simple_instance):
        outputs = []
        for rec in (None, NullRecorder(), NULL_RECORDER):
            result = simulate(
                BatchPlus(), simple_instance, trace=True, recorder=rec
            )
            outputs.append(
                (
                    result.span,
                    result.events_processed,
                    sorted(result.schedule.starts().items()),
                    [
                        (e.time, e.kind, e.job_id, e.detail)
                        for e in (result.trace or [])
                    ],
                )
            )
        assert outputs[0] == outputs[1] == outputs[2]

    def test_disarmed_run_exposes_no_recorder(self, simple_instance):
        result = simulate(Batch(), simple_instance, recorder=NullRecorder())
        assert result.recorder is None

    def test_null_recorder_protocol_is_all_noops(self):
        rec = NullRecorder()
        assert rec.enabled is False
        rec.instant("x", a=1)
        rec.decision("batch-start", job=1, t=0.0, scheduler="batch")
        rec.counter_add("c")
        rec.gauge_set("g", 1.0)
        rec.histogram_observe("h", 0.5)
        with rec.span("s", k=1):
            pass
        assert rec.metrics_snapshot() is None
        rec.merge_metrics({"counters": {"c": 1.0}})  # still a no-op
        assert rec.metrics_snapshot() is None

    def test_scheduler_obs_stays_null_when_disarmed(self, simple_instance):
        sched = Batch()
        simulate(sched, simple_instance, recorder=NullRecorder())
        assert sched.obs is NULL_RECORDER


class TestTraceRecorder:
    def test_armed_run_returns_recorder_with_records(self, simple_instance):
        rec = TraceRecorder()
        result = simulate(Batch(), simple_instance, recorder=rec)
        assert result.recorder is rec
        assert len(rec.records) > 0
        names = {r.name for r in rec.records}
        assert "engine.release" in names
        assert "engine.start" in names
        assert "engine.completion" in names
        assert "engine.run_end" in names
        assert rec.metrics.counters["engine.events_processed"] == float(
            result.events_processed
        )
        assert rec.metrics.counters["engine.jobs"] == float(len(simple_instance))

    def test_armed_run_matches_disarmed_outputs(self, simple_instance):
        """Observability must never change the simulation itself."""
        plain = simulate(BatchPlus(), simple_instance)
        armed = simulate(BatchPlus(), simple_instance, recorder=TraceRecorder())
        assert armed.span == plain.span
        assert armed.events_processed == plain.events_processed
        assert armed.schedule.starts() == plain.schedule.starts()

    def test_span_emits_begin_end_and_histogram(self):
        rec = TraceRecorder()
        with rec.span("work", tag=1):
            pass
        kinds = [r.kind for r in rec.records]
        assert kinds == ["span_begin", "span_end"]
        assert rec.records[0].attrs == {"tag": 1}
        assert rec.records[1].attrs["wall_s"] >= 0.0
        assert rec.metrics.histograms["span.work.wall_s"].count == 1

    def test_decision_records_and_counts(self):
        rec = TraceRecorder()
        rec.decision("deadline-flag", job=3, t=2.5, scheduler="batch", deadline=2.5)
        (record,) = rec.records
        assert record.kind == "decision"
        assert record.name == "deadline-flag"
        assert record.attrs["job"] == 3
        assert record.attrs["t"] == 2.5
        assert record.attrs["scheduler"] == "batch"
        assert record.attrs["deadline"] == 2.5
        assert rec.metrics.counters["decision.deadline-flag"] == 1.0

    def test_max_records_cap_drops_and_counts(self):
        rec = TraceRecorder(max_records=5)
        for i in range(12):
            rec.instant("e", i=i)
        assert len(rec.records) == 5
        assert rec.metrics.counters["obs.records_dropped"] == 7.0
        # metrics keep aggregating past the cap
        rec.counter_add("still.counting")
        assert rec.metrics.counters["still.counting"] == 1.0

    def test_snapshot_reset_and_merge_roundtrip(self):
        rec = TraceRecorder()
        rec.counter_add("c", 2.0)
        rec.gauge_set("g", 7.0)
        rec.histogram_observe("h", 0.5)
        snap = rec.metrics_snapshot(reset=True)
        assert snap is not None
        assert rec.metrics_snapshot() is None  # reset emptied the registry
        other = TraceRecorder()
        other.counter_add("c", 1.0)
        other.merge_metrics(snap)
        assert other.metrics.counters["c"] == 3.0
        assert other.metrics.gauges["g"] == 7.0
        assert other.metrics.histograms["h"].count == 1

    def test_len_counts_records(self):
        rec = TraceRecorder()
        rec.instant("a")
        rec.instant("b")
        assert len(rec) == 2


class TestMetricsRegistry:
    def test_histogram_bucketing_and_merge(self):
        reg = MetricsRegistry()
        for v in (1e-7, 0.5, 100.0):
            reg.histogram_observe("h", v)
        hist = reg.histograms["h"]
        assert hist.count == 3
        assert hist.vmin == 1e-7 and hist.vmax == 100.0
        assert sum(hist.counts) == 3
        assert hist.counts[-1] == 1  # 100.0 overflows the last edge
        other = MetricsRegistry.from_dict(reg.to_dict())
        other.merge(reg)
        assert other.histograms["h"].count == 6

    def test_merge_rejects_mismatched_edges(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.histogram_observe("h", 1.0)
        b.histogram_observe("h", 1.0, edges=(1.0, 2.0))
        with pytest.raises(ValueError, match="different bucket edges"):
            a.merge(b)

    def test_edges_must_strictly_increase(self):
        from repro.obs import Histogram

        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram((1.0, 1.0, 2.0))

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))


class TestAmbientRuntime:
    def test_default_is_null(self):
        assert get_recorder() is NULL_RECORDER
        assert get_recorder().enabled is False

    def test_set_recorder_returns_previous(self):
        rec = TraceRecorder()
        prev = set_recorder(rec)
        assert prev is NULL_RECORDER
        assert get_recorder() is rec
        assert set_recorder(prev) is rec

    def test_reset_rearms_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        reset_recorder()
        assert isinstance(get_recorder(), TraceRecorder)
        monkeypatch.delenv("REPRO_TRACE")
        reset_recorder()
        assert get_recorder() is NULL_RECORDER

    @pytest.mark.parametrize("value", ["", "0", "false", "off", "OFF"])
    def test_falsey_env_values_stay_disarmed(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TRACE", value)
        assert trace_enabled() is False

    def test_trace_dir_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_DIR", raising=False)
        assert trace_dir() == "."
        monkeypatch.setenv("REPRO_TRACE_DIR", "/tmp/traces")
        assert trace_dir() == "/tmp/traces"

    def test_simulator_prefers_explicit_over_ambient(self, simple_instance):
        ambient = TraceRecorder()
        set_recorder(ambient)
        explicit = TraceRecorder()
        result = simulate(Batch(), simple_instance, recorder=explicit)
        assert result.recorder is explicit
        assert len(ambient.records) == 0

    def test_simulator_uses_armed_ambient(self, simple_instance):
        ambient = TraceRecorder()
        set_recorder(ambient)
        result = simulate(Batch(), simple_instance)
        assert result.recorder is ambient
        assert len(ambient.records) > 0


class _PeekLength(OnlineScheduler):
    """Declares non-clairvoyance, then reads ``job.length`` anyway."""

    name = "peek-length"
    requires_clairvoyance = False

    def on_arrival(self, ctx, job):
        job.length  # strict mode must reject this pre-completion read
        ctx.start(job.id)


class TestStrictGuardInterplay:
    """ClairvoyanceGuard violations surface as trace records too."""

    def test_guard_emits_instant_and_counter(self):
        inst = Instance.from_triples([(0, 2, 1)], name="one")
        rec = TraceRecorder()
        sim = Simulator(
            _PeekLength(), instance=inst, clairvoyant=True, strict=True,
            recorder=rec,
        )
        with pytest.raises(ClairvoyanceError, match="strict mode"):
            sim.run()
        guard_records = [
            r for r in rec.records if r.name == "engine.clairvoyance_guard"
        ]
        assert len(guard_records) == 1
        assert guard_records[0].attrs["job"] == 0
        assert guard_records[0].attrs["scheduler"] == "_PeekLength"
        assert rec.metrics.counters["engine.clairvoyance_guard.reads"] == 1.0
        assert sim.strict_guard is not None
        assert sim.strict_guard.accesses == [(0, 0.0)]

    def test_guard_silent_when_disarmed(self):
        inst = Instance.from_triples([(0, 2, 1)], name="one")
        sim = Simulator(
            _PeekLength(), instance=inst, clairvoyant=True, strict=True,
            recorder=NullRecorder(),
        )
        with pytest.raises(ClairvoyanceError):
            sim.run()
        assert sim.strict_guard is not None
        assert sim.strict_guard.accesses == [(0, 0.0)]

    def test_compliant_scheduler_emits_no_guard_records(self, simple_instance):
        rec = TraceRecorder()
        simulate(Eager(), simple_instance, strict=True, recorder=rec)
        assert not any(
            r.name == "engine.clairvoyance_guard" for r in rec.records
        )
        assert "engine.clairvoyance_guard.reads" not in rec.metrics.counters


class TestRecorderProtocol:
    def test_base_recorder_is_contractually_disabled(self):
        rec = Recorder()
        assert rec.enabled is False
        with rec.span("s"):
            rec.instant("x")
        assert rec.metrics_snapshot() is None
