"""Unit tests for the exact branch-and-bound offline solver."""

from __future__ import annotations

import pytest

from repro.core import Instance, Job, SolverError
from repro.offline import (
    bruteforce_optimal_span,
    chain_lower_bound,
    exact_optimal_schedule,
    exact_optimal_span,
)
from repro.workloads import small_integral_instance


class TestExactSolver:
    def test_empty_instance(self):
        assert exact_optimal_span(Instance([])) == 0.0

    def test_single_job(self):
        inst = Instance.from_triples([(0, 5, 3)])
        assert exact_optimal_span(inst) == 3.0

    def test_two_overlappable_jobs(self):
        # both can run [5, 8): optimum is the longer job's length.
        inst = Instance.from_triples([(0, 5, 3), (2, 3, 2)])
        assert exact_optimal_span(inst) == 3.0

    def test_two_forced_serial_jobs(self):
        inst = Instance.from_triples([(0, 0, 2), (5, 0, 2)])
        assert exact_optimal_span(inst) == 4.0

    def test_nesting_beats_greedy(self):
        """Optimal requires placing a short job inside a long one's run."""
        inst = Instance.from_triples([(0, 0, 10), (3, 2, 2)])
        assert exact_optimal_span(inst) == 10.0

    def test_witness_schedule_achieves_span(self, simple_instance):
        res = exact_optimal_schedule(simple_instance)
        res.schedule.validate()
        assert res.schedule.span == pytest.approx(res.span)

    def test_matches_bruteforce_on_fixtures(self, simple_instance, batchable_instance):
        for inst in (simple_instance, batchable_instance):
            assert exact_optimal_span(inst) == pytest.approx(
                bruteforce_optimal_span(inst)
            )

    @pytest.mark.parametrize("seed", range(15))
    def test_matches_bruteforce_random(self, seed):
        inst = small_integral_instance(5, seed=seed)
        assert exact_optimal_span(inst) == pytest.approx(
            bruteforce_optimal_span(inst)
        )

    @pytest.mark.parametrize("seed", range(10))
    def test_at_least_chain_lower_bound(self, seed):
        inst = small_integral_instance(7, seed=seed)
        assert exact_optimal_span(inst) >= chain_lower_bound(inst) - 1e-9

    def test_rational_rescaling(self):
        """Non-integral but rational instances are rescaled exactly."""
        inst = Instance(
            [Job(0, 0.0, 2.5, 1.5), Job(1, 0.5, 3.0, 1.0)], name="halves"
        )
        span = exact_optimal_span(inst)
        # both can overlap at [2.5, 4.0): J0 at 2.5 runs to 4.0, J1 at 2.5
        # runs to 3.5 → span 1.5.
        assert span == pytest.approx(1.5)

    def test_irrational_instance_rejected(self):
        import math

        inst = Instance([Job(0, 0.0, math.pi, 1.0)], name="pi")
        with pytest.raises(SolverError):
            exact_optimal_span(inst)

    def test_node_budget_enforced(self):
        inst = small_integral_instance(10, seed=0, max_arrival=40, max_laxity=20)
        with pytest.raises(SolverError):
            exact_optimal_span(inst, node_budget=3)

    def test_solver_stats_exposed(self, simple_instance):
        res = exact_optimal_schedule(simple_instance)
        assert res.nodes_explored >= 1
        assert res.memo_hits >= 0


class TestBruteforce:
    def test_rejects_non_integral(self):
        inst = Instance.from_triples([(0, 1, 1.5)])
        with pytest.raises(SolverError):
            bruteforce_optimal_span(inst)

    def test_rejects_huge_search_space(self):
        inst = Instance.from_triples(
            [(0, 1000, 1) for _ in range(10)], name="huge"
        )
        with pytest.raises(SolverError):
            bruteforce_optimal_span(inst)

    def test_empty(self):
        assert bruteforce_optimal_span(Instance([])) == 0.0
