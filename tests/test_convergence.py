"""Unit tests for convergent-sequence limit extrapolation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import fit_limit


class TestFitLimit:
    def test_exact_model_recovered(self):
        ms = [1, 2, 4, 8, 16, 32]
        ratios = [5.0 - 3.0 / (m + 2.0) for m in ms]
        fit = fit_limit(ms, ratios)
        assert fit.limit == pytest.approx(5.0, abs=1e-8)
        assert fit.residual < 1e-8
        assert fit.consistent_with(5.0)

    def test_batch_family_limit(self):
        """The closed-form Batch-family ratio extrapolates to its true
        limit 2μ/(1+ε) (not 2μ — the ε gap is real and the fit sees it)."""
        mu, eps = 5.0, 1e-3
        ms = [1, 4, 16, 64, 256]
        ratios = [2 * m * mu / (m * (1 + eps) + mu) for m in ms]
        fit = fit_limit(ms, ratios)
        assert fit.limit == pytest.approx(2 * mu / (1 + eps), rel=1e-9)
        assert fit.consistent_with(2 * mu / (1 + eps))
        # and it can resolve that this is NOT exactly 2μ
        assert not fit.consistent_with(2 * mu)

    def test_batchplus_family_limit(self):
        mu, eps = 5.0, 1e-3
        ms = [1, 4, 16, 64, 256]
        ratios = [m * (mu + 1 - eps) / (m + mu) for m in ms]
        fit = fit_limit(ms, ratios)
        assert fit.limit == pytest.approx(mu + 1 - eps, rel=1e-9)

    def test_noisy_sequence_tolerated(self):
        rng = np.random.default_rng(0)
        ms = [2.0**k for k in range(2, 10)]
        ratios = [3.0 - 1.0 / m + rng.normal(0, 1e-4) for m in ms]
        fit = fit_limit(ms, ratios)
        assert fit.limit == pytest.approx(3.0, abs=0.01)

    def test_requires_three_points(self):
        with pytest.raises(ValueError):
            fit_limit([1, 2], [1.0, 2.0])

    def test_positive_m_required(self):
        with pytest.raises(ValueError):
            fit_limit([0, 1, 2], [1.0, 2.0, 3.0])

    def test_phi_convergence(self):
        """The §4.1 forced-ratio sequence nφ/(φ+n-1) extrapolates to φ."""
        import math

        phi = (1 + math.sqrt(5)) / 2
        ns = [2, 8, 32, 128, 512]
        ratios = [n * phi / (phi + n - 1) for n in ns]
        fit = fit_limit(ns, ratios)
        assert fit.limit == pytest.approx(phi, rel=1e-9)
