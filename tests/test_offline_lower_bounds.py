"""Unit tests for the chain lower bound and the Fenwick prefix-max tree."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Instance
from repro.offline import chain_lower_bound, span_lower_bound
from repro.offline.lower_bounds import FenwickMax


class TestFenwickMax:
    def test_empty_query(self):
        t = FenwickMax(5)
        assert t.query(4) == 0.0

    def test_update_and_prefix_query(self):
        t = FenwickMax(10)
        t.update(3, 5.0)
        t.update(7, 2.0)
        assert t.query(2) == 0.0
        assert t.query(3) == 5.0
        assert t.query(9) == 5.0
        t.update(8, 9.0)
        assert t.query(9) == 9.0
        assert t.query(7) == 5.0

    def test_values_never_decrease(self):
        t = FenwickMax(4)
        t.update(1, 5.0)
        t.update(1, 3.0)  # lower value ignored
        assert t.query(1) == 5.0

    def test_out_of_range(self):
        t = FenwickMax(3)
        with pytest.raises(IndexError):
            t.update(3, 1.0)
        with pytest.raises(IndexError):
            t.update(-1, 1.0)
        assert t.query(99) == 0.0  # clamped

    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        n = 200
        t = FenwickMax(n)
        naive = np.zeros(n)
        for _ in range(500):
            i = int(rng.integers(0, n))
            v = float(rng.uniform(0, 100))
            t.update(i, v)
            naive[i] = max(naive[i], v)
            q = int(rng.integers(0, n))
            assert t.query(q) == pytest.approx(naive[: q + 1].max(initial=0.0))


class TestChainLowerBound:
    def test_empty(self):
        assert chain_lower_bound(Instance([])) == 0.0

    def test_single_job(self):
        inst = Instance.from_triples([(0, 2, 3)])
        assert chain_lower_bound(inst) == 3.0

    def test_serial_chain_sums(self, serial_instance):
        # jobs at 0/4/8 with d+p = 3/7/11: each next arrives after the
        # previous latest completion → full chain.
        assert chain_lower_bound(serial_instance) == pytest.approx(6.0)

    def test_parallel_jobs_take_max(self, batchable_instance):
        # all windows overlap heavily: no 2-chain exists; bound is max p.
        assert chain_lower_bound(batchable_instance) == pytest.approx(3.0)

    def test_picks_heaviest_chain(self):
        # Two chains: {J0 (p=1) → J2 (p=1)} and {J1 (p=5)}, where J2
        # arrives after J0's latest completion but overlaps J1's window.
        inst = Instance.from_triples(
            [(0, 0, 1), (0, 20, 5), (2, 0, 1)], name="choice"
        )
        assert chain_lower_bound(inst) == pytest.approx(5.0)

    def test_matches_naive_dp(self):
        """Cross-check the Fenwick sweep against an O(n²) reference."""
        from repro.workloads import small_integral_instance

        for seed in range(20):
            inst = small_integral_instance(12, seed=seed, max_arrival=20)
            jobs = inst.sorted_by_arrival()
            best = {}
            answer = 0.0
            for j in jobs:
                b = j.known_length + max(
                    (
                        best[i.id]
                        for i in jobs
                        if i.deadline + i.known_length <= j.arrival
                    ),
                    default=0.0,
                )
                best[j.id] = b
                answer = max(answer, b)
            assert chain_lower_bound(inst) == pytest.approx(answer)


class TestSpanLowerBound:
    def test_empty(self):
        assert span_lower_bound(Instance([])) == 0.0

    def test_at_least_max_length(self):
        inst = Instance.from_triples([(0, 0, 7), (0, 0, 2)])
        assert span_lower_bound(inst) >= 7.0

    def test_sound_against_every_scheduler(self, simple_instance):
        from repro.core import simulate
        from repro.schedulers import SCHEDULERS, make_scheduler

        lb = span_lower_bound(simple_instance)
        for name in SCHEDULERS:
            sched = make_scheduler(name)
            result = simulate(
                sched, simple_instance, clairvoyant=type(sched).requires_clairvoyance
            )
            assert result.span >= lb - 1e-9


class TestMandatoryLowerBound:
    def test_rigid_jobs_full_mandatory(self):
        """Laxity 0: the mandatory interval is the whole run, so the
        bound equals every schedule's span exactly."""
        from repro.offline import mandatory_lower_bound
        from repro.workloads import rigid_instance
        from repro.core import simulate
        from repro.schedulers import Eager

        inst = rigid_instance(30, seed=0)
        result = simulate(Eager(), inst)
        assert mandatory_lower_bound(inst) == pytest.approx(result.span)

    def test_high_laxity_vacuous(self):
        from repro.offline import mandatory_lower_bound

        inst = Instance.from_triples([(0, 10, 2), (1, 8, 3)])
        assert mandatory_lower_bound(inst) == 0.0

    def test_partial_laxity(self):
        from repro.offline import mandatory_lower_bound

        # laxity 1 < p=3 → mandatory [1, 3): measure 2.
        inst = Instance.from_triples([(0, 1, 3)])
        assert mandatory_lower_bound(inst) == pytest.approx(2.0)

    def test_overlapping_mandatory_intervals_merged(self):
        from repro.offline import mandatory_lower_bound

        inst = Instance.from_triples([(0, 1, 3), (1, 1, 3)])
        # mandatory parts [1,3) and [2,4) → union [1,4) measure 3
        assert mandatory_lower_bound(inst) == pytest.approx(3.0)

    @pytest.mark.parametrize("seed", range(12))
    def test_never_exceeds_exact_opt(self, seed):
        from repro.offline import exact_optimal_span, mandatory_lower_bound
        from repro.workloads import small_integral_instance

        inst = small_integral_instance(7, seed=seed, max_laxity=2)
        assert mandatory_lower_bound(inst) <= exact_optimal_span(inst) + 1e-9

    def test_can_dominate_chain_bound(self):
        """On a laxity-poor burst the mandatory bound beats the chain
        bound (which can't chain overlapping windows)."""
        from repro.offline import chain_lower_bound, mandatory_lower_bound

        # three rigid unit jobs 0.4 apart: every window pair overlaps so
        # no 2-chain exists (chain LB = 1), while the mandatory union is
        # [0, 1.8) with measure 1.8.
        inst = Instance.from_triples(
            [(0, 0, 1), (0.4, 0, 1), (0.8, 0, 1)], name="burst"
        )
        assert chain_lower_bound(inst) == pytest.approx(1.0)
        assert mandatory_lower_bound(inst) == pytest.approx(1.8)

    @pytest.mark.parametrize("seed", range(8))
    def test_span_lower_bound_combines(self, seed):
        from repro.offline import (
            chain_lower_bound,
            mandatory_lower_bound,
            span_lower_bound,
        )
        from repro.workloads import small_integral_instance

        inst = small_integral_instance(8, seed=seed, max_laxity=2)
        assert span_lower_bound(inst) == pytest.approx(
            max(
                chain_lower_bound(inst),
                mandatory_lower_bound(inst),
                inst.max_length,
            )
        )
