"""Tests for the ``REPRO_PARITY=1`` lockstep runtime twin (RL013's oracle)
and the :class:`~repro.core.columnar.TableJobView` strict-mode guard.

The lockstep oracle shadow-runs every columnar simulation on the object
core and diffs the outcomes; these tests cover the clean path (several
schedulers, with and without traces), divergence detection (a
monkeypatched columnar drift must raise :class:`CoreParityError`), error
agreement (both cores raising the same type re-raises it, not a parity
error), and the env-var arming.  The guard half exercises the lazy
``TableJobView`` under ``REPRO_STRICT=1``: pre-completion length reads
through the view must raise on both the fast and the recorder-armed
loops, post-completion reads must not.
"""

from __future__ import annotations

import pytest

from repro.core import (
    ClairvoyanceError,
    DeadlineMissedError,
    Instance,
    Simulator,
)
from repro.core.errors import CoreParityError
from repro.core.parity import diff_outcomes, parity_mode_enabled, snapshot
from repro.obs import TraceRecorder
from repro.schedulers import OnlineScheduler, make_scheduler

PARITY_SCHEDULERS = ["batch", "batch+", "lazy", "eager", "epoch-batch"]


def small_instance() -> Instance:
    # Overlapping windows and queueing so the two cores have real work
    # to agree on: (arrival, laxity, length) triples.
    return Instance.from_triples(
        [
            (0.0, 2.0, 1.0),
            (0.0, 2.0, 3.0),
            (0.5, 1.0, 0.5),
            (2.0, 3.0, 2.0),
            (2.0, 0.5, 1.0),
            (5.0, 1.0, 0.25),
        ],
        name="parity-smoke",
    )


class TestParityModeEnabled:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARITY", raising=False)
        assert not parity_mode_enabled()

    @pytest.mark.parametrize("value", ["", "0", "false", "off", " OFF "])
    def test_disabling_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_PARITY", value)
        assert not parity_mode_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "on", "yes"])
    def test_enabling_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_PARITY", value)
        assert parity_mode_enabled()


class TestLockstepCleanRuns:
    @pytest.mark.parametrize("name", PARITY_SCHEDULERS)
    def test_lockstep_matches_plain_columnar(self, name, monkeypatch):
        inst = small_instance()
        monkeypatch.delenv("REPRO_PARITY", raising=False)
        plain = Simulator(
            make_scheduler(name), instance=inst, core="columnar"
        ).run()
        monkeypatch.setenv("REPRO_PARITY", "1")
        locked = Simulator(
            make_scheduler(name), instance=inst, core="columnar"
        ).run()
        assert diff_outcomes(snapshot(plain), snapshot(locked)) == []

    def test_lockstep_with_trace_and_strict(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARITY", "1")
        result = Simulator(
            make_scheduler("batch"),
            instance=small_instance(),
            trace=True,
            strict=True,
            core="columnar",
        ).run()
        assert result.trace is not None and len(result.trace) > 0
        assert result.schedule.span > 0

    def test_object_core_unaffected(self, monkeypatch):
        # The hook lives on the columnar dispatch path only.
        monkeypatch.setenv("REPRO_PARITY", "1")
        result = Simulator(
            make_scheduler("lazy"), instance=small_instance(), core="object"
        ).run()
        assert result.schedule.span > 0

    def test_scheduler_not_shared_with_shadow(self, monkeypatch):
        # The shadow must run a deep copy: the caller's scheduler sees
        # exactly one run's worth of state, not two.
        monkeypatch.setenv("REPRO_PARITY", "1")
        sched = make_scheduler("batch")
        Simulator(sched, instance=small_instance(), core="columnar").run()
        started = sum(
            len(r.batch_job_ids) + len(r.open_started_job_ids)
            for r in sched.iterations
        )
        assert started == len(small_instance())


class TestLockstepDivergence:
    def test_columnar_drift_raises(self, monkeypatch):
        import repro.core.columnar as columnar

        monkeypatch.setenv("REPRO_PARITY", "1")
        orig = columnar.ColumnarCore._start_batch

        def drifting(self, *args, **kwargs):
            out = orig(self, *args, **kwargs)
            self._table.start[0] = 0.125
            self._table.start_list[0] = 0.125
            return out

        monkeypatch.setattr(columnar.ColumnarCore, "_start_batch", drifting)
        with pytest.raises(CoreParityError) as exc:
            Simulator(
                make_scheduler("batch"),
                instance=small_instance(),
                core="columnar",
            ).run()
        assert "diverged" in str(exc.value)
        assert "job 0" in str(exc.value)

    def test_shared_error_type_reraised(self, monkeypatch):
        class NeverStarts(OnlineScheduler):
            name = "test-never-starts"
            requires_clairvoyance = False

            def on_deadline(self, ctx, job):
                pass  # let the deadline pass: both cores must reject

        monkeypatch.setenv("REPRO_PARITY", "1")
        with pytest.raises(DeadlineMissedError):
            Simulator(
                NeverStarts(), instance=small_instance(), core="columnar"
            ).run()

    def test_one_sided_error_is_parity_error(self, monkeypatch):
        import repro.core.columnar as columnar

        monkeypatch.setenv("REPRO_PARITY", "1")

        def exploding(self, *args, **kwargs):
            from repro.core.errors import SimulationError

            raise SimulationError("columnar-only failure")

        monkeypatch.setattr(columnar.ColumnarCore, "_start_batch", exploding)
        with pytest.raises(CoreParityError) as exc:
            Simulator(
                make_scheduler("batch"),
                instance=small_instance(),
                core="columnar",
            ).run()
        assert "only the columnar core raised" in str(exc.value)


class TestSnapshotDiff:
    def test_clean_runs_have_empty_diff(self):
        inst = small_instance()
        a = Simulator(make_scheduler("batch"), instance=inst, core="object").run()
        b = Simulator(
            make_scheduler("batch"), instance=inst, core="columnar"
        ).run()
        assert diff_outcomes(snapshot(a), snapshot(b)) == []

    def test_diff_reports_each_divergence_kind(self):
        base = {
            "jobs": {0: (1.0, 2.0), 1: (3.0, 1.0)},
            "span": 3.0,
            "events": 10,
            "trace": None,
        }
        other = {
            "jobs": {0: (1.5, 2.0), 2: (0.0, 1.0)},
            "span": 4.0,
            "events": 11,
            "trace": None,
        }
        out = "\n".join(diff_outcomes(base, other))
        assert "job 0" in out
        assert "job 1" in out and "object core only" in out
        assert "job 2" in out and "columnar core only" in out
        assert "span" in out
        assert "events processed" in out

    def test_trace_divergence_detected(self):
        a = {"jobs": {}, "span": 0.0, "events": 0, "trace": [(0.0, "arrival", 1, "")]}
        b = {"jobs": {}, "span": 0.0, "events": 0, "trace": [(0.0, "arrival", 2, "")]}
        assert any("trace[0]" in d for d in diff_outcomes(a, b))


# ---------------------------------------------------------------------------
# TableJobView strict-mode guard (satellite: REPRO_STRICT=1 edge cases)
# ---------------------------------------------------------------------------


class PeekOnArrival(OnlineScheduler):
    """Reads ``job.length`` through the lazy view before completion."""

    name = "test-peek-arrival"
    requires_clairvoyance = False

    def on_arrival(self, ctx, job):
        _ = job.length


class PeekAfterCompletion(OnlineScheduler):
    """Reads ``job.length`` only where it is legal: after completion."""

    name = "test-peek-completion"
    requires_clairvoyance = False

    def __init__(self) -> None:
        super().__init__()
        self.seen: list[tuple[int, float]] = []

    def on_arrival(self, ctx, job):
        assert job.length_if_known is None  # hidden, but not a guard trip
        ctx.start(job.id)

    def on_completion(self, ctx, job):
        self.seen.append((job.id, job.length))


class TestTableViewStrictGuard:
    def _run_strict(
        self, scheduler, monkeypatch, *, recorder=None, clairvoyant=False
    ):
        monkeypatch.setenv("REPRO_STRICT", "1")
        return Simulator(
            scheduler,
            instance=small_instance(),
            clairvoyant=clairvoyant,
            recorder=recorder,
            core="columnar",
        ).run()

    def test_precompletion_read_raises_fast_loop(self, monkeypatch):
        # Non-clairvoyant run: the length is simply hidden, so the view's
        # visibility check fires before the guard is even consulted.
        with pytest.raises(ClairvoyanceError):
            self._run_strict(PeekOnArrival(), monkeypatch)

    def test_precompletion_read_raises_armed_loop(self, monkeypatch):
        # Clairvoyant run, non-clairvoyant scheduler: lengths are visible
        # in the table, so only the strict guard stands between the
        # scheduler and the oracle.  A live recorder also routes the run
        # through the scalar mirror loop — the guard must fire there too,
        # and its trip must land in the recorder.
        rec = TraceRecorder()
        with pytest.raises(ClairvoyanceError):
            self._run_strict(
                PeekOnArrival(), monkeypatch, recorder=rec, clairvoyant=True
            )
        records = [
            r for r in rec.records if r.name == "engine.clairvoyance_guard"
        ]
        assert records, "guard trip must be visible in the armed recorder"

    def test_guard_survives_aborted_run(self, monkeypatch):
        monkeypatch.setenv("REPRO_STRICT", "1")
        sim = Simulator(
            PeekOnArrival(),
            instance=small_instance(),
            clairvoyant=True,
            core="columnar",
        )
        with pytest.raises(ClairvoyanceError):
            sim.run()
        assert sim.strict_guard is not None
        assert sim.strict_guard.accesses  # (job_id, time) of the read

    def test_postcompletion_read_allowed(self, monkeypatch):
        sched = PeekAfterCompletion()
        result = self._run_strict(sched, monkeypatch)
        lengths = {job.id: job.length for job in result.instance.jobs}
        assert sched.seen  # every completion surfaced a visible length
        for job_id, length in sched.seen:
            assert length == lengths[job_id]

    def test_length_if_known_never_trips_guard(self, monkeypatch):
        # PeekAfterCompletion calls length_if_known on every arrival; the
        # run completing proves the lazy view treats it as a non-read.
        result = self._run_strict(PeekAfterCompletion(), monkeypatch)
        assert result.schedule.span > 0
