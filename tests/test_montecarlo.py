"""Unit tests for the Monte-Carlo estimation harness."""

from __future__ import annotations

import pytest

from repro.adversaries import ClairvoyantLowerBoundAdversary
from repro.analysis import (
    TrialSummary,
    estimate_adversarial_ratio,
    estimate_expected_ratio,
)
from repro.offline import exact_optimal_span
from repro.schedulers import Eager, RandomStart
from repro.workloads import poisson_instance, small_integral_instance


class TestTrialSummary:
    def test_statistics(self):
        s = TrialSummary(ratios=(1.0, 2.0, 3.0))
        assert s.n == 3
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(1.0)
        assert s.best == 1.0 and s.worst == 3.0
        lo, hi = s.confidence_interval()
        assert lo < s.mean < hi

    def test_single_trial(self):
        s = TrialSummary(ratios=(1.5,))
        assert s.std == 0.0
        assert s.confidence_interval() == (1.5, 1.5)


class TestEstimateExpectedRatio:
    def test_deterministic_scheduler_zero_variance(self):
        inst = small_integral_instance(6, seed=0)
        opt = exact_optimal_span(inst)
        s = estimate_expected_ratio(lambda seed: Eager(), inst, opt, trials=5)
        assert s.std == 0.0
        assert s.mean >= 1.0 - 1e-9

    def test_randomized_scheduler_has_variance(self):
        inst = poisson_instance(40, seed=1)
        s = estimate_expected_ratio(
            lambda seed: RandomStart(seed=seed), inst, 1.0, trials=10
        )
        assert s.std > 0.0
        assert s.n == 10

    def test_reference_validation(self):
        inst = small_integral_instance(4, seed=0)
        with pytest.raises(ValueError):
            estimate_expected_ratio(lambda s: Eager(), inst, 0.0)

    def test_ratios_at_least_one_vs_exact_opt(self):
        inst = small_integral_instance(6, seed=2)
        opt = exact_optimal_span(inst)
        s = estimate_expected_ratio(
            lambda seed: RandomStart(seed=seed), inst, opt, trials=15
        )
        assert s.best >= 1.0 - 1e-9


class TestEstimateAdversarialRatio:
    def test_fresh_adversary_per_trial(self):
        s = estimate_adversarial_ratio(
            lambda seed: RandomStart(seed=seed),
            lambda: ClairvoyantLowerBoundAdversary(5),
            trials=8,
            clairvoyant=False,
        )
        assert s.n == 8
        assert s.best >= 1.0 - 1e-9

    def test_deterministic_scheduler_is_constant(self):
        s = estimate_adversarial_ratio(
            lambda seed: Eager(),
            lambda: ClairvoyantLowerBoundAdversary(5),
            trials=4,
            clairvoyant=False,
        )
        assert s.std == 0.0
