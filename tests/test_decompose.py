"""Unit tests for span decomposition and iteration attribution."""

from __future__ import annotations

import pytest

from repro.analysis import decompose_span, iteration_attribution
from repro.core import Instance, simulate
from repro.schedulers import BatchPlus, Profit
from repro.workloads import poisson_instance, small_integral_instance


class TestDecompose:
    def test_component_lengths_sum_to_span(self):
        inst = poisson_instance(30, seed=0)
        result = simulate(BatchPlus(), inst)
        comps = decompose_span(result.schedule)
        assert sum(c.length for c in comps) == pytest.approx(result.span)

    def test_components_cover_all_jobs(self):
        inst = poisson_instance(30, seed=1)
        result = simulate(BatchPlus(), inst)
        comps = decompose_span(result.schedule)
        covered = {j for c in comps for j in c.job_ids}
        assert covered == set(inst.job_ids)

    def test_dominant_job_runs_longest_in_component(self):
        inst = Instance.from_triples([(0, 0, 5), (1, 0, 1)], name="dom")
        result = simulate(BatchPlus(), inst)
        comps = decompose_span(result.schedule)
        assert len(comps) == 1
        assert comps[0].dominant_job == 0

    def test_disjoint_components(self, serial_instance):
        result = simulate(BatchPlus(), serial_instance)
        comps = decompose_span(result.schedule)
        assert len(comps) == 3
        for a, b in zip(comps, comps[1:]):
            assert a.interval.right < b.interval.left


class TestIterationAttribution:
    @pytest.mark.parametrize("seed", range(6))
    def test_charges_sum_to_span_batchplus(self, seed):
        inst = small_integral_instance(10, seed=seed, max_arrival=20)
        result = simulate(BatchPlus(), inst)
        charges = iteration_attribution(
            result.instance, result.schedule, result.scheduler.flag_job_ids
        )
        assert sum(charges.values()) == pytest.approx(result.span)

    @pytest.mark.parametrize("seed", range(6))
    def test_theorem_3_5_per_flag_charge(self, seed):
        """Each flag's charge is at most (μ+1)·p(flag): the executable
        form of Theorem 3.5's per-iteration accounting."""
        inst = small_integral_instance(10, seed=seed, max_arrival=20)
        result = simulate(BatchPlus(), inst)
        charges = iteration_attribution(
            result.instance, result.schedule, result.scheduler.flag_job_ids
        )
        mu = inst.mu
        for fid, charge in charges.items():
            if fid == -1:
                continue
            p = result.instance[fid].known_length
            assert charge <= (mu + 1) * p + 1e-9

    def test_profit_charges_sum(self):
        inst = poisson_instance(40, seed=3)
        result = simulate(Profit(), inst, clairvoyant=True)
        charges = iteration_attribution(
            result.instance, result.schedule, result.scheduler.flag_job_ids
        )
        assert sum(charges.values()) == pytest.approx(result.span)
