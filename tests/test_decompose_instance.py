"""Unit + property tests for instance decomposition."""

from __future__ import annotations

import pytest

from repro.core import Instance, SolverError
from repro.offline import (
    exact_optimal_span,
    exact_optimal_span_decomposed,
    split_independent,
)
from repro.workloads import WorkloadSpec, generate, small_integral_instance


class TestSplitIndependent:
    def test_empty(self):
        assert split_independent(Instance([])) == []

    def test_single_component_when_everything_overlaps(self, batchable_instance):
        comps = split_independent(batchable_instance)
        assert len(comps) == 1
        assert len(comps[0]) == 4

    def test_serial_jobs_split(self, serial_instance):
        # reach windows [0,3), [4,7), [8,11): three components.
        comps = split_independent(serial_instance)
        assert len(comps) == 3
        assert all(len(c) == 1 for c in comps)

    def test_partition_is_exact(self):
        inst = generate(WorkloadSpec(n=50, arrival_rate=0.2, integral=True), seed=1)
        comps = split_independent(inst)
        ids = sorted(j.id for c in comps for j in c)
        assert ids == sorted(inst.job_ids)

    def test_components_reach_disjoint(self):
        inst = generate(WorkloadSpec(n=50, arrival_rate=0.2, integral=True), seed=2)
        comps = split_independent(inst)
        for a, b in zip(comps, comps[1:]):
            end_a = max(j.deadline + j.known_length for j in a)
            start_b = min(j.arrival for j in b)
            assert start_b >= end_a

    def test_chained_overlap_merges(self):
        # A overlaps B, B overlaps C, A disjoint from C → one component.
        inst = Instance.from_triples(
            [(0, 0, 3), (2, 0, 3), (4, 0, 3)], name="chain"
        )
        assert len(split_independent(inst)) == 1


class TestDecomposedExact:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_monolithic_exact(self, seed):
        inst = small_integral_instance(7, seed=seed, max_arrival=20)
        assert exact_optimal_span_decomposed(inst) == pytest.approx(
            exact_optimal_span(inst)
        )

    def test_scales_to_sparse_large_instances(self):
        inst = generate(
            WorkloadSpec(n=80, arrival_rate=0.05, laxity_scale=0.5, integral=True),
            seed=0,
        )
        span = exact_optimal_span_decomposed(inst)
        assert span > 0
        # additivity: equals the sum of per-component optima
        total = sum(
            exact_optimal_span(c) for c in split_independent(inst)
        )
        assert span == pytest.approx(total)

    def test_witness_schedule_feasible(self):
        from repro.offline import exact_optimal_schedule_decomposed

        inst = generate(
            WorkloadSpec(n=40, arrival_rate=0.05, laxity_scale=0.5, integral=True),
            seed=3,
        )
        exact_optimal_schedule_decomposed(inst).validate()

    def test_oversized_component_rejected(self):
        inst = small_integral_instance(15, seed=0, max_arrival=3)
        # everything overlaps → one 15-job component > max_component
        with pytest.raises(SolverError, match="component"):
            exact_optimal_span_decomposed(inst, max_component=8)

    def test_certify_uses_decomposition(self):
        """bracket_optimum now certifies large sparse instances exactly."""
        from repro.analysis import bracket_optimum

        inst = generate(
            WorkloadSpec(n=60, arrival_rate=0.08, laxity_scale=0.5, integral=True),
            seed=0,
        )
        br = bracket_optimum(inst)
        assert br.method == "exact"
        assert br.width == 0.0
