"""Event-sourced checkpoints: save/restore determinism, pool fan-out."""

from __future__ import annotations

import json

import pytest

from repro.obs.jsonl import dump_jsonl, scan_jsonl
from repro.perf.parallel import ParallelRunner
from repro.serve.checkpoint import (
    CHECKPOINT_SUFFIX,
    checkpoint_path,
    list_checkpoints,
    load_checkpoint,
    restore_all,
    restore_session,
    save_checkpoint,
    verify_checkpoints,
)
from repro.serve.session import TenantSession

JOBS = [
    (0, 0.0, 2.0, 1.0),
    (1, 0.5, 1.5, 3.0),
    (2, 4.0, 5.0, 2.0),
    (3, 6.0, 9.0, 1.0),
]


def job_op(tenant, job_id, arrival, deadline, length):
    return {
        "op": "job", "tenant": tenant, "id": job_id, "arrival": arrival,
        "deadline": deadline, "length": length,
    }


def run_session(tenant="t1", upto=len(JOBS), close=False, scheduler="batch+"):
    """A session with the first ``upto`` jobs applied; outputs collected."""
    session = TenantSession(tenant, scheduler=scheduler)
    outs = list(session.hello())
    for jid, a, d, p in JOBS[:upto]:
        outs += session.apply(job_op(tenant, jid, a, d, p))
    if close:
        outs += session.apply({"op": "close", "tenant": tenant})
    return session, outs


class TestRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        session, _ = run_session(upto=2)
        path = save_checkpoint(session, tmp_path)
        assert path == str(checkpoint_path(tmp_path, "t1"))
        meta, ops = load_checkpoint(path)
        assert meta["tenant"] == "t1"
        assert meta["scheduler"] == "batch+"
        assert meta["emitted"] == session.emitted
        assert meta["clock"] == session.clock
        assert ops == session.input_log

    def test_save_resets_cadence_counter(self, tmp_path):
        session, _ = run_session(upto=2)
        assert session.ops_since_checkpoint == 2
        save_checkpoint(session, tmp_path)
        assert session.ops_since_checkpoint == 0

    def test_restore_matches_original_state(self, tmp_path):
        session, _ = run_session(upto=3)
        path = save_checkpoint(session, tmp_path)
        restored = restore_session(path)
        assert restored.tenant == session.tenant
        assert restored.clock == session.clock
        assert restored.emitted == session.emitted
        assert restored.input_log == session.input_log
        assert not restored.closed

    def test_closed_session_restores_closed(self, tmp_path):
        session, _ = run_session(close=True)
        path = save_checkpoint(session, tmp_path)
        restored = restore_session(path)
        assert restored.closed
        assert restored.result is not None
        assert restored.result.span == session.result.span


class TestKillRestoreDeterminism:
    def test_remaining_outputs_bit_identical(self, tmp_path):
        """The acceptance criterion: restore emits exactly what the
        uninterrupted session would have emitted after the cut point."""
        full_session, full_outs = run_session(close=True)

        for cut in range(1, len(JOBS) + 1):
            crash_session, pre_outs = run_session(upto=cut)
            path = save_checkpoint(crash_session, tmp_path)
            # "Crash": drop the session object entirely; restore from disk.
            restored = restore_session(path)
            post_outs = []
            for jid, a, d, p in JOBS[cut:]:
                post_outs += restored.apply(job_op("t1", jid, a, d, p))
            post_outs += restored.apply({"op": "close", "tenant": "t1"})
            assert pre_outs + post_outs == full_outs, f"cut at {cut}"
            assert restored.result.span == full_session.result.span

    def test_no_duplicate_start_records_after_restore(self, tmp_path):
        _, full_outs = run_session(close=True)
        crash_session, pre_outs = run_session(upto=2)
        path = save_checkpoint(crash_session, tmp_path)
        restored = restore_session(path)
        post_outs = []
        for jid, a, d, p in JOBS[2:]:
            post_outs += restored.apply(job_op("t1", jid, a, d, p))
        post_outs += restored.apply({"op": "close", "tenant": "t1"})
        started = [o["job"] for o in pre_outs + post_outs if o["kind"] == "start"]
        assert sorted(started) == [0, 1, 2, 3]
        assert len(started) == len(set(started))  # no job started twice

    def test_restore_all(self, tmp_path):
        for tenant in ("alpha", "beta", "gamma"):
            session, _ = run_session(tenant=tenant, upto=2)
            save_checkpoint(session, tmp_path)
        sessions = restore_all(tmp_path)
        assert sorted(sessions) == ["alpha", "beta", "gamma"]
        assert all(s.clock > 0 for s in sessions.values())

    def test_list_checkpoints_sorted(self, tmp_path):
        for tenant in ("zeta", "alpha"):
            session, _ = run_session(tenant=tenant, upto=1)
            save_checkpoint(session, tmp_path)
        names = [p.name for p in list_checkpoints(tmp_path)]
        assert names == [
            f"alpha{CHECKPOINT_SUFFIX}", f"zeta{CHECKPOINT_SUFFIX}"
        ]
        assert list_checkpoints(tmp_path / "missing") == []


class TestVerifyCheckpoints:
    def _populate(self, tmp_path, n=4):
        for i in range(n):
            session, _ = run_session(
                tenant=f"t{i}", upto=2 + (i % 3), close=(i % 2 == 0)
            )
            save_checkpoint(session, tmp_path)

    def test_serial_and_pool_identical(self, tmp_path):
        self._populate(tmp_path)
        serial = verify_checkpoints(tmp_path, runner=ParallelRunner(workers=1))
        pooled = verify_checkpoints(tmp_path, runner=ParallelRunner(workers=2))
        assert serial == pooled
        assert [s["tenant"] for s in serial] == ["t0", "t1", "t2", "t3"]
        assert all("span" in s for s in serial if s["closed"])

    def test_empty_directory(self, tmp_path):
        assert verify_checkpoints(tmp_path) == []

    def test_tampered_meta_detected(self, tmp_path):
        session, _ = run_session(upto=2)
        path = save_checkpoint(session, tmp_path)
        meta, ops = load_checkpoint(path)
        meta["clock"] = meta["clock"] + 7.0  # stale/hand-edited meta
        meta.pop("version", None)
        rows = [{"kind": "op", "data": op} for op in ops]
        dump_jsonl(path, rows, **meta)
        with pytest.raises(ValueError, match="replay diverged"):
            verify_checkpoints(tmp_path, runner=ParallelRunner(workers=1))


class TestCorruptCheckpoints:
    def test_wrong_tool_rejected(self, tmp_path):
        path = tmp_path / f"t1{CHECKPOINT_SUFFIX}"
        dump_jsonl(path, [], tool="repro.obs", tenant="t1")
        with pytest.raises(ValueError, match="not a serve checkpoint"):
            load_checkpoint(path)

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / f"t1{CHECKPOINT_SUFFIX}"
        dump_jsonl(
            path, [{"kind": "noise"}], tool="repro.serve", tenant="t1"
        )
        with pytest.raises(ValueError, match="malformed checkpoint row"):
            load_checkpoint(path)

    def test_truncated_ops_detected(self, tmp_path):
        session, _ = run_session(upto=3)
        path = save_checkpoint(session, tmp_path)
        # Drop the last op row without touching the meta header.
        from pathlib import Path

        p = Path(path)
        kept = p.read_text().splitlines()
        p.write_text("\n".join(kept[:-1]) + "\n")
        with pytest.raises(ValueError, match="truncated checkpoint"):
            load_checkpoint(p)

    def test_inflated_emitted_rejected_on_restore(self, tmp_path):
        session, _ = run_session(upto=2)
        path = save_checkpoint(session, tmp_path)
        meta, ops = load_checkpoint(path)
        meta["emitted"] = meta["emitted"] + 50  # claims undelivered records
        meta["ops"] = len(ops)
        meta.pop("version", None)
        rows = [{"kind": "op", "data": op} for op in ops]
        dump_jsonl(path, rows, **meta)
        with pytest.raises(ValueError, match="never\\s+regenerated"):
            restore_session(path)

    def test_checkpoint_file_is_versioned_jsonl(self, tmp_path):
        session, _ = run_session(upto=1)
        path = save_checkpoint(session, tmp_path)
        meta, rows = scan_jsonl(path)
        assert meta["version"] == 1
        assert meta["tool"] == "repro.serve"
        first = json.loads(open(path).readline())
        assert first["kind"] == "meta"
