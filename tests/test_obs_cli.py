"""End-to-end CLI tests: ``repro run`` trace emission and the
``repro obs`` subcommands (summarize / explain / diff / export / overhead)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs import NULL_RECORDER, read_jsonl, reset_recorder, set_recorder


@pytest.fixture(autouse=True)
def _restore_ambient(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.delenv("REPRO_TRACE_DIR", raising=False)
    previous = set_recorder(NULL_RECORDER)
    yield
    set_recorder(previous)


def run_traced(scheduler: str, tmp_path, monkeypatch) -> Path:
    """``REPRO_TRACE=1 repro run <scheduler>`` writing into ``tmp_path``."""
    monkeypatch.setenv("REPRO_TRACE", "1")
    monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
    reset_recorder()  # re-arm the ambient recorder from the environment
    assert main(["run", scheduler, "--jobs", "12", "--seed", "3"]) == 0
    trace = tmp_path / f"{scheduler}.trace.jsonl"
    assert trace.exists()
    return trace


class TestRunWritesTrace:
    def test_run_emits_jsonl_trace(self, tmp_path, monkeypatch, capsys):
        trace = run_traced("batch+", tmp_path, monkeypatch)
        printed = capsys.readouterr().out
        assert "trace     :" in printed
        loaded = read_jsonl(trace)
        assert loaded.meta["command"] == "run"
        assert loaded.meta["scheduler"] == "batch+"
        assert loaded.by_kind("decision")
        assert loaded.metrics.counters["engine.jobs"] == 12.0

    def test_disarmed_run_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        reset_recorder()
        assert main(["run", "batch", "--jobs", "6", "--seed", "1"]) == 0
        assert not list(tmp_path.iterdir())


class TestExplainCLI:
    def test_strict_passes_on_instrumented_scheduler(
        self, tmp_path, monkeypatch, capsys
    ):
        trace = run_traced("batch+", tmp_path, monkeypatch)
        assert main(["obs", "explain", str(trace), "--strict"]) == 0
        printed = capsys.readouterr().out
        assert "12 attributed, 0 unattributed" in printed
        assert "audit     : feasible" in printed

    def test_strict_fails_on_uninstrumented_scheduler(
        self, tmp_path, monkeypatch, capsys
    ):
        trace = run_traced("eager", tmp_path, monkeypatch)
        assert main(["obs", "explain", str(trace), "--strict"]) == 1
        assert "UNATTRIBUTED" in capsys.readouterr().out

    def test_nonstrict_tolerates_unattributed(self, tmp_path, monkeypatch):
        trace = run_traced("eager", tmp_path, monkeypatch)
        assert main(["obs", "explain", str(trace)]) == 0

    def test_missing_trace_exits_2(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["obs", "explain", str(tmp_path / "nope.jsonl")])
        assert exc.value.code == 2


class TestSummarizeCLI:
    def test_text_output(self, tmp_path, monkeypatch, capsys):
        trace = run_traced("batch", tmp_path, monkeypatch)
        assert main(["obs", "summarize", str(trace)]) == 0
        printed = capsys.readouterr().out
        assert "decisions :" in printed and "counters  :" in printed

    def test_json_output_parses(self, tmp_path, monkeypatch, capsys):
        trace = run_traced("batch", tmp_path, monkeypatch)
        capsys.readouterr()  # drain the run command's own output
        assert main(["obs", "summarize", str(trace), "--format", "json"]) == 0
        (payload,) = json.loads(capsys.readouterr().out)
        assert payload["path"] == str(trace)
        assert payload["counters"]["engine.jobs"] == 12.0


class TestExportCLI:
    def test_export_writes_chrome_json(self, tmp_path, monkeypatch, capsys):
        trace = run_traced("batch", tmp_path, monkeypatch)
        out = tmp_path / "trace.chrome.json"
        assert main(["obs", "export", str(trace), "--out", str(out)]) == 0
        assert "perfetto" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]

    def test_default_output_name(self, tmp_path, monkeypatch):
        trace = run_traced("batch", tmp_path, monkeypatch)
        assert main(["obs", "export", str(trace)]) == 0
        assert Path(f"{trace}.chrome.json").exists()


class TestDiffCLI:
    @staticmethod
    def _bench(path: Path, **cases: float) -> str:
        path.write_text(
            json.dumps(
                {
                    "schema": "test",
                    "results": [
                        {"case": c, "events": 1, "wall_s": 1.0, "events_per_s": v}
                        for c, v in cases.items()
                    ],
                }
            )
        )
        return str(path)

    def test_injected_regression_gates_exit_code(self, tmp_path, capsys):
        before = self._bench(tmp_path / "before.json", **{"macro/e1": 100_000.0})
        after = self._bench(tmp_path / "after.json", **{"macro/e1": 85_000.0})
        assert main(["obs", "diff", before, after]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "1 regression(s)" in captured.err

    def test_within_threshold_passes(self, tmp_path):
        before = self._bench(tmp_path / "before.json", **{"macro/e1": 100_000.0})
        after = self._bench(tmp_path / "after.json", **{"macro/e1": 95_000.0})
        assert main(["obs", "diff", before, after]) == 0

    def test_custom_threshold(self, tmp_path):
        before = self._bench(tmp_path / "before.json", **{"macro/e1": 100_000.0})
        after = self._bench(tmp_path / "after.json", **{"macro/e1": 95_000.0})
        assert main(["obs", "diff", before, after, "--threshold", "0.02"]) == 1

    def test_trace_diff_round_trip(self, tmp_path, monkeypatch):
        a = run_traced("batch", tmp_path, monkeypatch)
        assert main(["obs", "diff", str(a), str(a)]) == 0

    def test_mixed_inputs_rejected(self, tmp_path, monkeypatch, capsys):
        trace = run_traced("batch", tmp_path, monkeypatch)
        bench = self._bench(tmp_path / "bench.json", **{"macro/e1": 1.0})
        assert main(["obs", "diff", str(trace), bench]) == 2
        assert "cannot diff" in capsys.readouterr().err

    def test_negative_threshold_rejected(self, tmp_path):
        before = self._bench(tmp_path / "b.json", **{"c": 1.0})
        assert main(["obs", "diff", before, before, "--threshold", "-1"]) == 2


class TestOverheadCLI:
    """The ratchet's pass/fail logic, with timing stubbed out."""

    @staticmethod
    def _stub(monkeypatch, *, null_wall: float):
        def fake_time_macro(quick, recorder, repeat):
            disarmed = recorder is NULL_RECORDER
            return (1.0 if disarmed else null_wall), 1000

        monkeypatch.setattr("repro.obs.cli._time_macro", fake_time_macro)

    def test_within_tolerance_passes(self, monkeypatch, capsys):
        self._stub(monkeypatch, null_wall=1.01)
        assert main(["obs", "overhead", "--quick", "--repeat", "1"]) == 0
        assert "OK: NullRecorder" in capsys.readouterr().out

    def test_exceeding_tolerance_fails(self, monkeypatch, capsys):
        self._stub(monkeypatch, null_wall=1.10)
        assert main(["obs", "overhead", "--quick", "--repeat", "1"]) == 1
        assert "FAIL" in capsys.readouterr().err
