"""Tests for the ``REPRO_LOOPWATCH`` instrumented event loop.

The loopwatch is the runtime twin of lint rules RL017/RL018 (in the
mold of ``REPRO_STRICT`` ⇄ RL001 and ``REPRO_PARITY`` ⇄ RL013): this
suite covers the knobs, the stall/orphan instrumentation itself, and —
the heart of the contract — the **both-directions cross-validation**
on the shared ``tests/data/lint_fixtures/async_*_pkg`` packages: every
fixture the static rules flag must misbehave at runtime (stall the
instrumented loop, orphan a task, overfill without pushback, lose the
cleanup, hang the drain), and every clean twin must run quiet.  The
static-side assertions live in ``tests/test_lint_asyncsafety.py``;
here each fixture pair is *executed*.
"""

from __future__ import annotations

import asyncio
import importlib
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.lint import lint_paths
from repro.serve.loopwatch import (
    DEFAULT_STALL_THRESHOLD,
    LoopStallError,
    LoopWatch,
    loopwatch_enabled,
    stall_threshold,
    watched_run,
)

FIXTURES = Path(__file__).parent / "data" / "lint_fixtures"
REPO_ROOT = Path(__file__).resolve().parents[1]


def _import_fixture_module(dotted: str):
    if str(FIXTURES) not in sys.path:
        sys.path.insert(0, str(FIXTURES))
    return importlib.import_module(dotted)


def rule_codes(path: Path) -> set[str]:
    return {f.rule for f in lint_paths([path]).findings}


# ---------------------------------------------------------------------------
# Knobs
# ---------------------------------------------------------------------------


class TestKnobs:
    def test_enabled_idiom(self, monkeypatch):
        for raw, expected in [
            ("", False),
            ("0", False),
            ("false", False),
            ("off", False),
            ("1", True),
            ("true", True),
            ("yes", True),
        ]:
            monkeypatch.setenv("REPRO_LOOPWATCH", raw)
            assert loopwatch_enabled() is expected, raw
        monkeypatch.delenv("REPRO_LOOPWATCH")
        assert loopwatch_enabled() is False

    def test_threshold_knob(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOOPWATCH_THRESHOLD", raising=False)
        assert stall_threshold() == DEFAULT_STALL_THRESHOLD
        monkeypatch.setenv("REPRO_LOOPWATCH_THRESHOLD", "0.5")
        assert stall_threshold() == 0.5
        monkeypatch.setenv("REPRO_LOOPWATCH_THRESHOLD", "garbage")
        assert stall_threshold() == DEFAULT_STALL_THRESHOLD
        monkeypatch.setenv("REPRO_LOOPWATCH_THRESHOLD", "-1")
        assert stall_threshold() == DEFAULT_STALL_THRESHOLD


# ---------------------------------------------------------------------------
# The instrumentation itself
# ---------------------------------------------------------------------------


class TestWatchedRun:
    def test_quiet_loop_runs_clean(self):
        async def main() -> int:
            await asyncio.sleep(0)
            return 41 + 1

        result, watch = watched_run(main(), threshold=0.5)
        assert result == 42
        assert watch.stalls == [] and watch.orphans == []
        snap = watch.metrics.snapshot()
        assert snap["counters"]["loopwatch.callbacks"] >= 1
        assert "loopwatch.callback_seconds" in snap["histograms"]
        assert snap["gauges"]["loopwatch.pending_tasks"] == 0.0

    def test_inline_block_is_a_stall(self):
        async def main() -> None:
            time.sleep(0.08)  # blocks the loop thread inline

        result, watch = watched_run(main(), threshold=0.02, check=False)
        assert result is None
        assert watch.stalls
        label, seconds = max(watch.stalls, key=lambda s: s[1])
        assert "main" in label
        assert seconds >= 0.02
        assert watch.metrics.snapshot()["counters"]["loopwatch.stalls"] >= 1

    def test_stall_raises_with_check(self):
        async def main() -> None:
            time.sleep(0.08)

        with pytest.raises(LoopStallError, match="RL017"):
            watched_run(main(), threshold=0.02)

    def test_orphan_raises_with_check(self):
        async def main() -> None:
            asyncio.create_task(_boom())  # noqa: RUF006 - deliberate orphan
            await asyncio.sleep(0.01)

        async def _boom() -> None:
            raise RuntimeError("nobody is listening")

        with pytest.raises(LoopStallError, match="RL018"):
            watched_run(main(), threshold=5.0)

    def test_watch_accumulates_per_label(self):
        watch = LoopWatch(threshold=0.01)
        watch.observe_callback("worker", 0.5)
        watch.observe_callback("worker", 0.002)
        assert watch.stalls == [("worker", 0.5)]
        snap = watch.metrics.snapshot()
        assert snap["counters"]["loopwatch.callbacks"] == 2.0
        assert snap["counters"]["loopwatch.stalls"] == 1.0


# ---------------------------------------------------------------------------
# Cross-validation: static verdicts ⇄ runtime behaviour, both directions
# ---------------------------------------------------------------------------


class TestBlockingCrossValidation:
    def test_offending_flagged_and_stalls(self):
        pkg = FIXTURES / "async_block_pkg"
        assert "RL017" in rule_codes(pkg / "offending.py")
        mod = _import_fixture_module("async_block_pkg.offending")
        result, watch = watched_run(
            mod.serve_forever(), threshold=0.05, check=False
        )
        assert result == 2
        assert watch.stalls, "static RL017 verdict not confirmed at runtime"
        label, seconds = max(watch.stalls, key=lambda s: s[1])
        assert "serve_forever" in label
        assert seconds >= 0.05

    def test_clean_quiet_and_unflagged(self):
        pkg = FIXTURES / "async_block_pkg"
        assert "RL017" not in rule_codes(pkg / "clean.py")
        mod = _import_fixture_module("async_block_pkg.clean")
        result, watch = watched_run(mod.serve_forever(), threshold=0.05)
        assert result == 2
        assert watch.stalls == []


class TestOrphanCrossValidation:
    def test_offending_flagged_and_orphans(self):
        pkg = FIXTURES / "async_orphan_pkg"
        assert "RL018" in rule_codes(pkg / "offending.py")
        mod = _import_fixture_module("async_orphan_pkg.offending")
        _result, watch = watched_run(mod.kickoff(), threshold=5.0, check=False)
        assert len(watch.orphans) == 1
        assert "_worker" in watch.orphans[0]

    def test_clean_quiet_and_unflagged(self):
        pkg = FIXTURES / "async_orphan_pkg"
        assert "RL018" not in rule_codes(pkg / "clean.py")
        mod = _import_fixture_module("async_orphan_pkg.clean")
        _result, watch = watched_run(mod.kickoff(), threshold=5.0)
        assert watch.orphans == []


class TestChannelCrossValidation:
    def test_offending_flagged_and_never_pushes_back(self):
        pkg = FIXTURES / "async_channel_pkg"
        assert "RL019" in rule_codes(pkg / "offending.py")
        mod = _import_fixture_module("async_channel_pkg.offending")
        # 100 items sail into the "bounded" hub: memory is the only limit.
        assert asyncio.run(mod.overfill(100)) == 100

    def test_clean_rejects_at_its_bound(self):
        pkg = FIXTURES / "async_channel_pkg"
        assert "RL019" not in rule_codes(pkg / "clean.py")
        mod = _import_fixture_module("async_channel_pkg.clean")
        assert asyncio.run(mod.overfill(100)) == mod.BOUND


class TestCleanupCrossValidation:
    def test_offending_flagged_and_loses_the_flush(self):
        pkg = FIXTURES / "async_cleanup_pkg"
        assert "RL020" in rule_codes(pkg / "offending.py")
        mod = _import_fixture_module("async_cleanup_pkg.offending")
        assert asyncio.run(mod.run_cancelled()) == []

    def test_clean_shielded_flush_lands(self):
        pkg = FIXTURES / "async_cleanup_pkg"
        assert "RL020" not in rule_codes(pkg / "clean.py")
        mod = _import_fixture_module("async_cleanup_pkg.clean")
        assert asyncio.run(mod.run_cancelled()) == [7]


class TestJoinCrossValidation:
    def test_offending_flagged_and_drain_hangs(self):
        pkg = FIXTURES / "async_join_pkg"
        assert "RL021" in rule_codes(pkg / "offending.py")
        mod = _import_fixture_module("async_join_pkg.offending")
        joined, done = asyncio.run(mod.run_drain(timeout=0.2))
        assert joined is False  # the join counter is stuck high
        assert done == [1, 2, 3]  # items were consumed, credits never returned

    def test_clean_drain_completes(self):
        pkg = FIXTURES / "async_join_pkg"
        assert "RL021" not in rule_codes(pkg / "clean.py")
        mod = _import_fixture_module("async_join_pkg.clean")
        joined, done = asyncio.run(mod.run_drain(timeout=2.0))
        assert joined is True
        assert done == [1, 2, 3]


# ---------------------------------------------------------------------------
# The real daemon under the watch (the CI smoke, in miniature)
# ---------------------------------------------------------------------------

_TWO_TENANT_OPS = (
    b'{"op": "job", "tenant": "a", "id": 1, "arrival": 0.0, "length": 2.0,'
    b' "deadline": 9.0}\n'
    b'{"op": "job", "tenant": "b", "id": 2, "arrival": 0.0, "length": 1.0,'
    b' "deadline": 5.0}\n'
    b'{"op": "close", "tenant": "a"}\n'
    b'{"op": "close", "tenant": "b"}\n'
)


class TestDaemonUnderLoopwatch:
    def _serve(self, env_extra: dict) -> subprocess.CompletedProcess:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env.update(env_extra)
        return subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--stdio"],
            input=_TWO_TENANT_OPS,
            capture_output=True,
            timeout=60,
            env=env,
        )

    def test_two_tenant_stream_runs_clean(self):
        proc = self._serve({"REPRO_LOOPWATCH": "1"})
        assert proc.returncode == 0, proc.stderr.decode()
        err = proc.stderr.decode()
        assert "loopwatch:" in err
        assert "0 stall(s)" in err and "0 orphan(s)" in err
        out = proc.stdout.decode()
        assert '"serve.ready"' in out and '"serve.closed"' in out

    def test_absurd_threshold_fails_the_process(self):
        # With a sub-microsecond threshold every callback is a "stall":
        # the LoopStallError path must surface as a distinct exit code.
        proc = self._serve(
            {"REPRO_LOOPWATCH": "1", "REPRO_LOOPWATCH_THRESHOLD": "0.0000001"}
        )
        assert proc.returncode == 3, proc.stderr.decode()
        assert "RL017" in proc.stderr.decode()
