"""Unit tests for the head-to-head comparison matrix."""

from __future__ import annotations

import pytest

from repro.analysis import compare_schedulers
from repro.schedulers import Batch, BatchPlus, Eager, Lazy, Profit
from repro.workloads import poisson_instance, rigid_instance


class TestCompareSchedulers:
    def test_matrix_shape_and_counts(self):
        instances = [poisson_instance(30, seed=s) for s in range(5)]
        matrix = compare_schedulers([Eager(), BatchPlus(), Profit()], instances)
        assert matrix.instances == 5
        for a in matrix.names:
            for b in matrix.names:
                if a == b:
                    continue
                total = (
                    matrix.wins[a][b] + matrix.wins[b][a] + matrix.ties[a][b]
                )
                assert total == 5

    def test_ties_symmetric(self):
        instances = [poisson_instance(20, seed=s) for s in range(4)]
        matrix = compare_schedulers([Batch(), BatchPlus()], instances)
        for a in matrix.names:
            for b in matrix.names:
                if a != b:
                    assert matrix.ties[a][b] == matrix.ties[b][a]

    def test_rigid_instances_all_tie(self):
        instances = [rigid_instance(20, seed=s) for s in range(3)]
        matrix = compare_schedulers([Eager(), Lazy(), BatchPlus()], instances)
        for a in matrix.names:
            for b in matrix.names:
                if a != b:
                    assert matrix.ties[a][b] == 3
                    assert matrix.dominance(a, b) == "tie"

    def test_profit_dominates_lazy_on_poisson(self):
        instances = [poisson_instance(50, seed=s) for s in range(6)]
        matrix = compare_schedulers([Profit(), Lazy()], instances)
        assert matrix.wins["profit"]["lazy"] >= 5

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            compare_schedulers([Eager(), Eager()], [poisson_instance(5, seed=0)])

    def test_render(self):
        instances = [poisson_instance(15, seed=s) for s in range(3)]
        out = compare_schedulers([Eager(), BatchPlus()], instances).render()
        assert "head-to-head" in out and "eager" in out and "—" in out
