"""Unit tests for run summaries and the SWF trace bridge."""

from __future__ import annotations

import pytest

from repro.analysis import summarize_run
from repro.core import InvalidInstanceError, simulate
from repro.schedulers import BatchPlus, Profit
from repro.workloads import (
    poisson_instance,
    read_swf_instance,
    small_integral_instance,
    write_swf_instance,
)


class TestSummarizeRun:
    def test_fields_consistent(self):
        inst = poisson_instance(30, seed=2)
        result = simulate(BatchPlus(), inst)
        s = summarize_run(result)
        assert s.jobs == 30
        assert s.span == pytest.approx(result.span)
        assert s.parallelism == pytest.approx(inst.total_work / result.span)
        assert s.peak_concurrency >= 1
        assert s.busy_components >= 1
        assert s.flag_count == len(result.scheduler.flag_job_ids)

    def test_exact_certification_on_small_instance(self):
        inst = small_integral_instance(6, seed=1)
        result = simulate(BatchPlus(), inst)
        s = summarize_run(result)
        assert s.opt.exact
        assert s.ratio_lower == pytest.approx(s.ratio_upper)
        assert s.ratio_lower >= 1.0 - 1e-9

    def test_bracket_clamped_by_observed_span(self):
        """The observed run tightens the OPT upper bound, so the reported
        ratio lower bound is never below 1."""
        inst = poisson_instance(60, seed=4)
        result = simulate(Profit(), inst, clairvoyant=True)
        s = summarize_run(result)
        assert s.ratio_lower >= 1.0 - 1e-9
        assert s.ratio_upper >= s.ratio_lower

    def test_skip_certification(self):
        inst = poisson_instance(20, seed=0)
        result = simulate(BatchPlus(), inst)
        s = summarize_run(result, certify=False)
        assert s.opt.method == "skipped"

    def test_render(self):
        inst = small_integral_instance(5, seed=0)
        result = simulate(BatchPlus(), inst)
        out = summarize_run(result).render()
        assert "span" in out and "competitive ratio (exact)" in out


class TestSwfBridge:
    def test_round_trip_core_fields(self, tmp_path):
        inst = poisson_instance(12, seed=3)
        path = tmp_path / "w.swf"
        write_swf_instance(inst, path)
        back = read_swf_instance(path, laxity=("zero", 0.0))
        assert len(back) == 12
        for orig, loaded in zip(inst, back):
            assert loaded.arrival == pytest.approx(orig.arrival - inst.jobs[0].arrival + 0.0)
            assert loaded.known_length == pytest.approx(orig.known_length)

    def test_laxity_policies(self, tmp_path):
        path = tmp_path / "w.swf"
        path.write_text("0 0 0 10 1 -1 -1 1\n1 5 0 4 1 -1 -1 1\n")
        prop = read_swf_instance(path, laxity=("proportional", 0.5))
        assert prop[0].laxity == pytest.approx(5.0)
        const = read_swf_instance(path, laxity=("constant", 3.0))
        assert const[1].laxity == pytest.approx(3.0)
        rigid = read_swf_instance(path, laxity=("zero", 0.0))
        assert all(j.laxity == 0 for j in rigid)

    def test_comments_and_invalid_runtimes_skipped(self, tmp_path):
        path = tmp_path / "w.swf"
        path.write_text(
            "; header comment\n"
            "0 0 0 -1 1 -1 -1 1\n"   # unknown run time → skipped
            "1 2 0 5 1 -1 -1 1\n"
        )
        inst = read_swf_instance(path)
        assert len(inst) == 1
        assert inst[0].known_length == 5.0

    def test_submit_times_rebased(self, tmp_path):
        path = tmp_path / "w.swf"
        path.write_text("0 1000 0 2 1 -1 -1 1\n1 1010 0 2 1 -1 -1 1\n")
        inst = read_swf_instance(path)
        assert inst[0].arrival == 0.0
        assert inst[1].arrival == 10.0

    def test_size_divisor(self, tmp_path):
        path = tmp_path / "w.swf"
        path.write_text("0 0 0 5 4 -1 -1 4\n")
        inst = read_swf_instance(path, size_divisor=8.0)
        assert inst[0].size == pytest.approx(0.5)

    def test_max_jobs(self, tmp_path):
        path = tmp_path / "w.swf"
        path.write_text("\n".join(f"{i} {i} 0 1 1 -1 -1 1" for i in range(20)))
        assert len(read_swf_instance(path, max_jobs=5)) == 5

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "w.swf"
        path.write_text("0 0\n")
        with pytest.raises(InvalidInstanceError):
            read_swf_instance(path)

    def test_loaded_instance_schedulable(self, tmp_path):
        inst = poisson_instance(15, seed=7)
        path = tmp_path / "w.swf"
        write_swf_instance(inst, path)
        loaded = read_swf_instance(path, laxity=("proportional", 1.0))
        simulate(BatchPlus(), loaded).schedule.validate()
