"""Unit tests for the bin-level packing renderer."""

from __future__ import annotations

from repro.core import Instance, Job
from repro.dbp import FirstFit, render_bins, run_pipeline
from repro.schedulers import BatchPlus, Eager
from repro.workloads import cloud_instance


class TestRenderBins:
    def test_renders_every_bin_row(self):
        result = run_pipeline(BatchPlus(), FirstFit(1.0), cloud_instance(seed=1))
        out = render_bins(result)
        assert out.count("bin ") == result.bins_used
        assert "total usage" in out and "peak open" in out

    def test_truncation(self):
        result = run_pipeline(BatchPlus(), FirstFit(1.0), cloud_instance(seed=1))
        out = render_bins(result, max_bins=2)
        assert out.count("bin ") == 2
        assert "more bins not shown" in out

    def test_full_load_uses_solid_shade(self):
        inst = Instance([Job(0, 0.0, 0.0, 4.0, size=1.0)], name="solid")
        result = run_pipeline(Eager(), FirstFit(1.0), inst)
        out = render_bins(result, width=20)
        assert "█" in out

    def test_idle_time_blank(self):
        inst = Instance(
            [
                Job(0, 0.0, 0.0, 1.0, size=1.0),
                Job(1, 9.0, 9.0, 1.0, size=1.0),
            ],
            name="gap",
        )
        result = run_pipeline(Eager(), FirstFit(1.0), inst)
        out = render_bins(result, width=40)
        row = [l for l in out.splitlines() if l.startswith("bin")][0]
        inner = row.split("|")[1]
        assert " " in inner  # the idle middle renders blank

    def test_width_respected(self):
        result = run_pipeline(BatchPlus(), FirstFit(1.0), cloud_instance(seed=1))
        out = render_bins(result, width=30)
        for line in out.splitlines():
            if line.startswith("bin"):
                assert len(line.split("|")[1]) == 30
