"""Cross-validation of graph structures against networkx.

Our flag-forest construction (Lemma 4.7) and instance decomposition are
hand-rolled; networkx provides independent implementations of the
underlying graph predicates (forest test, connected components) to check
them against.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.analysis import build_flag_forest, check_forest_property
from repro.core import simulate
from repro.offline import split_independent
from repro.schedulers import Profit
from repro.workloads import poisson_instance, small_integral_instance


class TestFlagForestVsNetworkx:
    @pytest.mark.parametrize("seed", range(10))
    def test_forest_predicate_agrees(self, seed):
        inst = small_integral_instance(12, seed=seed, max_arrival=20)
        result = simulate(Profit(), inst, clairvoyant=True)
        forest = build_flag_forest(
            result.instance, result.scheduler.flag_job_ids
        )
        g = nx.DiGraph()
        g.add_nodes_from(j.id for j in forest.flags)
        g.add_edges_from((p, c) for c, p in forest.parent.items())
        assert check_forest_property(forest)
        assert nx.is_forest(g.to_undirected()) or g.number_of_nodes() == 0

    @pytest.mark.parametrize("seed", range(6))
    def test_tree_partition_matches_components(self, seed):
        inst = poisson_instance(40, seed=seed, laxity_scale=1.0)
        result = simulate(Profit(), inst, clairvoyant=True)
        forest = build_flag_forest(
            result.instance, result.scheduler.flag_job_ids
        )
        g = nx.Graph()
        g.add_nodes_from(j.id for j in forest.flags)
        g.add_edges_from((p, c) for c, p in forest.parent.items())
        ours = sorted(sorted(t) for t in forest.trees())
        theirs = sorted(sorted(c) for c in nx.connected_components(g))
        assert ours == theirs


class TestDecompositionVsNetworkx:
    @pytest.mark.parametrize("seed", range(6))
    def test_components_match_interval_graph(self, seed):
        from repro.workloads import WorkloadSpec, generate

        inst = generate(
            WorkloadSpec(n=40, arrival_rate=0.15, integral=True), seed=seed
        )
        # reach-window intersection graph
        g = nx.Graph()
        g.add_nodes_from(inst.job_ids)
        jobs = list(inst.jobs)
        for i, a in enumerate(jobs):
            for b in jobs[i + 1 :]:
                a_lo, a_hi = a.arrival, a.deadline + a.known_length
                b_lo, b_hi = b.arrival, b.deadline + b.known_length
                if a_lo < b_hi and b_lo < a_hi:
                    g.add_edge(a.id, b.id)
        theirs = sorted(sorted(c) for c in nx.connected_components(g))
        ours = sorted(sorted(j.id for j in comp) for comp in split_independent(inst))
        assert ours == theirs
