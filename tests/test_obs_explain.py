"""Decision-provenance narratives: every instrumented scheduler's starts
must be attributed to a paper rule, and the rebuilt schedule must audit."""

from __future__ import annotations

import pytest

from repro.core.engine import simulate
from repro.obs import DECISION_RULES, TraceRecorder, explain_trace
from repro.schedulers import make_scheduler
from repro.workloads import WorkloadSpec, generate

INSTRUMENTED = ["batch", "batch+", "cdb", "profit", "epoch-batch"]


def run_with_trace(name: str, *, n: int = 12, seed: int = 3) -> TraceRecorder:
    spec = WorkloadSpec(n=n, laxity_scale=2.0, length_high=10.0)
    inst = generate(spec, seed=seed)
    sched = make_scheduler(name)
    rec = TraceRecorder()
    simulate(
        sched, inst, clairvoyant=type(sched).requires_clairvoyance, recorder=rec
    )
    return rec


class TestInstrumentedSchedulers:
    @pytest.mark.parametrize("name", INSTRUMENTED)
    def test_every_start_attributed_to_a_paper_rule(self, name):
        rec = run_with_trace(name)
        explanation = explain_trace(rec)
        assert len(explanation.stories) == 12
        assert explanation.fully_attributed, (
            f"{name}: {explanation.unattributed} unattributed starts"
        )
        for story in explanation.stories:
            assert story.start is not None
            assert story.start_rule in DECISION_RULES

    @pytest.mark.parametrize("name", INSTRUMENTED)
    def test_rebuilt_schedule_audits_feasible(self, name):
        explanation = explain_trace(run_with_trace(name))
        assert explanation.audit_feasible is True
        assert explanation.audit_notes == []

    def test_cdb_reports_routing_and_category_label(self):
        explanation = explain_trace(run_with_trace("cdb"))
        routed = [s for s in explanation.stories if s.routing is not None]
        assert len(routed) == len(explanation.stories)
        for story in routed:
            assert story.routing.attrs["scheduler"] == "cdb"
            assert "category" in story.routing.attrs
            # the actual start rule comes from a per-category Batch+
            start = next(
                d for d in reversed(story.decisions) if d.name == story.start_rule
            )
            assert start.attrs["scheduler"].startswith("cdb/cat")

    def test_epoch_batch_uses_epoch_vocabulary(self):
        explanation = explain_trace(run_with_trace("epoch-batch"))
        rules = {s.start_rule for s in explanation.stories}
        assert rules <= {"epoch", "deadline-backstop"}

    def test_stories_reconstruct_windows_and_lengths(self):
        explanation = explain_trace(run_with_trace("batch"))
        for story in explanation.stories:
            assert story.arrival is not None
            assert story.deadline is not None and story.deadline >= story.arrival
            assert story.length is not None and story.length > 0
            assert story.completion == pytest.approx(story.start + story.length)


class TestUninstrumentedSchedulers:
    def test_eager_starts_are_honestly_unattributed(self):
        explanation = explain_trace(run_with_trace("eager"))
        assert not explanation.fully_attributed
        assert explanation.attributed == 0
        assert explanation.unattributed == len(explanation.stories)
        # the audit cross-check still runs on the rebuilt schedule
        assert explanation.audit_feasible is True
        assert "UNATTRIBUTED" in explanation.render()


class TestNarrative:
    def test_narrative_names_rule_and_scheduler(self):
        explanation = explain_trace(run_with_trace("batch+"))
        text = explanation.render()
        assert "attributed" in text
        assert "audit     : feasible" in text
        assert any(
            rule in text for rule in ("deadline-flag", "batch-start", "open-phase")
        )
        assert "[batch+]" in text

    def test_render_limit_truncates(self):
        explanation = explain_trace(run_with_trace("batch"))
        text = explanation.render(limit=2)
        assert "more jobs" in text

    def test_empty_trace_explains_nothing(self):
        explanation = explain_trace(TraceRecorder())
        assert explanation.stories == []
        assert explanation.audit_feasible is None
