"""Edge cases of the paper's same-time and boundary semantics.

These tests pin the subtle interactions that make or break fidelity:
flag hand-offs at shared instants, category boundaries at exact powers,
deadline events racing completions, and rational rescaling in the exact
solver.
"""

from __future__ import annotations

import pytest

from repro.core import Instance, Job, simulate
from repro.offline import exact_optimal_schedule, exact_optimal_span
from repro.schedulers import (
    Batch,
    BatchPlus,
    ClassifyByDurationBatchPlus,
    Profit,
)


class TestBatchPlusHandoffs:
    def test_no_pending_during_open_phase_invariant(self):
        """A job can never pend while a flag runs (arrivals during the
        open phase start immediately) — so every started job either
        belongs to its iteration's batch instant or lies strictly inside
        the flag's active interval."""
        from repro.workloads import poisson_instance

        for seed in range(5):
            inst = poisson_instance(40, seed=seed)
            result = simulate(BatchPlus(), inst)
            for rec in result.scheduler.iterations:
                flag = result.instance[rec.flag_id]
                flag_end = rec.start_time + flag.known_length
                for jid in rec.batch_job_ids:
                    assert result.schedule.start_of(jid) == rec.start_time
                for jid in rec.open_started_job_ids:
                    s = result.schedule.start_of(jid)
                    assert rec.start_time < s < flag_end

    def test_arrival_at_flag_completion_instant_buffers(self):
        """An arrival exactly at the flag's completion is NOT inside the
        half-open active interval: it buffers for the next iteration."""
        inst = Instance.from_triples([(0, 0, 4), (4, 5, 1)], name="boundary")
        result = simulate(BatchPlus(), inst)
        assert result.schedule.start_of(1) == 9.0  # its own deadline
        assert result.scheduler.flag_job_ids == [0, 1]

    def test_arrival_just_before_completion_joins(self):
        inst = Instance.from_triples(
            [(0, 0, 4), (3.999, 5, 1)], name="just-in"
        )
        result = simulate(BatchPlus(), inst)
        assert result.schedule.start_of(1) == pytest.approx(3.999)
        assert result.scheduler.flag_job_ids == [0]


class TestBatchSameInstant:
    def test_two_deadlines_same_instant_one_iteration(self):
        inst = Instance.from_triples(
            [(0, 3, 1), (1, 2, 5), (2, 1, 2)], name="triple-tie"
        )
        result = simulate(Batch(), inst)
        # all three deadlines are t=3: one flag, one batch of three.
        assert len(result.scheduler.flag_job_ids) == 1
        assert all(result.schedule.start_of(j) == 3.0 for j in (0, 1, 2))

    def test_deadline_at_foreign_completion_instant(self):
        """A pending job's deadline falling exactly at another job's
        completion still fires (completion first, then deadline)."""
        inst = Instance.from_triples([(0, 0, 3), (1, 2, 1)], name="race")
        result = simulate(Batch(), inst)
        assert result.schedule.start_of(1) == 3.0


class TestProfitBoundaryProfit:
    def test_exactly_k_times_length_is_profitable(self):
        # p(J1) == k·p(flag) exactly: the paper's condition is <=, so it
        # joins the iteration.
        inst = Instance.from_triples([(0, 1, 2), (0, 9, 4)], name="eq-k")
        result = simulate(Profit(k=2.0), inst, clairvoyant=True)
        assert result.scheduler.flag_job_ids == [0]
        assert result.schedule.start_of(1) == 1.0

    def test_just_over_k_times_length_waits(self):
        inst = Instance.from_triples([(0, 1, 2), (0, 9, 4.0001)], name="over-k")
        result = simulate(Profit(k=2.0), inst, clairvoyant=True)
        assert sorted(result.scheduler.flag_job_ids) == [0, 1]
        assert result.schedule.start_of(1) == 9.0

    def test_arrival_boundary_of_flag_interval(self):
        # flag runs [1, 3); arrival exactly at 3 sees no active flag.
        inst = Instance.from_triples([(0, 1, 2), (3, 4, 1)], name="edge")
        result = simulate(Profit(k=2.0), inst, clairvoyant=True)
        assert result.schedule.start_of(1) == 7.0  # its own deadline


class TestCdbBoundaryCategories:
    def test_exact_power_lengths_single_category_per_power(self):
        alpha = 1.0 + (2.0 / 3.0) ** 0.5  # the paper's α*
        # lengths exactly α^1 and α^2: categories 1 and 2 (no off-by-one
        # from float log rounding).
        inst = Instance(
            [
                Job(0, 0.0, 5.0, alpha),
                Job(1, 0.0, 5.0, alpha**2),
                Job(2, 0.0, 5.0, alpha**2 * 0.999),  # inside category 2
            ],
            name="powers",
        )
        result = simulate(
            ClassifyByDurationBatchPlus(alpha=alpha), inst, clairvoyant=True
        )
        cats = result.scheduler.category_flag_jobs
        assert len(cats) == 2
        sizes = sorted(len(v) for v in cats.values())
        # category 2 holds jobs 1 and 2 under one flag; category 1 holds job 0
        assert sizes == [1, 1]


class TestExactSolverRationals:
    def test_quarter_grid_rescaling(self):
        inst = Instance(
            [Job(0, 0.25, 1.5, 0.75), Job(1, 0.5, 2.0, 1.25)], name="quarters"
        )
        res = exact_optimal_schedule(inst)
        res.schedule.validate()
        # both can fully overlap: OPT = max length
        assert res.span == pytest.approx(1.25)
        # and the witness starts live on the original (quarter) grid
        for jid, s in res.schedule.starts().items():
            assert (s * 4).is_integer()

    def test_mixed_denominators(self):
        inst = Instance(
            [Job(0, 0.0, 1.0 / 3.0, 0.5), Job(1, 0.25, 1.0, 1.0 / 3.0)],
            name="mixed",
        )
        span = exact_optimal_span(inst)
        # J0 window [0, 1/3], p=1/2; J1 window [1/4, 1], p=1/3.
        # Best: J0 at 1/3 → [1/3, 5/6); J1 inside it (e.g. at 1/3) → 1/2.
        assert span == pytest.approx(0.5)


class TestZeroLengthBoundary:
    def test_min_positive_lengths(self):
        """Tiny (but positive) lengths flow through the whole pipeline."""
        inst = Instance(
            [Job(0, 0.0, 1.0, 1e-9), Job(1, 0.0, 1.0, 1.0)], name="tiny"
        )
        result = simulate(BatchPlus(), inst)
        result.schedule.validate()
        assert result.span >= 1.0 - 1e-12
