"""Unit tests for schedule metrics (concurrency, parallelism, ratios)."""

from __future__ import annotations

import pytest

from repro.core import Instance, Schedule, span_ratio
from repro.core.metrics import (
    concurrency_profile,
    max_concurrency,
    overlap_fraction,
    parallelism,
    schedule_concurrency,
)


@pytest.fixture
def batch_schedule(batchable_instance):
    """All four jobs started together at t=4."""
    return Schedule(batchable_instance, {0: 4.0, 1: 4.0, 2: 4.0, 3: 4.0})


class TestConcurrencyProfile:
    def test_empty(self):
        prof = concurrency_profile([], [])
        assert prof.peak == 0
        assert prof.at(0.0) == 0

    def test_single_interval(self):
        prof = concurrency_profile([1.0], [2.0])
        assert prof.at(0.5) == 0
        assert prof.at(1.0) == 1
        assert prof.at(2.999) == 1
        assert prof.at(3.0) == 0  # half-open

    def test_stacked(self):
        prof = concurrency_profile([0, 0, 1], [2, 3, 1])
        assert prof.at(0.5) == 2
        assert prof.at(1.5) == 3
        assert prof.at(2.5) == 1
        assert prof.peak == 3

    def test_zero_length_ignored(self):
        prof = concurrency_profile([0, 0], [0, 1])
        assert prof.peak == 1

    def test_time_at_least(self):
        prof = concurrency_profile([0, 0, 1], [2, 3, 1])
        assert prof.time_at_least(1) == pytest.approx(3.0)
        assert prof.time_at_least(2) == pytest.approx(2.0)
        assert prof.time_at_least(3) == pytest.approx(1.0)
        assert prof.time_at_least(4) == 0.0

    def test_simultaneous_start_and_end_collapse(self):
        # [0,1) and [1,2): at t=1 the counts must hand over cleanly.
        prof = concurrency_profile([0, 1], [1, 1])
        assert prof.at(1.0) == 1
        assert prof.peak == 1


class TestScheduleMetrics:
    def test_max_concurrency(self, batch_schedule):
        assert max_concurrency(batch_schedule) == 4

    def test_schedule_concurrency_matches(self, batch_schedule):
        prof = schedule_concurrency(batch_schedule)
        assert prof.at(4.5) == 4

    def test_parallelism(self, batch_schedule):
        # total work 9, span 3 (longest job) → parallelism 3
        assert parallelism(batch_schedule) == pytest.approx(3.0)

    def test_parallelism_empty(self):
        sched = Schedule(Instance([]), {})
        assert parallelism(sched) == 0.0

    def test_span_ratio(self, batch_schedule):
        assert span_ratio(batch_schedule, 1.5) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            span_ratio(batch_schedule, 0.0)

    def test_overlap_fraction_fully_parallel(self, batch_schedule):
        # Two length-3 jobs cover [4,7) together, so no instant has exactly
        # one running job: solo time 0 → overlap fraction 1.
        assert overlap_fraction(batch_schedule) == pytest.approx(1.0)

    def test_overlap_fraction_serial(self, serial_instance):
        sched = Schedule(serial_instance, {0: 0.0, 1: 4.0, 2: 8.0})
        assert overlap_fraction(sched) == pytest.approx(0.0)
