"""Tests for the invariant-certification layer (RL013–RL016).

Covers the four program rules on their fixture packages (offending and
clean), the RL013 static model ⇄ ``REPRO_PARITY`` runtime lockstep
cross-validation in *both* directions on the shared mini-core fixtures
(mirroring the RL001/ClairvoyanceGuard pattern), the RL015 static ⇄
``repro obs explain --strict`` runtime cross-validation, the shipped
tree's finding-free verdict (and its non-vacuity: the real engine cores
opt into the parity model), the ruleset-source cache invalidation
regression, and ``--jobs`` bit-identity with the new rules active.
"""

from __future__ import annotations

import ast
import importlib
import importlib.util
import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    ALL_RULES,
    AnalysisCache,
    Program,
    ProgramRule,
    default_target,
    lint_paths,
    rule_by_code,
)
from repro.lint.base import Rule
from repro.lint.dataflow import extract_summary, module_name_for
from repro.lint.dataflow.cache import ruleset_digest
from repro.lint.invariants.parity import COMPARED_METHODS, extract_core_model

FIXTURES = Path(__file__).parent / "data" / "lint_fixtures"
PARITY_PKG = FIXTURES / "parity_pkg"
PARITY_DRIFT_PKG = FIXTURES / "parity_drift_pkg"
TYPESTATE_PKG = FIXTURES / "typestate_pkg"
VOCAB_BAD_PKG = FIXTURES / "vocab_bad_pkg"
VOCAB_CLEAN_PKG = FIXTURES / "vocab_clean_pkg"
MONOTONE_PKG = FIXTURES / "monotone_pkg"
REPO_ROOT = Path(__file__).resolve().parents[1]

INVARIANT_CODES = {"RL013", "RL014", "RL015", "RL016"}

#: Shared workload for the static ⇄ runtime parity cross-validation.
#: Two same-time arrivals (cohort path), a later arrival that queues
#: behind a running job, and a same-time arrival pair at t=4.
JOBS = [(10, 0.0, 2.0), (11, 0.0, 1.0), (12, 1.5, 0.5), (13, 4.0, 3.0), (14, 4.0, 1.0)]
EXPECTED_STARTS = {10: 0.0, 11: 2.0, 12: 3.0, 13: 4.0, 14: 7.0}


def codes(findings) -> set[str]:
    return {f.rule for f in findings}


def by_rule(findings, code: str):
    return [f for f in findings if f.rule == code]


def invariant_findings(report):
    return [f for f in report.findings if f.rule in INVARIANT_CODES]


def _import_fixture_module(dotted: str):
    """Import ``parity_pkg.object_core``-style fixture modules."""
    if str(FIXTURES) not in sys.path:
        sys.path.insert(0, str(FIXTURES))
    return importlib.import_module(dotted)


def _program_for(*files: Path) -> Program:
    summaries = []
    for f in files:
        src = f.read_text()
        summaries.append(
            extract_summary(str(f), src, ast.parse(src), module_name_for(f), None)
        )
    return Program(summaries)


def _run_cli(*argv: str, cwd: Path | None = None, env_extra: dict | None = None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.update(env_extra or {})
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True,
        text=True,
        cwd=str(cwd or REPO_ROOT),
        env=env,
    )


# ---------------------------------------------------------------------------
# Registry / plumbing
# ---------------------------------------------------------------------------


class TestInvariantRulePlumbing:
    def test_rules_registered(self):
        assert INVARIANT_CODES <= {r.code for r in ALL_RULES}

    def test_rules_are_program_rules(self):
        for code in sorted(INVARIANT_CODES):
            assert isinstance(rule_by_code(code), ProgramRule)

    def test_docstrings_carry_offending_and_clean_snippets(self):
        # --explain sources its payload from the class docstring; every
        # invariant rule must document both sides.
        for code in sorted(INVARIANT_CODES):
            doc = type(rule_by_code(code)).__doc__ or ""
            assert "Offending" in doc, code
            assert "Clean" in doc, code

    @pytest.mark.parametrize("code", sorted(INVARIANT_CODES))
    def test_explain_cli(self, code):
        proc = _run_cli("--explain", code)
        assert proc.returncode == 0, proc.stderr
        assert code in proc.stdout
        assert "Offending" in proc.stdout


# ---------------------------------------------------------------------------
# RL013 core-parity-drift: static side
# ---------------------------------------------------------------------------


class TestRL013Static:
    def test_clean_pair_has_no_findings(self):
        report = lint_paths([PARITY_PKG])
        assert by_rule(report.findings, "RL013") == []

    def test_drift_pair_findings(self):
        report = lint_paths([PARITY_DRIFT_PKG])
        found = by_rule(report.findings, "RL013")
        assert len(found) == 5
        assert all(f.path.endswith("columnar_core.py") for f in found)
        messages = [f.message for f in found]
        # Drift 1: a field written in one core with no mapping/annotation.
        unmapped = [m for m in messages if "no _PARITY_FIELDS mapping" in m]
        assert len(unmapped) == 1 and "'retries'" in unmapped[0]
        # Drift 2: an exception only one core's closure can raise.
        exc = [m for m in messages if "can produce exception" in m]
        assert len(exc) == 1 and "SimulationError" in exc[0]
        # Drift 3: a wrong-side annotation contradicting _PARITY_CORE.
        # It fires once per compared method that reaches the write
        # (_start_job is a one-level callee of both handlers).
        wrong_side = [m for m in messages if "the annotation contradicts" in m]
        assert len(wrong_side) == 3
        syms = {f.symbol for f in found if "the annotation contradicts" in f.message}
        assert syms == {
            "DriftingColumnarCore._handle_arrival",
            "DriftingColumnarCore._handle_completion",
            "DriftingColumnarCore._start_job",
        }

    def test_extract_core_model_is_not_vacuous(self):
        program = _program_for(
            PARITY_PKG / "object_core.py", PARITY_PKG / "columnar_core.py"
        )
        obj = extract_core_model(program, "parity_pkg.object_core")
        col = extract_core_model(program, "parity_pkg.columnar_core")
        assert obj is not None and col is not None
        assert obj.side == "object" and col.side == "columnar"
        # Peers are mutual — that is what arms the pairwise comparison.
        assert obj.peer == "parity_pkg.columnar_core"
        assert col.peer == "parity_pkg.object_core"
        obj_tokens = set().union(*(obj.tokens(m) for m in obj.writes))
        col_tokens = set().union(*(col.tokens(m) for m in col.writes))
        assert obj_tokens == col_tokens
        assert {"start-time", "lifecycle", "busy-until", "pending-index"} >= obj_tokens
        assert obj_tokens  # the model actually saw writes

    def test_extract_core_model_requires_opt_in(self):
        program = _program_for(MONOTONE_PKG / "clean.py")
        assert extract_core_model(program, "monotone_pkg.clean") is None


# ---------------------------------------------------------------------------
# RL013 cross-validation: static model ⇄ runtime lockstep on shared fixtures
# ---------------------------------------------------------------------------


class TestRL013CrossValidation:
    """Both directions, mirroring RL001/ClairvoyanceGuard.

    The clean pair passes the static rule AND runs identically; the
    drift pair is flagged statically AND diverges at runtime.  The two
    catchers overlap but are not redundant: the ``retries`` field drift
    is invisible at runtime (it never changes the schedule), while the
    ``start_col = arrival`` drift is invisible statically (the write is
    mapped) — each side catches what the other cannot.
    """

    def test_clean_pair_static_and_runtime_agree(self):
        report = lint_paths([PARITY_PKG])
        assert by_rule(report.findings, "RL013") == []

        obj_mod = _import_fixture_module("parity_pkg.object_core")
        col_mod = _import_fixture_module("parity_pkg.columnar_core")
        obj = obj_mod.ObjectMiniCore().run(JOBS)
        fast = col_mod.ColumnarMiniCore().run(JOBS)
        armed = col_mod.ColumnarMiniCore().run(JOBS, armed=True)
        assert obj == fast == armed == EXPECTED_STARTS

    def test_drift_pair_caught_statically_and_at_runtime(self):
        report = lint_paths([PARITY_DRIFT_PKG])
        assert len(by_rule(report.findings, "RL013")) == 5

        obj_mod = _import_fixture_module("parity_drift_pkg.object_core")
        col_mod = _import_fixture_module("parity_drift_pkg.columnar_core")
        obj = obj_mod.ObjectMiniCore().run(JOBS)
        drifted = col_mod.DriftingColumnarCore().run(JOBS)
        assert obj == EXPECTED_STARTS
        assert drifted != obj
        # The runtime-only drift: starts recorded at arrival, not clock.
        assert drifted[12] == 1.5 and obj[12] == 3.0

    def test_runtime_only_drift_is_statically_invisible(self):
        # 'start_col' is mapped in _PARITY_FIELDS on both sides, so the
        # wrong *value* written to it cannot be a static finding — that
        # is exactly what the REPRO_PARITY=1 lockstep twin exists for
        # (see tests/test_core_parity.py for the real-engine half).
        report = lint_paths([PARITY_DRIFT_PKG])
        assert not any(
            "start_col" in f.message for f in by_rule(report.findings, "RL013")
        )

    def test_compared_methods_cover_real_engine_event_loop(self):
        # The method list the model compares is the real engine's
        # dispatch surface, not an arbitrary fixture convention.
        from repro.core.engine import Simulator

        assert {"_handle_arrival", "_handle_completion", "_start_job"} <= set(
            COMPARED_METHODS
        )
        for name in ("_handle_arrival", "_handle_completion", "_start_job"):
            assert hasattr(Simulator, name)


# ---------------------------------------------------------------------------
# RL014 lifecycle-typestate
# ---------------------------------------------------------------------------


class TestRL014Typestate:
    def test_offending_fixture(self):
        report = lint_paths([TYPESTATE_PKG])
        found = by_rule(report.findings, "RL014")
        assert len(found) == 5
        assert all(f.path.endswith("bad.py") for f in found)
        messages = "\n".join(f.message for f in found)
        # Illegal lifecycle writes, one per phase violation.
        assert "'_DONE' in _handle_arrival" in messages
        assert "'completed' in _handle_arrival" in messages
        assert "'_RUNNING' in _handle_completion" in messages
        assert "'_PENDING' in _start_job" in messages
        # The deadline-backstop half: starting jobs from on_deadline
        # without emitting a deadline-attributed decision.
        backstop = [f for f in found if "without emitting" in f.message]
        assert len(backstop) == 1
        assert backstop[0].symbol == "SilentDeadlineScheduler.on_deadline"

    def test_clean_fixture(self):
        report = lint_paths([TYPESTATE_PKG / "clean.py"])
        assert by_rule(report.findings, "RL014") == []


# ---------------------------------------------------------------------------
# RL015 decision-vocabulary-exhaustiveness
# ---------------------------------------------------------------------------


class TestRL015Vocabulary:
    def test_offending_fixture(self):
        report = lint_paths([VOCAB_BAD_PKG])
        found = by_rule(report.findings, "RL015")
        assert len(found) == 4
        messages = [f.message for f in found]
        dead = [m for m in messages if "never emitted" in m]
        # 'ghost-rule' is never emitted anywhere; 'epoch' is only
        # "emitted" through string concatenation, which a closed
        # vocabulary deliberately refuses to credit.
        assert len(dead) == 2
        assert any("'ghost-rule'" in m for m in dead)
        assert any("'epoch'" in m for m in dead)
        assert sum("not in the DECISION_RULES vocabulary" in m for m in messages) == 1
        assert sum("not a string literal" in m for m in messages) == 1

    def test_clean_fixture(self):
        report = lint_paths([VOCAB_CLEAN_PKG])
        assert by_rule(report.findings, "RL015") == []

    def test_vocabulary_matches_obs_export(self):
        # The static rule and the runtime reconciler read the same
        # closed 7-rule vocabulary.
        from repro.obs import decision_vocabulary
        from repro.obs.records import DECISION_RULES

        vocab = decision_vocabulary()
        assert vocab == frozenset(DECISION_RULES)
        assert len(vocab) == 7
        assert "deadline-backstop" in vocab


class TestRL015RuntimeCrossValidation:
    """An out-of-vocabulary reason is caught statically (fixture above)
    AND at runtime by ``repro obs explain --strict``."""

    def _trace(self, tmp_path: Path) -> tuple[Path, Path]:
        from repro.core import Instance, Simulator
        from repro.obs import TraceRecorder

        from repro.schedulers import make_scheduler

        inst = Instance.from_triples([(0, 2, 1), (0, 2, 3), (1, 3, 2)], name="rl015")
        rec = TraceRecorder()
        Simulator(make_scheduler("batch"), instance=inst, recorder=rec).run()
        clean = tmp_path / "clean.jsonl"
        rec.write_jsonl(clean)
        # Inject the same out-of-vocabulary reason the static fixture
        # uses, on a real decision record so the start stays attributed
        # (isolating the vocabulary failure from the attribution one).
        mutated, bad_lines = False, []
        for line in clean.read_text().splitlines():
            obj = json.loads(line)
            if not mutated and obj.get("kind") == "decision":
                obj["name"] = "panic-start"
                mutated = True
            bad_lines.append(json.dumps(obj))
        assert mutated
        bad = tmp_path / "bad.jsonl"
        bad.write_text("\n".join(bad_lines) + "\n")
        return clean, bad

    def test_explain_trace_flags_unknown_rule(self, tmp_path):
        from repro.obs import TraceRecorder
        from repro.obs.explain import explain_trace

        rec = TraceRecorder()
        rec.decision("panic-start", job=0, t=0.0, scheduler="rogue")
        exp = explain_trace(rec)
        assert exp.unknown_rules == {"panic-start": 1}
        assert not exp.vocabulary_clean

    def test_strict_cli_rejects_out_of_vocabulary_reason(self, tmp_path):
        clean, bad = self._trace(tmp_path)
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        run = lambda f: subprocess.run(  # noqa: E731
            [sys.executable, "-m", "repro", "obs", "explain", str(f), "--strict"],
            capture_output=True,
            text=True,
            env=env,
        )
        ok = run(clean)
        assert ok.returncode == 0, ok.stderr
        rejected = run(bad)
        assert rejected.returncode == 1
        assert "panic-start" in rejected.stdout
        assert "out-of-vocabulary" in rejected.stderr


# ---------------------------------------------------------------------------
# RL016 time-monotonicity
# ---------------------------------------------------------------------------


class TestRL016Monotone:
    def test_offending_fixture(self):
        report = lint_paths([MONOTONE_PKG])
        found = by_rule(report.findings, "RL016")
        assert len(found) == 3
        assert all(f.path.endswith("bad.py") for f in found)
        messages = "\n".join(f.message for f in found)
        assert "push key 'retry'" in messages
        assert "push key 'when'" in messages
        assert "clock write from 'checkpoint'" in messages

    def test_clean_fixture(self):
        # Anchored, guarded, axiom, vectorised-guard, and helper-vetted
        # pushes are all proven monotone — no false positives.
        report = lint_paths([MONOTONE_PKG / "clean.py"])
        assert by_rule(report.findings, "RL016") == []


# ---------------------------------------------------------------------------
# Shipped tree: finding-free and non-vacuously so
# ---------------------------------------------------------------------------


class TestShippedTree:
    def test_shipped_tree_is_finding_free(self):
        report = lint_paths([default_target()])
        offenders = invariant_findings(report)
        assert offenders == [], [f.render() for f in offenders]
        assert report.files_scanned > 50

    def test_real_engine_cores_opt_into_parity_model(self):
        # The clean verdict above is a real comparison, not a vacuous
        # pass: both engine cores declare sides, mutual peers, and a
        # shared field vocabulary.
        src = REPO_ROOT / "src" / "repro" / "core"
        program = _program_for(src / "engine.py", src / "columnar.py")
        obj = extract_core_model(program, "repro.core.engine")
        col = extract_core_model(program, "repro.core.columnar")
        assert obj is not None and col is not None
        assert obj.side == "object" and col.side == "columnar"
        assert obj.peer == "repro.core.columnar"
        assert col.peer == "repro.core.engine"
        obj_tokens = set().union(*(obj.tokens(m) for m in obj.writes))
        col_tokens = set().union(*(col.tokens(m) for m in col.writes))
        assert obj_tokens and col_tokens
        assert obj.kinds and col.kinds


# ---------------------------------------------------------------------------
# Cache: editing a rule's source invalidates cached summaries
# ---------------------------------------------------------------------------

_RULE_V1 = '''
from repro.lint.base import Rule


class TempRule(Rule):
    code = "RL900"
    name = "temp-rule"
    description = "cache-regression probe"

    def check(self, ctx):
        return iter(())
'''

# Same code, same behaviour — only the implementation text changed.
_RULE_V2 = _RULE_V1.replace("return iter(())", "return iter(())  # edited")


def _load_rule(path: Path, mod_name: str):
    spec = importlib.util.spec_from_file_location(mod_name, path)
    mod = importlib.util.module_from_spec(spec)
    sys.modules[mod_name] = spec.loader.exec_module(mod) or mod
    return mod.TempRule()


class TestRulesetSourceInvalidation:
    def test_editing_rule_source_reanalyzes(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("X = 1\n")
        (pkg / "b.py").write_text("Y = 2\n")

        # Two files, not one overwritten in place: ``inspect.getsource``
        # resolves through ``linecache`` by path, so rewriting the file
        # would silently change what v1's class reports as its source.
        rule_file = tmp_path / "temprule_v1.py"
        rule_file.write_text(_RULE_V1)
        v1 = _load_rule(rule_file, "temprule_v1")

        # The per-file phase resolves rules by code from the registry,
        # so the probe rule must be registered while it runs.
        ALL_RULES.append(v1)
        try:
            cache = AnalysisCache(tmp_path / "cache.json")
            first = lint_paths([pkg], rules=[v1], cache=cache)
            assert first.files_reanalyzed == 2
            second = lint_paths([pkg], rules=[v1], cache=cache)
            assert second.files_reanalyzed == 0

            # Edit the rule's implementation (even just a comment): the
            # ruleset digest covers rule *source*, so every cached record
            # keyed under the old behaviour must be re-derived.
            rule_file_v2 = tmp_path / "temprule_v2.py"
            rule_file_v2.write_text(_RULE_V2)
            v2 = _load_rule(rule_file_v2, "temprule_v2")
            assert ruleset_digest([v1]) != ruleset_digest([v2])
            ALL_RULES.remove(v1)
            ALL_RULES.append(v2)
            third = lint_paths([pkg], rules=[v2], cache=cache)
            assert third.files_reanalyzed == 2
        finally:
            ALL_RULES[:] = [r for r in ALL_RULES if r.code != "RL900"]

    def test_digest_covers_invariant_rules(self):
        # The shipped digest is sensitive to the full active rule set,
        # invariant rules included.
        without = [r for r in ALL_RULES if r.code not in INVARIANT_CODES]
        assert ruleset_digest(list(ALL_RULES)) != ruleset_digest(without)


# ---------------------------------------------------------------------------
# --jobs bit-identity with the invariant rules active
# ---------------------------------------------------------------------------


class TestJobsBitIdentity:
    def test_parallel_report_identical_to_serial(self):
        serial = lint_paths([FIXTURES])
        parallel = lint_paths([FIXTURES], jobs=2)
        assert serial.render_json() == parallel.render_json()
        # The comparison exercises the new rules, not an empty report.
        assert INVARIANT_CODES <= codes(serial.findings)
