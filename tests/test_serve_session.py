"""TenantSession semantics: apply, output records, failure containment."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.engine import simulate
from repro.core.errors import SimulationError
from repro.core.job import Instance
from repro.obs.records import DECISION_RULES
from repro.schedulers.registry import make_scheduler
from repro.serve.protocol import ProtocolError
from repro.serve.session import TenantSession


def job_op(tenant, job_id, arrival, deadline, length, **extra):
    op = {
        "op": "job", "tenant": tenant, "id": job_id, "arrival": arrival,
        "deadline": deadline, "length": length,
    }
    op.update(extra)
    return op


def drive(session, jobs, close=True):
    """Feed (arrival, deadline, length) triples; return all outputs."""
    outs = list(session.hello())
    for i, (a, d, p) in enumerate(jobs):
        outs += session.apply(job_op(session.tenant, i, a, d, p))
    if close:
        outs += session.apply({"op": "close", "tenant": session.tenant})
    return outs


class TestSessionBasics:
    def test_hello_record(self):
        session = TenantSession("t1")
        outs = session.hello()
        assert outs == [
            {
                "kind": "serve.open", "tenant": "t1", "scheduler": "batch+",
                "clairvoyant": False,
            }
        ]

    def test_params_forwarded_and_reported(self):
        session = TenantSession("t1", scheduler="cdb", params={"alpha": 2.0})
        (rec,) = session.hello()
        assert rec["scheduler"] == "cdb"
        assert rec["params"] == {"alpha": 2.0}

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ProtocolError):
            TenantSession("t1", scheduler="no-such-algorithm")

    def test_bad_params_rejected(self):
        with pytest.raises(ProtocolError, match="bad scheduler params"):
            TenantSession("t1", scheduler="cdb", params={"wat": 1})

    def test_full_stream_output_kinds(self):
        session = TenantSession("t1")
        outs = drive(session, [(0, 2, 1), (0.5, 1, 3)])
        kinds = [o["kind"] for o in outs]
        assert kinds[0] == "serve.open"
        assert kinds[-1] == "serve.closed"
        assert "start" in kinds and "complete" in kinds
        assert "decision" in kinds
        assert all(o["tenant"] == "t1" for o in outs)
        assert session.closed and session.result is not None

    def test_decisions_use_closed_vocabulary(self):
        session = TenantSession("t1")
        outs = drive(session, [(0, 2, 1), (0.5, 1.5, 3), (4, 5, 2)])
        rules = {o["rule"] for o in outs if o["kind"] == "decision"}
        assert rules  # batch+ always explains its starts
        assert rules <= set(DECISION_RULES)

    def test_closed_record_matches_batch_span(self):
        inst = Instance.from_triples([(0, 2, 1), (0.5, 1, 3), (4, 1, 2)])
        batch = simulate(make_scheduler("batch+"), inst, core="object")
        session = TenantSession("t1")
        outs = drive(
            session, [(j.arrival, j.deadline, j.length) for j in inst.jobs]
        )
        closed = outs[-1]
        assert closed["span"] == batch.span
        assert closed["jobs"] == len(inst.jobs)
        starts = {o["job"]: o["t"] for o in outs if o["kind"] == "start"}
        assert starts == batch.schedule.starts()

    def test_advance_op_flushes_due_events(self):
        session = TenantSession("t1")
        session.hello()
        session.apply(job_op("t1", 0, 0.0, 2.0, 1.0))
        outs = session.apply({"op": "advance", "tenant": "t1", "t": 10.0})
        assert {o["kind"] for o in outs} >= {"start", "complete"}
        assert session.clock == 10.0

    def test_emitted_counts_every_output(self):
        session = TenantSession("t1")
        outs = drive(session, [(0, 2, 1)])
        assert session.emitted == len(outs)


class TestSessionFailureContainment:
    def test_past_arrival_rejected_session_live(self):
        session = TenantSession("t1")
        session.hello()
        session.apply({"op": "advance", "tenant": "t1", "t": 5.0})
        with pytest.raises(SimulationError, match="past"):
            session.apply(job_op("t1", 0, 1.0, 3.0, 1.0))
        assert session.failed is None
        # The session still accepts future work.
        outs = session.apply(job_op("t1", 1, 6.0, 8.0, 1.0))
        assert isinstance(outs, list)

    def test_past_advance_rejected_session_live(self):
        session = TenantSession("t1")
        session.hello()
        session.apply({"op": "advance", "tenant": "t1", "t": 5.0})
        with pytest.raises(SimulationError, match="in the past"):
            session.apply({"op": "advance", "tenant": "t1", "t": 2.0})
        assert session.failed is None

    def test_duplicate_job_id_rejected_session_live(self):
        session = TenantSession("t1")
        session.hello()
        session.apply(job_op("t1", 7, 0.0, 2.0, 1.0))
        with pytest.raises(SimulationError, match="duplicate"):
            session.apply(job_op("t1", 7, 0.5, 2.0, 1.0))
        assert session.failed is None

    def test_bad_job_fields_rejected_before_engine(self):
        session = TenantSession("t1")
        session.hello()
        with pytest.raises(ProtocolError):
            session.apply(job_op("t1", 0, 0.0, 2.0, -1.0))
        assert session.failed is None
        assert session.input_log == []  # nothing was applied

    def test_close_twice_rejected(self):
        session = TenantSession("t1")
        drive(session, [(0, 2, 1)])
        with pytest.raises(ProtocolError, match="already closed"):
            session.apply({"op": "close", "tenant": "t1"})

    def test_non_stream_op_rejected(self):
        session = TenantSession("t1")
        session.hello()
        with pytest.raises(ProtocolError, match="not a stream op"):
            session.apply({"op": "stats"})

    def test_mid_dispatch_failure_poisons(self, monkeypatch):
        session = TenantSession("t1")
        session.hello()

        def boom(until, *, inclusive=True):
            raise RuntimeError("scheduler exploded")

        monkeypatch.setattr(session.sim, "advance", boom)
        with pytest.raises(RuntimeError):
            session.apply(job_op("t1", 0, 1.0, 3.0, 1.0))
        assert session.failed == "RuntimeError: scheduler exploded"
        with pytest.raises(SimulationError, match="failed earlier"):
            session.apply(job_op("t1", 1, 2.0, 4.0, 1.0))


class TestSessionTrace:
    def test_trace_reconciles_under_strict_explain(self, tmp_path):
        session = TenantSession("t1")
        drive(session, [(0, 2, 1), (0.5, 1.5, 3), (4, 5, 2)])
        path = session.write_trace(tmp_path)
        assert main(["obs", "explain", path, "--strict"]) == 0

    def test_trace_meta_identifies_session(self, tmp_path):
        from repro.obs import read_jsonl

        session = TenantSession("t9", scheduler="batch")
        drive(session, [(0, 2, 1)])
        loaded = read_jsonl(session.write_trace(tmp_path))
        assert loaded.meta["tenant"] == "t9"
        assert loaded.meta["scheduler"] == "batch"
        assert loaded.meta["command"] == "serve"


class TestSessionCohortParity:
    def test_same_time_jobs_fed_line_by_line_batch_identically(self):
        inst = Instance.from_triples(
            [(0, 4, 3), (0, 4, 2), (0, 4, 3), (3, 4, 1)]
        )
        batch = simulate(make_scheduler("batch+"), inst, core="object")
        session = TenantSession("t1")
        outs = drive(
            session, [(j.arrival, j.deadline, j.length) for j in inst.jobs]
        )
        starts = {o["job"]: o["t"] for o in outs if o["kind"] == "start"}
        assert starts == batch.schedule.starts()
