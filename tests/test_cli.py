"""Unit tests for the CLI."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nope"])


class TestRun:
    def test_run_prints_metrics(self, capsys):
        assert main(["run", "batch+", "--jobs", "10"]) == 0
        out = capsys.readouterr().out
        assert "span" in out and "lower bnd" in out

    def test_run_with_gantt(self, capsys):
        assert main(["run", "eager", "--jobs", "5", "--gantt"]) == 0
        assert "█" in capsys.readouterr().out

    def test_run_clairvoyant_scheduler(self, capsys):
        assert main(["run", "profit", "--jobs", "10"]) == 0

    def test_run_zero_jobs(self, capsys):
        assert main(["run", "batch", "--jobs", "0"]) == 0
        out = capsys.readouterr().out
        assert "span      : 0.0000" in out
        assert "ratio <= 1.0000" in out

    def test_run_unknown_engine_core_is_clean_error(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_CORE", "turbo")
        assert main(["run", "batch", "--jobs", "5"]) == 2
        err = capsys.readouterr().err
        assert "error: unknown engine core 'turbo'" in err


class TestCompare:
    def test_compare_lower_bound(self, capsys):
        assert main(["compare", "--jobs", "15", "--instances", "2"]) == 0
        out = capsys.readouterr().out
        assert "batch+" in out and "profit" in out and "mean ratio" in out

    def test_compare_exact(self, capsys):
        assert main(["compare", "--exact", "--jobs", "6", "--instances", "2"]) == 0
        assert "exact optimum" in capsys.readouterr().out


class TestAdversary:
    def test_nonclairvoyant_replay(self, capsys):
        assert (
            main(
                [
                    "adversary", "nonclairvoyant", "batch",
                    "--mu", "4", "--k", "2", "--m", "6",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ratio" in out and "theory" in out

    def test_clairvoyant_replay(self, capsys):
        assert main(["adversary", "clairvoyant", "profit", "--n", "10"]) == 0
        assert "φ" in capsys.readouterr().out

    def test_clairvoyant_scheduler_rejected_for_nc_adversary(self, capsys):
        code = main(
            ["adversary", "nonclairvoyant", "profit", "--k", "1", "--m", "4"]
        )
        assert code == 2
        assert "clairvoyance" in capsys.readouterr().err

    def test_paper_profile_flag(self, capsys):
        assert (
            main(
                [
                    "adversary", "nonclairvoyant", "batch+",
                    "--k", "1", "--paper-profile", "--mu", "3",
                ]
            )
            == 0
        )
        assert "[16]" in capsys.readouterr().out


class TestBounds:
    def test_bounds_table(self, capsys):
        assert main(["bounds", "--mu", "4"]) == 0
        out = capsys.readouterr().out
        assert "Thm 3.4" in out and "Thm 4.11" in out
        assert "9.0000" in out  # 2μ+1 for μ=4


class TestCertify:
    def test_certify_small_instances(self, capsys):
        assert main(["certify", "batch+", "--jobs", "5", "--instances", "2"]) == 0
        out = capsys.readouterr().out
        assert "exact" in out and "ratio" in out

    def test_certify_saved_instance(self, capsys, tmp_path):
        path = str(tmp_path / "w.json")
        assert main(["workload", path, "--jobs", "6", "--integral"]) == 0
        assert main(["certify", "profit", "--instance", path]) == 0
        assert "certified" in capsys.readouterr().out


class TestWorkloadIo:
    def test_workload_roundtrip_through_run(self, capsys, tmp_path):
        path = str(tmp_path / "w.json")
        assert main(["workload", path, "--jobs", "12", "--seed", "3"]) == 0
        assert main(["run", "batch", "--instance", path]) == 0
        out = capsys.readouterr().out
        assert "span" in out

    def test_run_with_trace(self, capsys):
        assert main(["run", "eager", "--jobs", "4", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "arrival" in out and "completion" in out


class TestSummaryFlag:
    def test_run_with_summary(self, capsys):
        assert main(["run", "batch+", "--jobs", "6", "--summary"]) == 0
        out = capsys.readouterr().out
        assert "parallelism" in out and "peak concurrency" in out


class TestCompareMatrix:
    def test_compare_with_matrix(self, capsys):
        assert main(["compare", "--jobs", "15", "--instances", "2", "--matrix"]) == 0
        out = capsys.readouterr().out
        assert "head-to-head" in out
