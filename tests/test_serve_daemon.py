"""ServeDaemon robustness: backpressure, drain, restore, bad input.

No pytest-asyncio in the tier-1 environment, so every test is a sync
function wrapping its scenario in ``asyncio.run`` (with an outer
``wait_for`` so a deadlocked daemon fails the test instead of hanging
the suite).
"""

from __future__ import annotations

import asyncio
import json
import socket

import pytest

from repro.cli import main
from repro.serve.checkpoint import list_checkpoints, restore_session
from repro.serve.daemon import ServeDaemon
from repro.serve.session import TenantSession

TIMEOUT = 60.0


def run_async(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=TIMEOUT))


class Client:
    """A JSONL protocol client over a Unix socket."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, path, limit: int | None = None):
        """``limit`` caps the client-side StreamReader buffer — a truly
        stalled consumer needs a small one, or asyncio's background read
        silently absorbs ~64KB of daemon output."""
        kwargs = {} if limit is None else {"limit": limit}
        reader, writer = await asyncio.open_unix_connection(
            str(path), **kwargs
        )
        return cls(reader, writer)

    async def send(self, obj):
        self.writer.write((json.dumps(obj) + "\n").encode())
        await self.writer.drain()

    async def send_raw(self, data: bytes):
        self.writer.write(data)
        await self.writer.drain()

    async def recv(self):
        line = await asyncio.wait_for(self.reader.readline(), timeout=10.0)
        if not line:
            return None  # EOF
        return json.loads(line)

    async def recv_until(self, predicate):
        """Read records until one satisfies ``predicate``; returns all."""
        seen = []
        while True:
            rec = await self.recv()
            assert rec is not None, f"EOF before match; saw {seen[-5:]}"
            seen.append(rec)
            if predicate(rec):
                return seen

    async def close(self):
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def start_daemon(tmp_path, **kwargs):
    """Start a unix-socket daemon; returns (daemon, task, socket path)."""
    daemon = ServeDaemon(**kwargs)
    ready = asyncio.Event()
    daemon.on_ready = lambda address: ready.set()
    sock = tmp_path / "serve.sock"
    task = asyncio.create_task(daemon.run_unix(sock))
    await asyncio.wait_for(ready.wait(), timeout=10.0)
    return daemon, task, sock


async def stop_daemon(daemon, task):
    daemon.request_shutdown()
    await task


async def hard_kill(daemon, task):
    """Simulate SIGKILL: cancel everything, flush nothing."""
    tasks = [task]
    tasks += [state.task for state in daemon.tenants.values()]
    tasks += [conn.task for conn in daemon.connections]
    for t in tasks:
        t.cancel()
    await asyncio.gather(*tasks, return_exceptions=True)


def job_line(tenant, jid, arrival, deadline, length=1.0):
    return {
        "op": "job", "tenant": tenant, "id": jid, "arrival": arrival,
        "deadline": deadline, "length": length,
    }


async def _pump(client, n, tenant="t1"):
    """Send ``n`` tight-deadline jobs: every arrival flushes the previous
    job's start/completion, so the daemon emits output continuously."""
    for i in range(n):
        await client.send(job_line(tenant, i, float(i), i + 1.0, 0.5))


class TestDaemonBasics:
    def test_open_job_close_flow(self, tmp_path):
        async def scenario():
            daemon, task, sock = await start_daemon(tmp_path)
            client = await Client.connect(sock)
            ready = await client.recv()
            assert ready["kind"] == "serve.ready"
            assert ready["default_scheduler"] == "batch+"
            assert "batch+" in ready["schedulers"]

            await client.send({"op": "open", "tenant": "t1",
                               "scheduler": "batch"})
            opened = await client.recv()
            assert opened == {
                "kind": "serve.open", "tenant": "t1", "scheduler": "batch",
                "clairvoyant": False,
            }
            await client.send(job_line("t1", 0, 0.0, 2.0))
            await client.send(job_line("t1", 1, 0.5, 1.5, 3.0))
            await client.send({"op": "close", "tenant": "t1"})
            seen = await client.recv_until(
                lambda r: r["kind"] == "serve.closed"
            )
            kinds = [r["kind"] for r in seen]
            assert "start" in kinds and "decision" in kinds
            assert seen[-1]["tenant"] == "t1"
            assert seen[-1]["span"] > 0
            await client.close()
            await stop_daemon(daemon, task)

        run_async(scenario())

    def test_implicit_open_uses_default_scheduler(self, tmp_path):
        async def scenario():
            daemon, task, sock = await start_daemon(
                tmp_path, scheduler="batch"
            )
            client = await Client.connect(sock)
            await client.recv()  # ready
            await client.send(job_line("t1", 0, 0.0, 2.0))
            opened = await client.recv()
            assert opened["kind"] == "serve.open"
            assert opened["scheduler"] == "batch"
            await client.close()
            await stop_daemon(daemon, task)

        run_async(scenario())

    def test_stats_and_fanout_checkpoint(self, tmp_path):
        async def scenario():
            ckpt = tmp_path / "ckpt"
            daemon, task, sock = await start_daemon(
                tmp_path, checkpoint_dir=ckpt
            )
            client = await Client.connect(sock)
            await client.recv()  # ready
            for tenant in ("a", "b"):
                await client.send(job_line(tenant, 0, 0.0, 2.0))
            # Tenant-less checkpoint fans out to both (FIFO per tenant:
            # it runs after the implicit opens even though they are
            # still queued when this line is routed).
            await client.send({"op": "checkpoint"})
            acks = []
            while len(acks) < 2:
                rec = await client.recv()
                if rec["kind"] == "serve.checkpoint":
                    acks.append(rec)
            assert {a["tenant"] for a in acks} == {"a", "b"}
            assert len(list_checkpoints(ckpt)) == 2

            await client.send({"op": "stats"})
            stats = (await client.recv_until(
                lambda r: r["kind"] == "serve.stats"
            ))[-1]
            assert stats["lines_in"] == 4  # 2 jobs + checkpoint + stats
            assert set(stats["tenants"]) == {"a", "b"}
            await client.close()
            await stop_daemon(daemon, task)

        run_async(scenario())

    def test_shutdown_op_drains(self, tmp_path):
        async def scenario():
            daemon, task, sock = await start_daemon(tmp_path)
            client = await Client.connect(sock)
            await client.recv()  # ready
            await client.send(job_line("t1", 0, 0.0, 2.0))
            await client.send({"op": "shutdown"})
            seen = await client.recv_until(
                lambda r: r["kind"] == "serve.closed"
            )
            assert any(r["kind"] == "serve.bye" for r in seen)
            await task  # daemon exits on its own
            assert daemon.draining

        run_async(scenario())


class TestDaemonBadInput:
    def test_malformed_lines_rejected_daemon_survives(self, tmp_path):
        async def scenario():
            daemon, task, sock = await start_daemon(tmp_path)
            client = await Client.connect(sock)
            await client.recv()  # ready
            for bad in (b"{nope\n", b"[1,2]\n", b'{"op":"wat"}\n',
                        b'{"op":"job"}\n', b"\xff\xfe\n"):
                await client.send_raw(bad)
                err = await client.recv()
                assert err["kind"] == "serve.error"
            # A per-tenant validation error keeps the tenant live.
            await client.send(job_line("t1", 0, 5.0, 9.0))
            await client.recv_until(lambda r: r["kind"] == "serve.open")
            await client.send(job_line("t1", 1, 1.0, 2.0))  # past arrival
            err = (await client.recv_until(
                lambda r: r["kind"] == "serve.error"
            ))[-1]
            assert err["tenant"] == "t1"
            # ... and the daemon still schedules for it afterwards.
            await client.send(job_line("t1", 2, 6.0, 7.0))
            await client.send({"op": "close", "tenant": "t1"})
            closed = (await client.recv_until(
                lambda r: r["kind"] == "serve.closed"
            ))[-1]
            assert closed["jobs"] == 2
            assert daemon.errors >= 6
            await client.close()
            await stop_daemon(daemon, task)

        run_async(scenario())

    def test_oversized_line_dropped_connection_survives(self, tmp_path):
        async def scenario():
            daemon, task, sock = await start_daemon(
                tmp_path, max_line_override=128
            )
            client = await Client.connect(sock)
            await client.recv()  # ready
            huge = b'{"op": "job", "tenant": "t1", "pad": "' \
                + b"x" * 4096 + b'"}\n'
            await client.send_raw(huge)
            err = await client.recv()
            assert err["kind"] == "serve.error"
            assert err.get("oversized") is True
            # The bytes after the oversized line still parse normally.
            await client.send(job_line("t1", 0, 0.0, 2.0))
            opened = (await client.recv_until(
                lambda r: r["kind"] == "serve.open"
            ))[-1]
            assert opened["tenant"] == "t1"
            await client.close()
            await stop_daemon(daemon, task)

        run_async(scenario())

    def test_oversized_then_rest_of_buffer_preserved(self, tmp_path):
        async def scenario():
            daemon, task, sock = await start_daemon(
                tmp_path, max_line_override=128
            )
            client = await Client.connect(sock)
            await client.recv()  # ready
            # One write carrying an oversized line AND a valid op: the
            # reader must drop exactly the oversized line.
            blob = b"y" * 300 + b"\n" + json.dumps(
                {"op": "stats"}
            ).encode() + b"\n"
            await client.send_raw(blob)
            err = await client.recv()
            assert err["kind"] == "serve.error" and err["oversized"]
            stats = await client.recv()
            assert stats["kind"] == "serve.stats"
            await client.close()
            await stop_daemon(daemon, task)

        run_async(scenario())


class TestDaemonBackpressure:
    def test_stalled_consumer_bounds_daemon_memory(self, tmp_path):
        """A consumer that stops reading must stall intake (bounded
        queues all the way down) — not grow daemon buffers."""
        N = 400

        async def scenario():
            # Small max_line also bounds the daemon's raw reader buffer,
            # so stalled parsing stops byte intake instead of hiding
            # ~128KB in the server-side StreamReader.
            daemon, task, sock = await start_daemon(
                tmp_path, queue_size_override=4, max_line_override=256
            )
            client = await Client.connect(sock, limit=1024)
            await client.recv()  # ready
            # Shrink the daemon-side socket send buffer so the kernel
            # absorbs very little: the writer blocks early and the
            # backpressure chain engages within a few hundred records.
            (conn,) = daemon.connections
            raw = conn._writer.get_extra_info("socket")
            raw.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 4096)
            conn._writer.transport.set_write_buffer_limits(high=2048)
            # ... and the client-side send buffer, so the producer's own
            # drain() blocks once the daemon stops reading.
            claw = client.writer.get_extra_info("socket")
            claw.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 4096)
            client.writer.transport.set_write_buffer_limits(high=2048)

            async def produce():
                # Tight deadlines: every arrival flushes the previous
                # job's start/completion, so output flows continuously.
                for i in range(N):
                    await client.send(job_line("t1", i, float(i), i + 1.0,
                                               0.5))
                await client.send({"op": "close", "tenant": "t1"})

            producer = asyncio.create_task(produce())
            # Consumer stalled: wait for intake to plateau.
            last, stable = -1, 0
            for _ in range(400):
                await asyncio.sleep(0.01)
                if daemon.lines_in == last:
                    stable += 1
                    if stable >= 20:  # no intake for ~200ms
                        break
                else:
                    last, stable = daemon.lines_in, 0
            assert not producer.done()  # the client's send() blocked too
            assert daemon.lines_in < N  # intake genuinely stalled
            state = daemon.tenants["t1"]
            assert state.queue.qsize() <= 4
            assert conn.out.qsize() <= 4
            assert conn._writer.transport.get_write_buffer_size() < 65536

            # Resume consuming: everything drains, nothing was lost.
            seen = await client.recv_until(
                lambda r: r["kind"] == "serve.closed"
            )
            await producer
            starts = [r for r in seen if r["kind"] == "start"]
            assert len(starts) == N
            await client.close()
            await stop_daemon(daemon, task)

        run_async(scenario())


class TestDaemonScale:
    def test_120_concurrent_tenant_streams(self, tmp_path):
        """The acceptance bar: >= 100 concurrent tenant streams."""
        N = 120

        async def scenario():
            daemon, task, sock = await start_daemon(tmp_path)
            client = await Client.connect(sock)
            await client.recv()  # ready
            # Interleave ops across all tenants: every stream is open
            # concurrently before any closes.
            for i in range(N):
                await client.send(job_line(f"w{i:03d}", 0, 0.0, 2.0))
            for i in range(N):
                await client.send(job_line(f"w{i:03d}", 1, 0.5, 1.5, 3.0))
            await client.send({"op": "stats"})
            stats = (await client.recv_until(
                lambda r: r["kind"] == "serve.stats"
            ))[-1]
            assert len(stats["tenants"]) == N
            for i in range(N):
                await client.send({"op": "close", "tenant": f"w{i:03d}"})
            closed = {}
            while len(closed) < N:
                rec = await client.recv()
                assert rec is not None
                if rec["kind"] == "serve.closed":
                    closed[rec["tenant"]] = rec
            assert set(closed) == {f"w{i:03d}" for i in range(N)}
            spans = {r["span"] for r in closed.values()}
            assert spans == {closed["w000"]["span"]}  # identical workloads
            assert all(r["jobs"] == 2 for r in closed.values())
            await client.close()
            await stop_daemon(daemon, task)

        run_async(scenario())


class TestDaemonDrain:
    def test_drain_closes_sessions_writes_traces_and_checkpoints(
        self, tmp_path
    ):
        async def scenario():
            ckpt, traces = tmp_path / "ckpt", tmp_path / "traces"
            daemon, task, sock = await start_daemon(
                tmp_path, checkpoint_dir=ckpt, trace_dir=traces
            )
            client = await Client.connect(sock)
            await client.recv()  # ready
            for tenant in ("a", "b", "c"):
                await client.send(job_line(tenant, 0, 0.0, 5.0))
                await client.send(job_line(tenant, 1, 1.0, 6.0, 2.0))
            # Give the workers a beat to apply, then drain mid-stream.
            await client.send({"op": "stats"})
            await client.recv_until(lambda r: r["kind"] == "serve.stats")
            daemon.request_shutdown()
            await task
            # All in-flight records were flushed before the close.
            records = []
            while True:
                rec = await client.recv()
                if rec is None:
                    break
                records.append(rec)
            closed = [r for r in records if r["kind"] == "serve.closed"]
            assert {r["tenant"] for r in closed} == {"a", "b", "c"}
            # Every admitted job started (the engine's deadline
            # backstops fire on drain).
            for tenant in ("a", "b", "c"):
                starts = [
                    r for r in records
                    if r["kind"] == "start" and r["tenant"] == tenant
                ]
                assert {r["job"] for r in starts} == {0, 1}
            # Checkpoints + traces on disk; traces reconcile strictly.
            assert len(list_checkpoints(ckpt)) == 3
            for tenant in ("a", "b", "c"):
                trace = traces / f"{tenant}.trace.jsonl"
                assert trace.exists()
                assert main(["obs", "explain", str(trace), "--strict"]) == 0
            await client.close()

        run_async(scenario())

    def test_drain_watchdog_aborts_stalled_consumer(self, tmp_path):
        async def scenario():
            daemon, task, sock = await start_daemon(
                tmp_path, queue_size_override=2, max_line_override=256,
                drain_timeout=0.3,
            )
            client = await Client.connect(sock, limit=1024)
            await client.recv()  # ready
            (conn,) = daemon.connections
            raw = conn._writer.get_extra_info("socket")
            raw.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 4096)
            conn._writer.transport.set_write_buffer_limits(high=1024)
            # Enough work that drain cannot flush into a stalled socket.
            producer = asyncio.create_task(_pump(client, 200))
            # Wait until the chain is genuinely wedged (worker blocked
            # mid-emit): intake stops advancing.
            last, stable = -1, 0
            for _ in range(400):
                await asyncio.sleep(0.01)
                if daemon.lines_in == last:
                    stable += 1
                    if stable >= 20:
                        break
                else:
                    last, stable = daemon.lines_in, 0
            daemon.request_shutdown()
            # The consumer never reads: the watchdog must still let the
            # daemon terminate (well under the suite timeout).
            await task
            assert conn.dead
            producer.cancel()
            await asyncio.gather(producer, return_exceptions=True)

        run_async(scenario())


class TestDaemonRestore:
    def _reference_outputs(self, ops):
        session = TenantSession("t1")
        outs = list(session.hello())
        for op in ops:
            outs += session.apply(dict(op))
        outs += session.apply({"op": "close", "tenant": "t1"})
        return outs

    def test_kill_restore_bit_identical_remaining_records(self, tmp_path):
        pre_ops = [job_line("t1", 0, 0.0, 5.0), job_line("t1", 1, 1.0, 6.0)]
        post_ops = [job_line("t1", 2, 2.0, 7.0, 2.0)]
        full = self._reference_outputs(pre_ops + post_ops)

        async def scenario():
            ckpt = tmp_path / "ckpt"
            daemon1, task1, sock1 = await start_daemon(
                tmp_path, checkpoint_dir=ckpt
            )
            client1 = await Client.connect(sock1)
            await client1.recv()  # ready
            delivered = []
            for op in pre_ops:
                await client1.send(op)
            await client1.send({"op": "checkpoint", "tenant": "t1"})
            while True:
                rec = await client1.recv()
                if rec["kind"] == "serve.checkpoint":
                    break
                delivered.append(rec)
            await hard_kill(daemon1, task1)  # SIGKILL: no drain, no flush
            await client1.close()
            (sock1_path := sock1).unlink(missing_ok=True)

            daemon2, task2, sock2 = await start_daemon(
                tmp_path / "ckpt", checkpoint_dir=ckpt, restore=True
            )
            client2 = await Client.connect(sock2)
            ready = await client2.recv()
            assert ready["tenants"] == ["t1"]
            for op in post_ops:
                await client2.send(op)
            await client2.send({"op": "close", "tenant": "t1"})
            post = await client2.recv_until(
                lambda r: r["kind"] == "serve.closed"
            )
            # Bit-identical: delivered-before-kill + emitted-after-restore
            # is exactly the uninterrupted record stream.
            assert delivered + post == full
            started = [r["job"] for r in delivered + post
                       if r["kind"] == "start"]
            assert sorted(started) == [0, 1, 2]  # no re-admissions
            await client2.close()
            await stop_daemon(daemon2, task2)

        run_async(scenario())

    def test_restored_closed_tenant_stays_closed(self, tmp_path):
        async def scenario():
            ckpt = tmp_path / "ckpt"
            daemon1, task1, sock1 = await start_daemon(
                tmp_path, checkpoint_dir=ckpt
            )
            client1 = await Client.connect(sock1)
            await client1.recv()
            await client1.send(job_line("t1", 0, 0.0, 2.0))
            await client1.send({"op": "close", "tenant": "t1"})
            await client1.recv_until(lambda r: r["kind"] == "serve.closed")
            await client1.close()
            await stop_daemon(daemon1, task1)

            restored = restore_session(list_checkpoints(ckpt)[0])
            assert restored.closed
            daemon2, task2, sock2 = await start_daemon(
                ckpt, checkpoint_dir=ckpt, restore=True
            )
            client2 = await Client.connect(sock2)
            ready = await client2.recv()
            assert ready["tenants"] == ["t1"]
            await client2.send(job_line("t1", 9, 10.0, 12.0))
            err = await client2.recv()
            assert err["kind"] == "serve.error"
            assert "closed" in err["error"]
            await client2.close()
            await stop_daemon(daemon2, task2)

        run_async(scenario())


class TestDaemonWriterFailure:
    def test_dead_consumer_does_not_wedge_workers(self, tmp_path):
        async def scenario():
            daemon, task, sock = await start_daemon(
                tmp_path, queue_size_override=2
            )
            client = await Client.connect(sock)
            await client.recv()  # ready
            await client.send(job_line("t1", 0, 0.0, 2.0))
            # Abruptly drop the connection reader AND writer.
            client.writer.transport.abort()
            # The daemon must keep applying ops for the tenant via a new
            # connection (the old writer marks itself dead but keeps
            # consuming its queue).
            client2 = await Client.connect(sock)
            await client2.recv()  # ready
            await client2.send(job_line("t2", 0, 0.0, 2.0))
            await client2.send({"op": "close", "tenant": "t2"})
            closed = (await client2.recv_until(
                lambda r: r["kind"] == "serve.closed"
            ))[-1]
            assert closed["tenant"] == "t2"
            await client2.close()
            await stop_daemon(daemon, task)

        run_async(scenario())


class TestStdioMode:
    def test_cli_rejects_bad_tcp_spec(self):
        from repro.serve.cli import _parse_hostport

        with pytest.raises(ValueError):
            _parse_hostport("no-port")
        assert _parse_hostport("127.0.0.1:7077") == ("127.0.0.1", 7077)
        assert _parse_hostport("[::1]:7077") == ("[::1]", 7077)


class TestLineFramer:
    """Unit tests for the bounded framer, straight over a StreamReader.

    The daemon-level tests above cover the happy drop path; these pin
    the exact boundary and the chunk/EOF edges that only show up when
    the oversized line straddles internal reads.
    """

    @staticmethod
    def _framer(data: bytes, max_line: int):
        from repro.serve.daemon import _LineFramer

        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return _LineFramer(reader, max_line)

    def test_exact_boundary_line_accepted(self):
        async def scenario():
            line = b"x" * 64  # len == max_line: allowed, not oversized
            framer = self._framer(line + b"\n" + b"y" * 65 + b"\n", 64)
            assert await framer.next_line() == (line, False)
            assert await framer.next_line() == (b"", True)  # one byte over
            assert await framer.next_line() == (None, False)

        run_async(scenario())

    def test_oversized_line_spanning_read_chunks(self):
        async def scenario():
            # 200k of junk forces several 64 KiB reads inside the drop
            # loop before the newline shows up; the next line survives.
            data = b"j" * 200_000 + b"\n" + b'{"op": "stats"}\n'
            framer = self._framer(data, 128)
            assert await framer.next_line() == (b"", True)
            assert await framer.next_line() == (b'{"op": "stats"}', False)
            assert await framer.next_line() == (None, False)

        run_async(scenario())

    def test_eof_mid_drop(self):
        async def scenario():
            # The stream ends inside an oversized, never-terminated
            # line: EOF is reported *with* the oversized flag so the
            # caller can account for the dropped garbage.
            framer = self._framer(b"z" * 100_000, 128)
            assert await framer.next_line() == (None, True)
            assert await framer.next_line() == (None, False)

        run_async(scenario())

    def test_unterminated_tail_returned_at_eof(self):
        async def scenario():
            framer = self._framer(b"a\nb", 64)
            assert await framer.next_line() == (b"a", False)
            assert await framer.next_line() == (b"b", False)
            assert await framer.next_line() == (None, False)

        run_async(scenario())

    def test_oversized_unterminated_tail_at_eof(self):
        async def scenario():
            # Tail with no newline AND over the bound: EOF + oversized.
            framer = self._framer(b"a\n" + b"b" * 65, 64)
            assert await framer.next_line() == (b"a", False)
            assert await framer.next_line() == (None, True)

        run_async(scenario())

    def test_many_exact_boundary_lines(self):
        async def scenario():
            lines = [bytes([65 + i]) * 32 for i in range(8)]
            framer = self._framer(b"\n".join(lines) + b"\n", 32)
            for expected in lines:
                assert await framer.next_line() == (expected, False)
            assert await framer.next_line() == (None, False)

        run_async(scenario())
