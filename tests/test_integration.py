"""Integration tests: full pipelines across modules.

Each test exercises a complete user story — generate → simulate →
measure → compare with offline machinery — mirroring the examples/.
"""

from __future__ import annotations

import pytest

from repro.adversaries import (
    ClairvoyantLowerBoundAdversary,
    NonClairvoyantLowerBoundAdversary,
    batchplus_tightness_instance,
    geometric_profile,
)
from repro.analysis import (
    build_flag_forest,
    check_forest_property,
    render_gantt,
)
from repro.core import simulate
from repro.dbp import FirstFit, run_pipeline
from repro.offline import best_offline_span, exact_optimal_span, span_lower_bound
from repro.schedulers import SCHEDULERS, make_scheduler
from repro.workloads import (
    bimodal_instance,
    cloud_instance,
    poisson_instance,
    ratio_stats,
    run_grid,
    small_integral_instance,
)


class TestFullComparison:
    def test_all_schedulers_on_all_families(self):
        """Every registered scheduler completes every workload family and
        the span ordering is sane (online >= LB, heuristic >= OPT side)."""
        families = [
            poisson_instance(40, seed=0),
            bimodal_instance(40, seed=0, mu=8.0),
            cloud_instance(seed=0),
        ]
        protos = [make_scheduler(name) for name in SCHEDULERS]
        results = run_grid(protos, families, span_lower_bound)
        assert len(results) == len(protos) * len(families)
        stats = ratio_stats(results)
        assert all(s["mean"] >= 1.0 - 1e-9 for s in stats.values())

    def test_profit_beats_baselines_on_average(self):
        """The paper's hierarchy shows up empirically: Profit's mean ratio
        is below Eager's and Lazy's across seeds."""
        instances = [poisson_instance(60, seed=s) for s in range(6)]
        protos = [make_scheduler(n) for n in ("profit", "eager", "lazy")]
        stats = ratio_stats(run_grid(protos, instances, span_lower_bound))
        assert stats["profit"]["mean"] < stats["eager"]["mean"]
        assert stats["profit"]["mean"] < stats["lazy"]["mean"]

    def test_exact_ratio_pipeline_small_instances(self):
        """Competitive-ratio measurement against the exact optimum."""
        inst = small_integral_instance(7, seed=11)
        opt = exact_optimal_span(inst)
        heuristic = best_offline_span(inst)
        assert span_lower_bound(inst) - 1e-9 <= opt <= heuristic + 1e-9
        for name in SCHEDULERS:
            sched = make_scheduler(name)
            result = simulate(
                sched, inst, clairvoyant=type(sched).requires_clairvoyance
            )
            assert result.span >= opt - 1e-9


class TestAdversaryPipelines:
    def test_nonclairvoyant_adversary_full_cycle(self):
        adv = NonClairvoyantLowerBoundAdversary(
            mu=6.0, profile=geometric_profile(3, 8)
        )
        result = simulate(make_scheduler("batch+"), adversary=adv)
        witness = adv.paper_optimal_schedule(result.instance)
        witness.validate()
        # the resolved instance's exact μ matches the adversary's
        assert result.instance.mu == pytest.approx(6.0)
        # and the forced ratio is sound vs our own offline machinery
        offline = best_offline_span(result.instance)
        assert offline <= witness.span + 1e-9 or offline == pytest.approx(
            witness.span, rel=0.5
        )

    def test_clairvoyant_adversary_with_flag_analysis(self):
        adv = ClairvoyantLowerBoundAdversary(n=20)
        result = simulate(make_scheduler("profit"), adversary=adv, clairvoyant=True)
        flags = result.scheduler.flag_job_ids
        forest = build_flag_forest(result.instance, flags)
        assert check_forest_property(forest)


class TestRenderingPipelines:
    def test_gantt_of_simulated_schedule(self):
        inst = poisson_instance(15, seed=2)
        result = simulate(make_scheduler("batch"), inst)
        out = render_gantt(result.schedule)
        assert out.count("J") >= 15

    def test_tightness_family_renders(self):
        fam = batchplus_tightness_instance(m=3, mu=3.0)
        result = simulate(make_scheduler("batch+"), fam.instance)
        assert "span=" in render_gantt(result.schedule)


class TestDbpPipelines:
    def test_scheduler_packer_cross_product(self):
        inst = cloud_instance(seed=1)
        usages = {}
        for sched_name in ("eager", "batch+", "profit"):
            result = run_pipeline(
                make_scheduler(sched_name), FirstFit(2.0), inst
            )
            usages[sched_name] = result.total_usage_time
            assert result.bins_used >= 1
        assert all(u > 0 for u in usages.values())
