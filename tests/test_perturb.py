"""Unit + property tests for instance perturbations.

The headline property: **adding laxity never hurts the offline optimum**
(window widening keeps every feasible schedule feasible) — checked with
the exact solver.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Instance, InvalidInstanceError
from repro.offline import exact_optimal_span
from repro.workloads import (
    drop_jobs,
    jitter_arrivals,
    poisson_instance,
    scale_laxity,
    shift_times,
    small_integral_instance,
    tighten_to_rigid,
)


class TestTransforms:
    def test_scale_laxity_values(self, simple_instance):
        doubled = scale_laxity(simple_instance, 2.0)
        for old, new in zip(simple_instance, doubled):
            assert new.arrival == old.arrival
            assert new.laxity == pytest.approx(2 * old.laxity)
            assert new.length == old.length

    def test_tighten_to_rigid(self, simple_instance):
        rigid = tighten_to_rigid(simple_instance)
        assert all(j.laxity == 0 for j in rigid)

    def test_negative_factor_rejected(self, simple_instance):
        with pytest.raises(InvalidInstanceError):
            scale_laxity(simple_instance, -1.0)

    def test_jitter_preserves_laxity(self):
        inst = poisson_instance(30, seed=0)
        jittered = jitter_arrivals(inst, 0.5, seed=1)
        for old, new in zip(inst, jittered):
            assert new.laxity == pytest.approx(old.laxity)
            assert new.arrival >= 0

    def test_jitter_reproducible(self):
        inst = poisson_instance(20, seed=0)
        a = jitter_arrivals(inst, 1.0, seed=5)
        b = jitter_arrivals(inst, 1.0, seed=5)
        assert [j.arrival for j in a] == [j.arrival for j in b]

    def test_drop_jobs_fraction(self):
        inst = poisson_instance(200, seed=0)
        kept = drop_jobs(inst, 0.5, seed=2)
        assert 50 < len(kept) < 150  # ~100 expected

    def test_drop_fraction_bounds(self, simple_instance):
        with pytest.raises(InvalidInstanceError):
            drop_jobs(simple_instance, 1.5)
        assert len(drop_jobs(simple_instance, 0.0)) == len(simple_instance)

    def test_shift_times(self, simple_instance):
        shifted = shift_times(simple_instance, 10.0)
        for old, new in zip(simple_instance, shifted):
            assert new.arrival == old.arrival + 10.0
            assert new.deadline == old.deadline + 10.0


class TestOptimalityMonotonicity:
    @pytest.mark.parametrize("seed", range(8))
    def test_more_laxity_never_hurts_opt(self, seed):
        """OPT(laxity×2) <= OPT(original): the defining monotonicity."""
        inst = small_integral_instance(6, seed=seed)
        relaxed = scale_laxity(inst, 2.0)
        assert exact_optimal_span(relaxed) <= exact_optimal_span(inst) + 1e-9

    @pytest.mark.parametrize("seed", range(8))
    def test_less_laxity_never_helps_opt(self, seed):
        inst = small_integral_instance(6, seed=seed)
        rigid = tighten_to_rigid(inst)
        assert exact_optimal_span(rigid) >= exact_optimal_span(inst) - 1e-9

    @pytest.mark.parametrize("seed", range(6))
    def test_dropping_jobs_never_hurts_opt(self, seed):
        inst = small_integral_instance(7, seed=seed)
        fewer = drop_jobs(inst, 0.4, seed=seed)
        assert exact_optimal_span(fewer) <= exact_optimal_span(inst) + 1e-9

    @pytest.mark.parametrize("seed", range(6))
    def test_shift_invariance_of_opt(self, seed):
        inst = small_integral_instance(6, seed=seed)
        shifted = shift_times(inst, 7.0)
        assert exact_optimal_span(shifted) == pytest.approx(
            exact_optimal_span(inst)
        )

    @given(st.integers(min_value=0, max_value=30), st.integers(min_value=1, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_laxity_scaling_chain(self, seed, factor):
        """OPT is non-increasing along the laxity-scaling chain 0 <= 1 <= f."""
        inst = small_integral_instance(5, seed=seed)
        rigid = exact_optimal_span(tighten_to_rigid(inst))
        base = exact_optimal_span(inst)
        relaxed = exact_optimal_span(scale_laxity(inst, float(factor)))
        assert rigid >= base - 1e-9
        if factor >= 1:
            assert relaxed <= base + 1e-9
