"""RL012 fixture: an engine-core hot section that allocates per job.

Linted under a virtual ``src/repro/core/engine.py`` path — every
construct below is one the columnar refactor exists to eliminate.
"""

from repro.core import Job, JobView  # noqa


class BadCore:
    def _handle_completion(self, idx):
        # Per-event Job construction in a handler.
        job = Job(id=idx, arrival=0.0, deadline=1.0, length=1.0)  # RL012
        return job

    def _cohort_arrival(self, cohort):
        # Attribute-gather comprehension over per-job views.
        deadlines = [view.deadline for view in cohort]  # RL012
        return deadlines

    def _start_batch(self, views):
        # Attribute-gather for-loop feeding a list.
        starts = []
        for view in views:
            starts.append(view.start_time)  # RL012
        return starts

    def _finish_report(self, rows):
        # Not a hot section: same patterns pass here.
        return [Job(id=r, arrival=0.0, deadline=1.0, length=1.0) for r in rows]
