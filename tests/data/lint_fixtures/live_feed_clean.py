"""RL011/RL012 fixture: the sanctioned live-telemetry idioms — no findings.

Linted under a virtual ``src/repro/obs/live.py`` path.  The per-record
``_handle_*`` sections mutate scalar aggregates and sorted primitive
lists (the incremental interval union / Pareto front), never per-record
objects, and never touch stdio.
"""

from bisect import bisect_left


class CleanTelemetry:
    def _handle_release(self, attrs):
        arrival = attrs["arrival"]
        length = attrs["length"]
        self.released += 1
        self.total_work += length
        lcs = self._lcs
        j = bisect_left(lcs, arrival + length)
        lcs.insert(j, arrival + length)
        return j

    def _handle_start(self, attrs):
        t = attrs["t"]
        if t > self.clock:
            self.clock = t
        self.started += 1

    def _handle_decision(self, rule):
        counts = self.decisions
        counts[rule] = counts.get(rule, 0) + 1
