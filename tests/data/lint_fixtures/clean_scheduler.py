"""RL001 fixture (negative case): an honest non-clairvoyant scheduler.

Only reads ``job.length`` inside ``on_completion``, where it is visible in
every information model.  The linter must report nothing for this file and
the strict-mode runtime guard must record no accesses — see
``tests/test_lint.py``.
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.engine import JobView, SchedulerContext
from repro.schedulers.base import OnlineScheduler


class CleanScheduler(OnlineScheduler):
    """Starts everything at deadlines; observes lengths only at completion."""

    name: ClassVar[str] = "fixture-clean"
    requires_clairvoyance: ClassVar[bool] = False

    def __init__(self) -> None:
        super().__init__()
        self.observed_lengths: list[float] = []

    def reset(self) -> None:
        super().reset()
        self.observed_lengths = []

    def on_deadline(self, ctx: SchedulerContext, job: JobView) -> None:
        for pending in ctx.pending():
            ctx.start(pending.id)

    def on_completion(self, ctx: SchedulerContext, job: JobView) -> None:
        # Post-completion access is legitimate in the non-clairvoyant model.
        self.observed_lengths.append(job.length)
