"""RL010 fixture package: raw-tuple heap key hygiene.

PR 1's engine hot path pushes raw tuples onto ``heapq`` event heaps;
that is only safe when every tuple pushed onto one heap is orderable
against every other.  ``events.py`` holds one heap whose pushes mix a
string and an int at the tie-breaking slot (flagged) and one heap whose
pushes keep every slot numeric (clean).
"""
