"""RL010 cases: one mixed-type heap (flagged), one disciplined heap."""

from __future__ import annotations

import heapq


class MixedQueue:
    """Pushes ("deadline", str) and (t, int) keys onto the *same* heap:
    a tie on ``t`` compares ``"deadline" < 0`` and raises ``TypeError``
    — but only on the adversarial instance that produces the tie."""

    def __init__(self) -> None:
        self._events: list = []

    def add_deadline(self, t: float, job: object) -> None:
        heapq.heappush(self._events, (t, "deadline", job))

    def add_timer(self, t: float, job: object) -> None:
        heapq.heappush(self._events, (t, 0, job))


class CleanQueue:
    """Every push keeps slot 1 numeric: ties always resolve."""

    _DEADLINE = 1
    _TIMER = 2

    def __init__(self) -> None:
        self._events: list = []

    def add_deadline(self, t: float, job: object) -> None:
        heapq.heappush(self._events, (t, 1, job))

    def add_timer(self, t: float, job: object) -> None:
        heapq.heappush(self._events, (t, 2, job))
