"""RL021 fixture package: the ``Queue.join()`` drain protocol.

``offending.py`` holds four broken mills, one per RL021 check:

* ``Mill`` — no ``task_done()`` anywhere: the join can never complete;
* ``LeakyMill`` — one of two consumers never credits ``task_done()``;
* ``BareMill`` — ``task_done()`` exists but not on a ``finally`` path,
  so an exception between ``get()`` and ``task_done()`` skips it;
* ``EagerMill`` — the ``None`` poison pill is enqueued *before* the
  join, so the consumer can exit early and strand queued work.

``clean.py`` is the balanced protocol: ``task_done()`` in a
``finally``, pill strictly after the join.

The runtime half is a direct asyncio assertion
(``tests/test_serve_loopwatch.py``): each module's ``run_drain``
produces three items through its ``Mill`` under a timeout — the
offending drain times out with the join counter stuck high, the clean
drain completes with every item processed.
"""
