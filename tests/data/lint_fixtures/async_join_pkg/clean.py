"""The balanced ``Queue.join()`` drain protocol (RL021 clean)."""

from __future__ import annotations

import asyncio
from typing import Iterable


class Mill:
    """``task_done()`` in a ``finally``; pill strictly after the join."""

    def __init__(self) -> None:
        self.queue: asyncio.Queue = asyncio.Queue(8)
        self.done: list[int] = []

    async def consume(self) -> None:
        while True:
            item = await self.queue.get()
            try:
                if item is None:
                    return
                self.done.append(item)
            finally:
                self.queue.task_done()

    async def produce(self, items: Iterable[int]) -> None:
        for item in items:
            await self.queue.put(item)
        await self.queue.join()  # every credit comes back
        await self.queue.put(None)  # pill after the join: clean exit


async def run_drain(timeout: float = 2.0) -> tuple[bool, list[int]]:
    """Drive ``Mill`` under a generous timeout; the drain completes."""
    mill = Mill()
    worker = asyncio.create_task(mill.consume())
    joined = True
    try:
        await asyncio.wait_for(mill.produce([1, 2, 3]), timeout)
    except asyncio.TimeoutError:
        joined = False
    await asyncio.gather(worker, return_exceptions=True)
    return joined, mill.done
