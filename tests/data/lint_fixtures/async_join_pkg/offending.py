"""Four ways to unbalance a ``Queue.join()`` drain (RL021)."""

from __future__ import annotations

import asyncio
from typing import Iterable


class Mill:
    """No ``task_done()`` anywhere: ``join()`` hangs forever."""

    def __init__(self) -> None:
        self.queue: asyncio.Queue = asyncio.Queue(8)
        self.done: list[int] = []

    async def consume(self) -> None:
        while True:
            item = await self.queue.get()  # RL021: no task_done at all
            if item is None:
                return
            self.done.append(item)

    async def produce(self, items: Iterable[int]) -> None:
        for item in items:
            await self.queue.put(item)
        await self.queue.join()  # RL021: waits on credits nobody returns
        await self.queue.put(None)


class LeakyMill:
    """Two consumers, one of which never credits ``task_done()``."""

    def __init__(self) -> None:
        self.queue: asyncio.Queue = asyncio.Queue(8)
        self.done: list[int] = []

    async def consume_ok(self) -> None:
        while True:
            item = await self.queue.get()
            try:
                if item is None:
                    return
                self.done.append(item)
            finally:
                self.queue.task_done()

    async def consume_leaky(self) -> None:
        while True:
            item = await self.queue.get()  # RL021: this consumer never credits
            if item is None:
                return
            self.done.append(item)

    async def produce(self, items: Iterable[int]) -> None:
        for item in items:
            await self.queue.put(item)
        await self.queue.join()
        await self.queue.put(None)


class BareMill:
    """``task_done()`` off the ``finally`` path: exceptions skip it."""

    def __init__(self) -> None:
        self.queue: asyncio.Queue = asyncio.Queue(8)
        self.done: list[int] = []

    async def consume(self) -> None:
        while True:
            item = await self.queue.get()
            if item is None:
                self.queue.task_done()  # RL021: not on a finally path
                return
            self.done.append(item)
            self.queue.task_done()

    async def produce(self, items: Iterable[int]) -> None:
        for item in items:
            await self.queue.put(item)
        await self.queue.join()
        await self.queue.put(None)


class EagerMill:
    """The poison pill goes in before the join: work gets stranded."""

    def __init__(self) -> None:
        self.queue: asyncio.Queue = asyncio.Queue(8)
        self.done: list[int] = []

    async def consume(self) -> None:
        while True:
            item = await self.queue.get()
            try:
                if item is None:
                    return
                self.done.append(item)
            finally:
                self.queue.task_done()

    async def produce(self, items: Iterable[int]) -> None:
        await self.queue.put(None)  # RL021: pill enqueued before the join
        for item in items:
            await self.queue.put(item)
        await self.queue.join()


async def run_drain(timeout: float = 0.2) -> tuple[bool, list[int]]:
    """Drive ``Mill`` under a timeout; the join never resolves."""
    mill = Mill()
    worker = asyncio.create_task(mill.consume())
    joined = True
    try:
        await asyncio.wait_for(mill.produce([1, 2, 3]), timeout)
    except asyncio.TimeoutError:
        joined = False
    worker.cancel()
    await asyncio.gather(worker, return_exceptions=True)
    return joined, mill.done
