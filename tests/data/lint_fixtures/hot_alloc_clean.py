"""RL012 fixture: the sanctioned columnar idioms — no findings.

Linted under a virtual ``src/repro/core/columnar.py`` path.
"""


class GoodCore:
    def _handle_completion(self, idx):
        # Scalar reads via the table's list mirrors.
        table = self._table
        jid = table.ids_list[idx]
        table.state[idx] = 3
        return jid

    def _cohort_arrival(self, cohort):
        # Subscript gathers (row-index plumbing) are fine.
        deadline_l = self._table.deadline_list
        items = [(deadline_l[idx], 3, idx) for idx in cohort]
        return items

    def _start_batch(self, rows):
        # Vector math on columns, not object walks.
        table = self._table
        return table.deadline[rows] - table.arrival[rows]
