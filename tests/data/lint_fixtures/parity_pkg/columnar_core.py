"""The columnar mini-core: parallel lists, arrival cohorts, armed mirror."""

from __future__ import annotations

import heapq

from repro.core.errors import SimulationError

_PARITY_CORE = "columnar"
_PARITY_PEER = "parity_pkg.object_core"
_PARITY_FIELDS = {
    "start_col": "start-time",
    "state": "lifecycle",
    "_free_at": "busy-until",
    "_pending": "pending-index",
}

_ARRIVAL = 0
_COMPLETION = 1

_PENDING = 0
_RUNNING = 1
_DONE = 2


class ColumnarMiniCore:
    """Same FIFO single-machine semantics as ``ObjectMiniCore``, stored
    column-wise; same-timestamp arrivals take a vectorised cohort path in
    the fast loop, while the armed loop mirrors every event scalar-wise."""

    def __init__(self) -> None:
        self._now = 0.0
        self._free_at = 0.0
        self._events: list = []
        self._pending: list = []
        self.ids_col: list = []
        self.arrival_col: list = []
        self.length_col: list = []
        self.state: list = []
        self.start_col: list = []

    def run(self, jobs, armed: bool = False) -> dict:
        """``jobs`` is ``[(job_id, arrival, length), ...]``; returns the
        final ``{job_id: start_time}`` schedule.  ``armed=True`` drives
        the scalar mirror loop instead of the cohort fast path."""
        for job_id, arrival, length in jobs:
            row = len(self.ids_col)
            self.ids_col.append(job_id)
            self.arrival_col.append(arrival)
            self.length_col.append(length)
            self.state.append(_PENDING)
            self.start_col.append(None)
            heapq.heappush(self._events, (arrival, _ARRIVAL, row))
        if armed:
            return self._run_armed()
        return self._run_fast()

    def _run_fast(self) -> dict:
        events = self._events
        while events:
            t, kind, idx = heapq.heappop(events)
            if t < self._now:
                raise SimulationError("event time moved backwards")
            self._now = t
            if kind == _ARRIVAL:
                rows = [idx]
                while events and events[0][0] == t and events[0][1] == _ARRIVAL:
                    rows.append(heapq.heappop(events)[2])
                if len(rows) == 1:
                    self._handle_arrival(idx)
                else:
                    self._cohort_arrival(rows)
            else:
                self._handle_completion(idx)
        return self._schedule()

    def _run_armed(self) -> dict:
        events = self._events
        while events:
            t, kind, idx = heapq.heappop(events)
            if t < self._now:
                raise SimulationError("event time moved backwards")
            self._now = t
            if kind == _ARRIVAL:
                self._handle_arrival(idx)
            else:
                self._handle_completion(idx)
        return self._schedule()

    def _handle_arrival(self, idx: int) -> None:
        self.state[idx] = _PENDING
        self._pending.append(idx)
        self._start_job()

    def _cohort_arrival(self, rows) -> None:
        for r in rows:
            self.state[r] = _PENDING
        self._pending.extend(rows)
        self._start_job()

    def _handle_completion(self, idx: int) -> None:
        self.state[idx] = _DONE
        self._free_at = self._now
        self._start_job()

    def _start_job(self) -> None:
        while self._pending and self._free_at <= self._now:
            idx = self._pending.pop(0)
            self.state[idx] = _RUNNING  # parity: columnar-only
            self.start_col[idx] = self._now
            when = self._now + self.length_col[idx]
            self._free_at = when
            heapq.heappush(self._events, (when, _COMPLETION, idx))

    def _schedule(self) -> dict:
        return {
            self.ids_col[i]: self.start_col[i]
            for i in range(len(self.ids_col))
            if self.start_col[i] is not None
        }
