"""RL013 fixture: a *clean* dual-core pair, runnable for cross-validation.

``object_core.py`` and ``columnar_core.py`` implement the same miniature
single-machine FIFO event loop twice — once scalar over per-job dicts,
once columnar over parallel lists with an arrival cohort path and a
recorder-armed scalar mirror.  They declare each other as parity peers
and map their physical fields onto shared logical tokens, so RL013 must
certify the pair with **zero** findings.

The same two modules are the *runtime* half of the cross-validation:
``tests/test_lint_invariants.py`` runs both mini-cores on shared job
lists and asserts identical schedules (and that the columnar fast and
armed loops agree), mirroring what ``REPRO_PARITY=1`` does to the real
engine cores.  The drifted twin lives in ``parity_drift_pkg`` — same
shape, deliberate drift, flagged statically *and* divergent at runtime.
"""
