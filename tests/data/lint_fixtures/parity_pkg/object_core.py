"""The scalar reference mini-core: one dict-backed job at a time."""

from __future__ import annotations

import heapq

from repro.core.errors import SimulationError

_PARITY_CORE = "object"
_PARITY_PEER = "parity_pkg.columnar_core"
_PARITY_FIELDS = {
    "start": "start-time",
    "done": "lifecycle",
    "_free_at": "busy-until",
    "_pending": "pending-index",
}

_ARRIVAL = 0
_COMPLETION = 1


class ObjectMiniCore:
    """FIFO single-machine loop: start the oldest pending job whenever
    the machine is free, run it to completion, repeat."""

    def __init__(self) -> None:
        self._now = 0.0
        self._free_at = 0.0
        self._events: list = []
        self._pending: list = []
        self.jobs: dict = {}
        self.start: dict = {}
        self.done: dict = {}

    def run(self, jobs) -> dict:
        """``jobs`` is ``[(job_id, arrival, length), ...]``; returns the
        final ``{job_id: start_time}`` schedule."""
        for job_id, arrival, length in jobs:
            self.jobs[job_id] = (arrival, length)
            heapq.heappush(self._events, (arrival, _ARRIVAL, job_id))
        while self._events:
            t, kind, job_id = heapq.heappop(self._events)
            if t < self._now:
                raise SimulationError("event time moved backwards")
            self._now = t
            if kind == _ARRIVAL:
                self._handle_arrival(job_id)
            else:
                self._handle_completion(job_id)
        return dict(self.start)

    def _handle_arrival(self, job_id: int) -> None:
        self.done[job_id] = False
        self._pending.append(job_id)
        self._start_job()

    def _handle_completion(self, job_id: int) -> None:
        self.done[job_id] = True
        self._free_at = self._now
        self._start_job()

    def _start_job(self) -> None:
        while self._pending and self._free_at <= self._now:
            job_id = self._pending.pop(0)
            self.start[job_id] = self._now
            when = self._now + self.jobs[job_id][1]
            self._free_at = when
            heapq.heappush(self._events, (when, _COMPLETION, job_id))
