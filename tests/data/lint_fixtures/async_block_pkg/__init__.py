"""RL017 fixture package: a coroutine that blocks the event loop.

``offending.py``'s public coroutine launders ``time.sleep`` through a
sync helper — exactly the blind spot a per-call grep would miss and the
coroutine-reachability + blocking-fixpoint model catches.  ``clean.py``
is the same program with the helper passed *by reference* to
``asyncio.to_thread``, the sanctioned escape hatch (no call edge, so
exempt by construction).

Both modules are runnable: ``tests/test_serve_loopwatch.py`` drives
them under :func:`repro.serve.loopwatch.watched_run` and asserts the
runtime twin agrees with the static verdict in both directions — the
offending coroutine stalls the instrumented loop past the threshold,
the clean one never does.
"""
