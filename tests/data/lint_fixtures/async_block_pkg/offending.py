"""A loop-reachable coroutine whose sync closure blocks (RL017)."""

from __future__ import annotations

import asyncio
import time

#: Seconds each inline persist stalls the loop (the runtime twin's
#: threshold in the tests sits well below this).
HOLD = 0.12


async def serve_forever(rounds: int = 2) -> int:
    """Public coroutine API — loop-reachable by construction."""
    served = 0
    for _ in range(rounds):
        _persist()  # RL017: sync call edge into a blocking closure
        served += 1
        await asyncio.sleep(0)
    return served


def _persist() -> None:
    """Pretend checkpoint write: blocks whichever thread runs it."""
    time.sleep(HOLD)
