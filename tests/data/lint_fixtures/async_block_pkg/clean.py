"""The same program with the blocking work off-loop (RL017 clean)."""

from __future__ import annotations

import asyncio
import time

HOLD = 0.12


async def serve_forever(rounds: int = 2) -> int:
    """Identical surface, but the persist runs in a worker thread."""
    served = 0
    for _ in range(rounds):
        # By reference: no call edge, exempt by construction.
        await asyncio.to_thread(_persist)
        served += 1
        await asyncio.sleep(0)
    return served


def _persist() -> None:
    time.sleep(HOLD)
