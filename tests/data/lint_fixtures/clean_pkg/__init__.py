"""RL007 negative fixture: a multi-module scheduler with no leak.

Mirrors ``laundered_pkg`` structurally — the scheduler delegates to a
helper module — but the helper only touches *visible* job fields
pre-completion and only reads ``job.length`` from ``on_completion``,
which every information model allows.  RL007 must report nothing here,
and the strict-mode runtime guard must record zero accesses: the "both
directions" half of the cross-validation contract.
"""
