"""Helpers that stay inside the non-clairvoyant information model."""

from __future__ import annotations


def urgency(job, now: float) -> float:
    """Deadline slack — visible in every information model."""
    return job.deadline - now


def record_length(job, sink: list) -> None:
    """Reads ``job.length`` — callers must only use this post-completion."""
    sink.append(job.length)
