"""An honest non-clairvoyant scheduler using cross-module helpers.

``helpers.record_length`` *does* read ``job.length`` — but the only call
site is ``on_completion``, outside the pre-completion reachability set,
so RL007 stays silent.  A whole-program analysis that flagged every
caller of a length-reading helper regardless of hook would fail this
fixture.
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.engine import JobView, SchedulerContext
from repro.schedulers.base import OnlineScheduler

from . import helpers


class CleanPkgScheduler(OnlineScheduler):
    """Starts by deadline slack; observes lengths only at completion."""

    name: ClassVar[str] = "fixture-clean-pkg"
    requires_clairvoyance: ClassVar[bool] = False

    def __init__(self) -> None:
        super().__init__()
        self.observed_lengths: list[float] = []

    def reset(self) -> None:
        super().reset()
        self.observed_lengths = []

    def on_arrival(self, ctx: SchedulerContext, job: JobView) -> None:
        # Pre-completion use of a helper is fine: urgency() only touches
        # arrival-visible fields.
        if helpers.urgency(job, ctx.now) <= 0.0:
            ctx.start(job.id)

    def on_deadline(self, ctx: SchedulerContext, job: JobView) -> None:
        for pending in ctx.pending():
            ctx.start(pending.id)

    def on_completion(self, ctx: SchedulerContext, job: JobView) -> None:
        helpers.record_length(job, self.observed_lengths)
