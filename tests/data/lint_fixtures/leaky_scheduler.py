"""RL001 fixture: a scheduler that *claims* to be non-clairvoyant yet
reads ``job.length`` before completion.

``tests/test_lint.py`` uses this file two ways:

* statically — ``python -m repro lint`` on this path must exit non-zero
  with an RL001 finding;
* dynamically — running it through the simulator in strict mode must trip
  the :class:`~repro.core.engine.ClairvoyanceGuard` on the same access.

The two verdicts agreeing (here, and *not* firing on
``clean_scheduler.py``) is the cross-validation contract of the rule.
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.engine import JobView, SchedulerContext
from repro.schedulers.base import OnlineScheduler


class LeakyScheduler(OnlineScheduler):
    """Mis-declared: peeks at processing lengths on arrival."""

    name: ClassVar[str] = "fixture-leaky"
    requires_clairvoyance: ClassVar[bool] = False  # <-- the lie RL001 catches

    def on_arrival(self, ctx: SchedulerContext, job: JobView) -> None:
        # Clairvoyance leak: `length` is hidden pre-completion in the
        # non-clairvoyant model this class declares.
        if job.length > 1.0:
            ctx.start(job.id)
        else:
            ctx.start(job.id)
