"""The same spawn with an owned handle (RL018 clean)."""

from __future__ import annotations

import asyncio


async def kickoff() -> None:
    """Store the handle and await it: exceptions surface here."""
    task = asyncio.create_task(_worker())
    await task


async def _worker() -> None:
    await asyncio.sleep(0)
