"""RL018 fixture package: a discarded ``create_task`` handle.

``offending.py`` spawns a failing worker as a bare expression
statement: the only strong reference dies immediately and the worker's
``RuntimeError`` is parked until the interpreter's "Task exception was
never retrieved" teardown diagnostic.  ``clean.py`` stores and awaits
the handle, so the exception path is owned.

Both modules are runnable: ``tests/test_serve_loopwatch.py`` drives
them under :func:`repro.serve.loopwatch.watched_run`, whose
``gc.collect()`` makes the orphan diagnostic deterministic — the
instrumented loop's exception handler must capture exactly one orphan
for the offending module and none for the clean one, mirroring the
static RL018 verdicts.
"""
