"""A spawned task whose handle is dropped on the floor (RL018)."""

from __future__ import annotations

import asyncio


async def kickoff() -> None:
    """Fire-and-forget a worker that fails — nobody will ever know."""
    asyncio.create_task(_worker())  # RL018: handle discarded
    await asyncio.sleep(0.01)


async def _worker() -> None:
    raise RuntimeError("orphaned failure")
