"""Work functions of every flavour for the RL008 fixtures."""

from __future__ import annotations

import random

_RESULTS: dict[int, float] = {}


def pure_cell(cell: int) -> float:
    """Pool-safe: top-level, no effects, depends only on its argument."""
    return cell * 2.0


def caching_cell(cell: int) -> float:
    """Impure: memoises into a module global (diverges across workers)."""
    _RESULTS[cell] = cell * 2.0
    return _RESULTS[cell]


def jittered_cell(cell: int) -> float:
    """Impure: unseeded module-level RNG (non-deterministic)."""
    return cell + random.random()


def wrapped_cell(cell: int) -> float:
    """Looks pure — the impurity is one call hop away."""
    return jittered_cell(cell)
