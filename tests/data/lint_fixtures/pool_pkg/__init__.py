"""RL008 fixture package: pool-safe vs pool-unsafe work functions.

``work.py`` holds the work functions; ``driver.py`` submits them to a
:class:`repro.perf.parallel.ParallelRunner`.  The purity analysis must
flag the impure submissions (module-global write, unseeded RNG — also
transitively, through a pure-looking wrapper) and the unpicklable ones
(lambda, nested closure), while accepting the pure top-level function.
"""
