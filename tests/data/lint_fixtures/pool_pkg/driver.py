"""Submission sites for the RL008 fixtures.

Each ``bad_*`` function contains exactly one flagged submission; the
``good`` function must produce no findings.
"""

from __future__ import annotations

from repro.perf.parallel import ParallelRunner

from . import work


def good(cells: list[int]) -> list[float]:
    runner = ParallelRunner(workers=2)
    return runner.map(work.pure_cell, cells)


def bad_global_write(cells: list[int]) -> list[float]:
    runner = ParallelRunner(workers=2)
    return runner.map(work.caching_cell, cells)  # RL008: global write


def bad_transitive_rng(cells: list[int]) -> list[float]:
    runner = ParallelRunner(workers=2)
    return runner.map(work.wrapped_cell, cells)  # RL008: rng via callee


def bad_lambda(cells: list[int]) -> list[float]:
    runner = ParallelRunner(workers=2)
    return runner.map(lambda c: c * 2.0, cells)  # RL008: unpicklable


def bad_closure(cells: list[int], scale: float) -> list[float]:
    runner = ParallelRunner(workers=2)

    def scaled(c: int) -> float:
        return c * scale  # captures `scale`

    return runner.map(scaled, cells)  # RL008: closure capture
