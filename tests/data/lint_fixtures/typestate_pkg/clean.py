"""Clean RL014 cases: every transition in its legal phase, starts attributed."""

from __future__ import annotations

from typing import ClassVar

from repro.core.engine import JobView, SchedulerContext
from repro.schedulers.base import OnlineScheduler

_PENDING = 0
_RUNNING = 1
_DONE = 2


class TidyCore:
    """The same mini-core shape with lawful lifecycle writes."""

    def __init__(self) -> None:
        self.state: list = []
        self.completed: dict = {}

    def _handle_arrival(self, idx: int) -> None:
        self.state[idx] = _PENDING

    def _handle_completion(self, idx: int) -> None:
        self.state[idx] = _DONE
        self.completed[idx] = True

    def _start_job(self, idx: int) -> None:
        self.state[idx] = _RUNNING


class AttributedDeadlineScheduler(OnlineScheduler):
    """Starts deadline jobs with the paper's deadline attribution."""

    name: ClassVar[str] = "fixture-attributed-deadline"
    requires_clairvoyance: ClassVar[bool] = False

    def on_arrival(self, ctx: SchedulerContext, job: JobView) -> None:
        self.obs.decision("epoch", job=job.id, t=ctx.now)

    def on_deadline(self, ctx: SchedulerContext, job: JobView) -> None:
        self.obs.decision("deadline-flag", job=job.id, t=ctx.now)
        self._flush(ctx)

    def _flush(self, ctx: SchedulerContext) -> None:
        ctx.start_batch(ctx.pending_ids())
