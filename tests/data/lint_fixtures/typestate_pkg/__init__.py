"""RL014 fixtures: lifecycle-typestate and deadline-backstop cases.

``bad.py`` holds the offending cases — a mini-core whose handlers write
lifecycle states in illegal event phases, and an instrumented scheduler
that starts jobs from ``on_deadline`` without ever emitting a
``deadline-flag``/``deadline-backstop`` decision.  ``clean.py`` holds
the same shapes done right — every transition in its legal phase, the
deadline start attributed.  ``tests/test_lint_invariants.py``
asserts RL014 flags exactly the bad module.
"""
