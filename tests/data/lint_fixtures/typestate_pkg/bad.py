"""Offending RL014 cases: illegal lifecycle phases, silent deadline starts."""

from __future__ import annotations

from typing import ClassVar

from repro.core.engine import JobView, SchedulerContext
from repro.schedulers.base import OnlineScheduler

_PENDING = 0
_RUNNING = 1
_DONE = 2


class SloppyCore:
    """A mini-core whose handlers write states in the wrong phases."""

    def __init__(self) -> None:
        self.state: list = []
        self.completed: dict = {}

    def _handle_arrival(self, idx: int) -> None:
        self.state[idx] = _DONE  # arrival may not complete a job
        self.completed[idx] = True  # bool lifecycle field, wrong phase

    def _handle_completion(self, idx: int) -> None:
        self.state[idx] = _RUNNING  # completion may not (re)start a job

    def _start_job(self, idx: int) -> None:
        self.state[idx] = _PENDING  # starting must not re-pend


class SilentDeadlineScheduler(OnlineScheduler):
    """Instrumented (emits decisions) but starts deadline jobs without a
    ``deadline-flag``/``deadline-backstop`` attribution."""

    name: ClassVar[str] = "fixture-silent-deadline"
    requires_clairvoyance: ClassVar[bool] = False

    def on_arrival(self, ctx: SchedulerContext, job: JobView) -> None:
        self.obs.decision("epoch", job=job.id, t=ctx.now)

    def on_deadline(self, ctx: SchedulerContext, job: JobView) -> None:
        self._flush(ctx)

    def _flush(self, ctx: SchedulerContext) -> None:
        ctx.start_batch(ctx.pending_ids())
