"""RL015 offending fixture: the vocabulary leaks in both directions.

The package declares a three-key ``DECISION_RULES`` vocabulary but its
scheduler emits an out-of-vocabulary reason (``panic-start``), a
*computed* reason (uncertifiable), and never emits ``ghost-rule`` (a
dead key).  ``tests/test_lint_invariants.py`` expects exactly those
three findings — and feeds the same rogue reason to the runtime
reconciler (``repro obs explain --strict``) to show the two oracles
agree.
"""
