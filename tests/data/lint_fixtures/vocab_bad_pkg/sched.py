"""A scheduler that breaks the closed-vocabulary contract both ways."""

from __future__ import annotations

from typing import ClassVar

from repro.core.engine import JobView, SchedulerContext
from repro.schedulers.base import OnlineScheduler

DECISION_RULES: dict[str, str] = {
    "deadline-flag": "flag job reached its starting deadline",
    "epoch": "fixed-period batch point fired",
    "ghost-rule": "documented but never emitted by anyone",
}


class RogueScheduler(OnlineScheduler):
    """Emits reasons the vocabulary does not know, and vice versa."""

    name: ClassVar[str] = "fixture-rogue"
    requires_clairvoyance: ClassVar[bool] = False

    def on_arrival(self, ctx: SchedulerContext, job: JobView) -> None:
        self.obs.decision("panic-start", job=job.id, t=ctx.now)
        reason = "epo" + "ch"
        self.obs.decision(reason, job=job.id, t=ctx.now)

    def on_deadline(self, ctx: SchedulerContext, job: JobView) -> None:
        self.obs.decision("deadline-flag", job=job.id, t=ctx.now)
        ctx.start_batch(ctx.pending_ids())
