"""A scheduler whose decisions and vocabulary match exactly."""

from __future__ import annotations

from typing import ClassVar

from repro.core.engine import JobView, SchedulerContext
from repro.schedulers.base import OnlineScheduler

DECISION_RULES: dict[str, str] = {
    "deadline-flag": "flag job reached its starting deadline",
    "epoch": "fixed-period batch point fired",
}


class LawfulScheduler(OnlineScheduler):
    """Every reason is a key; every key is emitted."""

    name: ClassVar[str] = "fixture-lawful"
    requires_clairvoyance: ClassVar[bool] = False

    def on_arrival(self, ctx: SchedulerContext, job: JobView) -> None:
        self.obs.decision("epoch", job=job.id, t=ctx.now)

    def on_deadline(self, ctx: SchedulerContext, job: JobView) -> None:
        self.obs.decision("deadline-flag", job=job.id, t=ctx.now)
        ctx.start_batch(ctx.pending_ids())
