"""RL015 clean fixture: a closed vocabulary, fully used, nothing else."""
