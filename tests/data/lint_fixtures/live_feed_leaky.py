"""RL011/RL012 fixture: a live-telemetry feed that leaks on the hot path.

Linted under a virtual ``src/repro/obs/live.py`` path — the per-record
``_handle_*`` sections below print (RL011) and materialise per-record
objects (RL012), both of which the real telemetry plane must never do:
it runs once per engine record on every armed serve session.
"""

from repro.core import Job  # noqa


class LeakyTelemetry:
    def _handle_release(self, attrs):
        # Per-record stdout write inside the feed.
        print("release", attrs["job"])  # RL011
        job = Job(  # RL012
            id=attrs["job"],
            arrival=attrs["arrival"],
            deadline=attrs["deadline"],
            length=attrs["length"],
        )
        return job

    def _handle_start(self, records):
        # Attribute-gather comprehension over record objects.
        starts = [record.ts for record in records]  # RL012
        return starts

    def render_snapshot(self, rows):
        # Not a hot section: rendering happens per scrape, not per record.
        return [Job(id=r, arrival=0.0, deadline=1.0, length=1.0) for r in rows]
