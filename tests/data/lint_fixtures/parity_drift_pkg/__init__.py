"""RL013 fixture: the *drifted* twin of ``parity_pkg``.

Same miniature dual-core pair, but the columnar side has drifted in
three statically-visible ways —

* ``_handle_arrival`` writes a ``retries`` column with no
  ``_PARITY_FIELDS`` mapping and no annotation;
* the ``_RUNNING`` write carries a ``# parity: object-only`` annotation
  *inside the columnar core* (wrong side);
* ``_handle_completion`` can raise ``SimulationError`` on a path the
  object core does not have (exception-closure drift);

— and one runtime-visible way the static model deliberately cannot see:
``_start_job`` records the job's *arrival* instead of the clock as its
start time, so the two cores disagree on any instance with queueing.
``tests/test_lint_invariants.py`` asserts both halves: RL013 flags the
static drift, and a lockstep run of the two mini-cores diverges —
the same double certification ``REPRO_PARITY=1`` gives the real engine.
"""
