"""The drifted columnar mini-core — see the package docstring."""

from __future__ import annotations

import heapq

from repro.core.errors import SimulationError

_PARITY_CORE = "columnar"
_PARITY_PEER = "parity_drift_pkg.object_core"
_PARITY_FIELDS = {
    "start_col": "start-time",
    "state": "lifecycle",
    "_free_at": "busy-until",
    "_pending": "pending-index",
}

_ARRIVAL = 0
_COMPLETION = 1

_PENDING = 0
_RUNNING = 1
_DONE = 2


class DriftingColumnarCore:
    """Columnar FIFO loop that has drifted from its object twin."""

    def __init__(self) -> None:
        self._now = 0.0
        self._free_at = 0.0
        self._events: list = []
        self._pending: list = []
        self.ids_col: list = []
        self.arrival_col: list = []
        self.length_col: list = []
        self.state: list = []
        self.start_col: list = []
        self.retries: list = []

    def run(self, jobs) -> dict:
        for job_id, arrival, length in jobs:
            row = len(self.ids_col)
            self.ids_col.append(job_id)
            self.arrival_col.append(arrival)
            self.length_col.append(length)
            self.state.append(_PENDING)
            self.start_col.append(None)
            self.retries.append(0)
            heapq.heappush(self._events, (arrival, _ARRIVAL, row))
        events = self._events
        while events:
            t, kind, idx = heapq.heappop(events)
            if t < self._now:
                raise SimulationError("event time moved backwards")
            self._now = t
            if kind == _ARRIVAL:
                self._handle_arrival(idx)
            else:
                self._handle_completion(idx)
        return {
            self.ids_col[i]: self.start_col[i]
            for i in range(len(self.ids_col))
            if self.start_col[i] is not None
        }

    def _handle_arrival(self, idx: int) -> None:
        self.state[idx] = _PENDING
        self.retries[idx] = 0  # drift: no mapping, no annotation
        self._pending.append(idx)
        self._start_job()

    def _handle_completion(self, idx: int) -> None:
        if idx < 0:
            # drift: an exception the object core's closure never raises
            raise SimulationError("negative row in completion")
        self.state[idx] = _DONE
        self._free_at = self._now
        self._start_job()

    def _start_job(self) -> None:
        while self._pending and self._free_at <= self._now:
            idx = self._pending.pop(0)
            self.state[idx] = _RUNNING  # parity: object-only
            # drift (runtime-only): records arrival, not the clock.
            self.start_col[idx] = self.arrival_col[idx]
            when = self._now + self.length_col[idx]
            self._free_at = when
            heapq.heappush(self._events, (when, _COMPLETION, idx))
