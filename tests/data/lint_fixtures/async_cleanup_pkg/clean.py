"""The same cleanup await behind ``asyncio.shield`` (RL020 clean)."""

from __future__ import annotations

import asyncio


class Courier:
    def __init__(self) -> None:
        self.outbox: asyncio.Queue = asyncio.Queue(4)
        self.sent: list[int] = []

    async def flush(self) -> None:
        while not self.outbox.empty():
            await asyncio.sleep(0.05)  # suspend before each hop
            self.sent.append(self.outbox.get_nowait())


async def deliver(courier: Courier, payload: int) -> None:
    try:
        await courier.outbox.put(payload)
        await asyncio.sleep(60.0)
    finally:
        # Shielded: cancelling the delivery cannot tear the flush.
        await asyncio.shield(courier.flush())


async def run_cancelled() -> list[int]:
    """Cancel a delivery twice; the shielded flush still lands."""
    courier = Courier()
    task = asyncio.create_task(deliver(courier, 7))
    await asyncio.sleep(0.01)
    task.cancel()
    await asyncio.sleep(0.01)
    task.cancel()
    try:
        await task
    except asyncio.CancelledError:
        pass
    await asyncio.sleep(0.2)  # let the shielded flush finish
    return courier.sent
