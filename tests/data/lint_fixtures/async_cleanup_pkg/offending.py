"""An unshielded await inside ``finally`` (RL020)."""

from __future__ import annotations

import asyncio


class Courier:
    """Bounded outbox whose flush must survive cancellation — it won't."""

    def __init__(self) -> None:
        self.outbox: asyncio.Queue = asyncio.Queue(4)
        self.sent: list[int] = []

    async def flush(self) -> None:
        while not self.outbox.empty():
            await asyncio.sleep(0.05)  # suspend before each hop
            self.sent.append(self.outbox.get_nowait())


async def deliver(courier: Courier, payload: int) -> None:
    try:
        await courier.outbox.put(payload)
        await asyncio.sleep(60.0)
    finally:
        await courier.flush()  # RL020: unshielded cleanup await


async def run_cancelled() -> list[int]:
    """Cancel a delivery twice; the second cancel tears the flush."""
    courier = Courier()
    task = asyncio.create_task(deliver(courier, 7))
    await asyncio.sleep(0.01)  # let it reach the long sleep
    task.cancel()
    await asyncio.sleep(0.01)  # cleanup begins, suspends in flush()
    task.cancel()  # ...and dies there
    try:
        await task
    except asyncio.CancelledError:
        pass
    await asyncio.sleep(0.2)
    return courier.sent
