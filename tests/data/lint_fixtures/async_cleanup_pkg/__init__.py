"""RL020 fixture package: cleanup awaits vs. cancellation.

``offending.py`` flushes an output queue from a bare ``finally`` —
the second cancellation (a drain timeout, a loop teardown) lands in
that await and abandons the flush mid-flight.  ``clean.py`` wraps the
same flush in ``asyncio.shield``, so outer cancellation cannot tear
it.

The runtime half is a direct asyncio assertion
(``tests/test_serve_loopwatch.py``): each module's ``run_cancelled``
delivers one payload, cancels the courier twice, and reports what got
flushed — the offending flush loses the payload, the shielded one
lands it.
"""
