"""RL007 fixture package: a clairvoyance leak laundered across modules.

``sched.py`` declares ``requires_clairvoyance = False`` but routes every
pre-completion length read through :mod:`laundered_pkg.helpers` — which
is exactly the blind spot of per-file RL001 and the *raison d'être* of
whole-program RL007.  ``tests/test_lint_dataflow.py`` asserts three
things on this package:

* RL001 alone reports **nothing** (the leak is invisible per-file);
* RL007 reports the laundered leak in ``sched.py``;
* the runtime :class:`~repro.core.engine.ClairvoyanceGuard` agrees —
  running :class:`laundered_pkg.sched.LaunderingScheduler` under strict
  mode raises :class:`~repro.core.ClairvoyanceError`.
"""
