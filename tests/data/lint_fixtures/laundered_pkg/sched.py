"""The launderer: non-clairvoyant by declaration, clairvoyant by dataflow.

Per-file RL001 sees only a call to ``helpers.effective_weight(job)`` —
no ``.length`` read in sight.  RL007 resolves the call edge into
:mod:`laundered_pkg.helpers`, finds the transitive read, and reports it
*here*, at the launder site.
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.engine import JobView, SchedulerContext
from repro.schedulers.base import OnlineScheduler

from . import helpers


class LaunderingScheduler(OnlineScheduler):
    """Mis-declared: peeks at lengths through another module."""

    name: ClassVar[str] = "fixture-laundering"
    requires_clairvoyance: ClassVar[bool] = False  # <-- the laundered lie

    def on_arrival(self, ctx: SchedulerContext, job: JobView) -> None:
        # The leak RL001 cannot see: job.length is read two call hops
        # away, in a different module.
        if helpers.effective_weight(job) > 2.0:
            ctx.start(job.id)
        else:
            ctx.start(job.id)
