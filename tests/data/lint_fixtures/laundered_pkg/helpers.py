"""Innocent-looking helpers that read clairvoyant state.

No scheduler class lives here, so per-file RL001 has nothing to say
about this module — the functions just take "some object" and read its
``length``.  Only the whole-program taint analysis connects them to the
non-clairvoyant caller in :mod:`laundered_pkg.sched`.
"""

from __future__ import annotations


def peek(job) -> float:
    """Directly reads the hidden processing length."""
    return job.length


def effective_weight(job, scale: float = 2.0) -> float:
    """One more hop: the leak survives an intermediate call."""
    return peek(job) * scale
