"""Self-contained RL009 cases: guards derived from raise patterns."""

from __future__ import annotations

BAD_ALPHA = 1.0  # resolved through constant propagation
GOOD_ALPHA = 2.0


class Boxed:
    """Mirrors the CDB constructor idiom: an open-domain guard."""

    def __init__(self, alpha: float = 2.0, mu: float = 4.0) -> None:
        if alpha <= 1:
            raise ValueError("alpha must exceed 1 (Theorem 4.4 domain)")
        if mu < 1:
            raise ValueError("mu must be at least 1")
        self.alpha = alpha
        self.mu = mu


def scaled(k: float) -> float:
    if k <= 1:
        raise ValueError("k must exceed 1 (Theorem 4.11 domain)")
    return 2 * k + 2 + 1 / (k - 1)


def bad_literal() -> Boxed:
    return Boxed(alpha=1.0)  # flagged: alpha <= 1


def bad_positional() -> Boxed:
    return Boxed(0.5)  # flagged: alpha <= 1 (positional binding)


def bad_const_ref() -> Boxed:
    return Boxed(alpha=BAD_ALPHA)  # flagged through constant resolution


def bad_mu() -> Boxed:
    return Boxed(alpha=2.0, mu=0.25)  # flagged: mu < 1


def bad_function_arg() -> float:
    return scaled(k=1)  # flagged: k <= 1


def good() -> Boxed:
    return Boxed(alpha=GOOD_ALPHA, mu=4.0)  # inside the domain


def good_expr(alpha: float) -> Boxed:
    return Boxed(alpha=alpha)  # non-constant: not statically decidable
