"""RL009 against the shipped schedulers (lint together with src/repro).

CDB's (3α+4+2/(α−1))-competitiveness needs α > 1 (Theorem 4.4) and
Profit's (2k+2+1/(k−1))-competitiveness needs k > 1 (Theorem 4.11);
both constructors raise at the boundary, and RL009 moves that failure
from experiment time to review time — including through the
``make_scheduler`` registry indirection.
"""

from __future__ import annotations

from repro.schedulers import ClassifyByDurationBatchPlus, Profit
from repro.schedulers.registry import make_scheduler


def bad_cdb():
    # flagged: Theorem 4.4 needs alpha > 1
    return ClassifyByDurationBatchPlus(alpha=1.0)


def bad_profit():
    return Profit(k=1)  # flagged: Theorem 4.11 needs k > 1


def bad_registry():
    return make_scheduler("cdb", alpha=0.5)  # flagged via the registry


def good_cdb():
    return ClassifyByDurationBatchPlus(alpha=2.0)


def good_profit():
    return Profit(k=2.0)
