"""RL009 fixture package: parameter-domain violations.

``local.py`` exercises the guard-derivation machinery on a
self-contained class (no external resolution needed); ``paper.py``
constructs the *real* ``CDB``/``Profit`` schedulers outside their
theorem domains (α > 1, k > 1) and is linted together with the shipped
``src/repro`` tree so the cross-module guard lookup resolves.
"""
