"""Unbounded intake channels: backpressure silently broken (RL019)."""

from __future__ import annotations

import asyncio

_SERVE_SCOPE = True  # serving-layer backpressure rules apply here


class Hub:
    """A stalled consumer grows this hub's memory without limit."""

    def __init__(self) -> None:
        self.inbox: asyncio.Queue = asyncio.Queue()  # RL019: unbounded
        self.frames = asyncio.StreamReader()  # RL019: default limit


async def overfill(n: int) -> int:
    """Stuff ``n`` items in without ever blocking; returns the depth."""
    hub = Hub()
    for i in range(n):
        hub.inbox.put_nowait(i)  # never raises QueueFull
    return hub.inbox.qsize()
