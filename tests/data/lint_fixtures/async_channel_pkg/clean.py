"""The same hub with every channel bounded (RL019 clean)."""

from __future__ import annotations

import asyncio

_SERVE_SCOPE = True  # serving-layer backpressure rules apply here

#: The intake bound a stalled consumer pushes back against.
BOUND = 8


class Hub:
    def __init__(self) -> None:
        self.inbox: asyncio.Queue = asyncio.Queue(BOUND)
        self.frames = asyncio.StreamReader(limit=65536)


async def overfill(n: int) -> int:
    """Stuff items in until the bound rejects one; returns how many fit."""
    hub = Hub()
    filled = 0
    for i in range(n):
        try:
            hub.inbox.put_nowait(i)
        except asyncio.QueueFull:
            break
        filled += 1
    return filled
