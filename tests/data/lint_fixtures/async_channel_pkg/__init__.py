"""RL019 fixture package: unbounded channels in serving-scoped code.

Both modules opt into the serving-layer backpressure rules via the
``_SERVE_SCOPE = True`` module constant (the fixture lives outside
``repro/serve/``).  ``offending.py`` constructs a default
``asyncio.Queue()`` and ``asyncio.StreamReader()`` — both unbounded;
``clean.py`` passes explicit bounds.

The runtime half is a direct asyncio assertion
(``tests/test_serve_loopwatch.py``): overfilling the offending hub
with ``put_nowait`` never raises — memory growth is the only limit —
while the clean hub rejects the overflow with ``QueueFull`` at its
declared bound.
"""
