"""Offending RL016 cases: past-capable keys and unguarded clock writes."""

from __future__ import annotations

import heapq

_TIMER = 0
_COMPLETION = 1


class RewindingQueue:
    """Pushes keys that nothing proves are >= the current clock."""

    def __init__(self) -> None:
        self._now = 0.0
        self._events: list = []
        self.retry_at: list = []

    def schedule_retry(self, idx: int) -> None:
        retry = self.retry_at[idx]
        # Nothing guards ``retry`` against the clock: it may be stale.
        heapq.heappush(self._events, (retry, _TIMER, idx))

    def schedule_grace(self, idx: int, grace: float) -> None:
        when = grace - 1.0
        heapq.heappush(self._events, (when, _COMPLETION, idx))

    def rewind(self, checkpoint: float) -> None:
        # Unvetted parameter straight into the clock.
        self._now = checkpoint
