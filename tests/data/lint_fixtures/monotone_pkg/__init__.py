"""RL016 fixtures: provably-monotone vs unprovable event-queue writes.

``bad.py`` pushes heap keys no guard, anchor, or admission axiom covers,
and writes the clock from an unvetted value.  ``clean.py`` shows every
accepted proof form: ``now``-anchored keys, raise-guarded leaves (scalar
and vectorised compare-local), the ``arrival``/``deadline`` admission
axioms, helper-guarded locals, and constant clock resets.
"""
