"""Clean RL016 cases: one push site per accepted proof form."""

from __future__ import annotations

import heapq

_ARRIVAL = 0
_DEADLINE = 1
_ASSIGN = 2
_TIMER = 3
_COMPLETION = 4


class MonotoneQueue:
    """Every key is anchored, guarded, axiomatic, or helper-vetted."""

    def __init__(self) -> None:
        self._now = 0.0
        self._events: list = []

    def push_anchored(self, length: float, idx: int) -> None:
        when = self._now + length
        heapq.heappush(self._events, (when, _COMPLETION, idx))

    def push_guarded(self, when: float, idx: int) -> None:
        if when < self._now:
            raise ValueError("past event")
        heapq.heappush(self._events, (when, _TIMER, idx))

    def push_axioms(self, arrival: float, deadline: float, idx: int) -> None:
        heapq.heappush(self._events, (arrival, _ARRIVAL, idx))
        heapq.heappush(self._events, (deadline, _DEADLINE, idx))

    def push_vectorised(self, completions, idx: int) -> None:
        past = completions < self._now
        if past.any():
            raise ValueError("past completion in batch")
        heapq.heappush(self._events, (completions, _COMPLETION, idx))

    def push_helper_vetted(self, t: float, idx: int) -> None:
        when = self._vetted(t)
        heapq.heappush(self._events, (when, _ASSIGN, idx))

    def _vetted(self, when: float) -> float:
        if when < self._now:
            raise ValueError("past event")
        return when

    def reset(self) -> None:
        self._now = 0.0

    def advance(self, t: float) -> None:
        if t < self._now:
            raise ValueError("clock moved backwards")
        self._now = t
