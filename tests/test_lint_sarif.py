"""Tests for SARIF 2.1.0 export (``repro lint --format sarif``).

Shape-checks the payload (schema/version, driver rule index, result
records with locations and fingerprints), its determinism, and the CLI
integration used by the CI code-scanning upload.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.lint import ALL_RULES, lint_paths, render_sarif, to_sarif
from repro.lint.sarif import SARIF_SCHEMA_URI, SARIF_VERSION

FIXTURES = Path(__file__).parent / "data" / "lint_fixtures"
REPO_ROOT = Path(__file__).resolve().parents[1]


def _report():
    # The monotone fixture yields a small, stable set of findings.
    return lint_paths([FIXTURES / "monotone_pkg"])


class TestSarifPayload:
    def test_top_level_shape(self):
        log = to_sarif(_report())
        assert log["version"] == SARIF_VERSION == "2.1.0"
        assert log["$schema"] == SARIF_SCHEMA_URI
        assert len(log["runs"]) == 1
        assert log["runs"][0]["tool"]["driver"]["name"] == "repro-lint"

    def test_driver_lists_every_registered_rule(self):
        driver = to_sarif(_report())["runs"][0]["tool"]["driver"]
        ids = [r["id"] for r in driver["rules"]]
        assert ids == [r.code for r in ALL_RULES]
        by_id = {r["id"]: r for r in driver["rules"]}
        # Full descriptions come from the --explain docstrings.
        assert "Offending" in by_id["RL016"]["fullDescription"]["text"]
        assert by_id["RL016"]["defaultConfiguration"]["level"] in (
            "error",
            "warning",
        )

    def test_results_carry_location_and_fingerprint(self):
        report = _report()
        log = to_sarif(report)
        results = log["runs"][0]["results"]
        assert len(results) == len(report.findings) > 0
        fingerprints = {f.fingerprint for f in report.findings}
        for res, finding in zip(results, report.findings):
            assert res["ruleId"] == finding.rule
            loc = res["locations"][0]["physicalLocation"]
            assert loc["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
            assert loc["artifactLocation"]["uri"].endswith(".py")
            assert loc["region"]["startLine"] >= 1
            assert loc["region"]["startColumn"] >= 1
            assert res["partialFingerprints"]["reproLint/v1"] in fingerprints
            # ruleIndex points back into the driver rule table.
            rules = log["runs"][0]["tool"]["driver"]["rules"]
            assert rules[res["ruleIndex"]]["id"] == finding.rule

    def test_render_is_deterministic_json(self):
        a = render_sarif(_report())
        b = render_sarif(_report())
        assert a == b
        json.loads(a)  # parses


class TestSarifCLI:
    def _run(self, *argv: str):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        return subprocess.run(
            [sys.executable, "-m", "repro", "lint", *argv],
            capture_output=True,
            text=True,
            cwd=str(REPO_ROOT),
            env=env,
        )

    def test_format_sarif_on_offending_fixture(self):
        proc = self._run("--format", "sarif", str(FIXTURES / "monotone_pkg"))
        assert proc.returncode == 1  # findings still gate the exit code
        log = json.loads(proc.stdout)
        assert log["version"] == "2.1.0"
        assert any(
            res["ruleId"] == "RL016" for res in log["runs"][0]["results"]
        )

    def test_format_sarif_on_clean_tree(self):
        proc = self._run("--format", "sarif", "src/repro")
        assert proc.returncode == 0, proc.stderr
        log = json.loads(proc.stdout)
        assert log["runs"][0]["results"] == []
