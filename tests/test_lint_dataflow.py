"""Tests for the whole-program dataflow layer (``repro.lint.dataflow``).

Covers the four program rules (RL007–RL010) on multi-module fixture
packages, the RL001-vs-RL007 laundering gap, the static ⇄ runtime
``ClairvoyanceGuard`` cross-validation in both directions, the
incremental analysis cache (a second run on an unchanged tree
re-analyzes zero files), the ``--jobs`` parallel front-end, and the
``--explain`` CLI.
"""

from __future__ import annotations

import ast
import importlib
import json
import math
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.core import ClairvoyanceError, Instance, Simulator
from repro.lint import (
    ALL_RULES,
    AnalysisCache,
    Program,
    ProgramRule,
    default_target,
    lint_paths,
    lint_source,
    rule_by_code,
)
from repro.lint.dataflow import FileSummary, extract_summary, module_name_for
from repro.lint.dataflow.cache import file_key

FIXTURES = Path(__file__).parent / "data" / "lint_fixtures"
LAUNDERED = FIXTURES / "laundered_pkg"
CLEAN_PKG = FIXTURES / "clean_pkg"
POOL_PKG = FIXTURES / "pool_pkg"
DOMAIN_PKG = FIXTURES / "domain_pkg"
HEAP_PKG = FIXTURES / "heap_pkg"
REPO_ROOT = Path(__file__).resolve().parents[1]

PROGRAM_CODES = {"RL007", "RL008", "RL009", "RL010"}


def codes(findings) -> set[str]:
    return {f.rule for f in findings}


def by_rule(findings, code: str):
    return [f for f in findings if f.rule == code]


def _import_fixture_module(dotted: str):
    """Import ``laundered_pkg.sched``-style fixture packages."""
    if str(FIXTURES) not in sys.path:
        sys.path.insert(0, str(FIXTURES))
    return importlib.import_module(dotted)


@pytest.fixture
def two_jobs() -> Instance:
    return Instance.from_triples([(0, 2, 1), (0, 2, 3)], name="dataflow-probe")


# ---------------------------------------------------------------------------
# Registry / plumbing
# ---------------------------------------------------------------------------


class TestProgramRulePlumbing:
    def test_program_rules_registered(self):
        assert PROGRAM_CODES <= {r.code for r in ALL_RULES}

    def test_program_rules_are_program_rules(self):
        for code in sorted(PROGRAM_CODES):
            assert isinstance(rule_by_code(code), ProgramRule)

    def test_program_rules_inert_in_lint_source(self):
        # A lone source string has no whole-program context: RL007 must
        # not fire even on a blatant leak routed through a local helper.
        src = textwrap.dedent(
            """
            def peek(job):
                return job.length

            class S(OnlineScheduler):
                requires_clairvoyance = False

                def on_arrival(self, ctx, job):
                    return peek(job)
            """
        )
        assert not codes(lint_source(src)) & PROGRAM_CODES

    def test_rule_docstrings_carry_snippets(self):
        # --explain sources its payload from the class docstring; every
        # program rule documents an offending and a clean snippet.
        for code in sorted(PROGRAM_CODES):
            doc = type(rule_by_code(code)).__doc__ or ""
            assert "Offending" in doc and "Clean" in doc, code


# ---------------------------------------------------------------------------
# Summary extraction
# ---------------------------------------------------------------------------


class TestSummaryExtraction:
    def test_module_name_for_package_file(self):
        assert module_name_for(LAUNDERED / "sched.py") == "laundered_pkg.sched"
        assert module_name_for(LAUNDERED / "__init__.py") == "laundered_pkg"

    def test_summary_roundtrips_through_json(self):
        path = LAUNDERED / "sched.py"
        src = path.read_text()
        summary = extract_summary(
            "laundered_pkg/sched.py",
            src,
            ast.parse(src),
            "laundered_pkg.sched",
            None,
        )
        data = json.loads(json.dumps(summary.to_dict()))
        restored = FileSummary.from_dict(data)
        assert restored == summary

    def test_guard_derivation(self):
        src = textwrap.dedent(
            """
            def f(alpha, k):
                if alpha <= 1:
                    raise ValueError("bad alpha")
                if 1 >= k:
                    raise ValueError("bad k")
                return alpha * k
            """
        )
        summary = extract_summary("m.py", src, ast.parse(src), "m", None)
        guards = {(g[0], g[1], g[2]) for g in summary.functions["f"].guards}
        assert ("alpha", "<=", 1.0) in guards
        assert ("k", "<=", 1.0) in guards  # flipped orientation

    def test_constant_folding_through_math(self):
        src = "X = 1 + math.sqrt(2.0 / 3.0)\n"
        summary = extract_summary("m.py", src, ast.parse(src), "m", None)
        assert summary.constants["X"]["v"] == pytest.approx(
            1 + math.sqrt(2 / 3)
        )

    def test_relative_import_resolution_in_package_init(self):
        # Regression: a level-1 import in __init__.py resolves against
        # the package itself, not its parent.
        src = "from .cdb import ClassifyByDurationBatchPlus\n"
        summary = extract_summary(
            "repro/schedulers/__init__.py",
            src,
            ast.parse(src),
            "repro.schedulers",
            None,
        )
        assert (
            summary.imports["ClassifyByDurationBatchPlus"]
            == "repro.schedulers.cdb.ClassifyByDurationBatchPlus"
        )


# ---------------------------------------------------------------------------
# RL007: the laundering gap (the headline satellite)
# ---------------------------------------------------------------------------


class TestLaunderedLeak:
    def test_rl001_alone_misses_the_laundered_leak(self):
        report = lint_paths([LAUNDERED], rules=[rule_by_code("RL001")])
        assert report.clean, report.render()

    def test_rl007_catches_the_laundered_leak(self):
        report = lint_paths([LAUNDERED])
        hits = by_rule(report.findings, "RL007")
        assert hits, report.render()
        (hit,) = hits
        assert hit.path.endswith("sched.py")
        assert "helpers.effective_weight" in hit.message
        assert "helpers.py" in hit.message  # witness points into the helper

    def test_clean_multi_module_package_not_flagged(self):
        report = lint_paths([CLEAN_PKG])
        assert report.clean, report.render()

    def test_rl007_respects_inline_suppression(self, tmp_path):
        pkg = tmp_path / "supp_pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "helpers.py").write_text("def peek(job):\n    return job.length\n")
        (pkg / "sched.py").write_text(
            textwrap.dedent(
                """
                from . import helpers

                class S(OnlineScheduler):
                    requires_clairvoyance = False

                    def on_arrival(self, ctx, job):
                        return helpers.peek(job)  # lint: ignore[RL007]
                """
            )
        )
        report = lint_paths([pkg])
        assert not by_rule(report.findings, "RL007"), report.render()
        assert report.suppressed >= 1
        # Sanity: without the pragma the same package is flagged.
        text = (pkg / "sched.py").read_text()
        (pkg / "sched.py").write_text(text.replace("  # lint: ignore[RL007]", ""))
        assert by_rule(lint_paths([pkg]).findings, "RL007")


# ---------------------------------------------------------------------------
# Static ⇄ runtime cross-validation (both directions)
# ---------------------------------------------------------------------------


class TestStaticDynamicAgreement:
    def test_laundered_flagged_statically(self):
        assert by_rule(lint_paths([LAUNDERED]).findings, "RL007")

    def test_laundered_trips_runtime_guard(self, two_jobs):
        mod = _import_fixture_module("laundered_pkg.sched")
        sched = mod.LaunderingScheduler()
        sim = Simulator(sched, instance=two_jobs, clairvoyant=True, strict=True)
        with pytest.raises(ClairvoyanceError):
            sim.run()
        guard = sim.strict_guard
        assert guard is not None and guard.accesses

    def test_clean_pkg_passes_statically(self):
        assert lint_paths([CLEAN_PKG]).clean

    def test_clean_pkg_passes_runtime_guard(self, two_jobs):
        mod = _import_fixture_module("clean_pkg.sched")
        sched = mod.CleanPkgScheduler()
        sim = Simulator(sched, instance=two_jobs, clairvoyant=True, strict=True)
        result = sim.run()
        guard = sim.strict_guard
        assert guard is not None and guard.accesses == []
        assert result.span > 0
        assert sorted(sched.observed_lengths) == [1.0, 3.0]


# ---------------------------------------------------------------------------
# RL008: pool-unsafe work
# ---------------------------------------------------------------------------


class TestPoolUnsafeWork:
    @pytest.fixture(scope="class")
    def report(self):
        return lint_paths([POOL_PKG])

    def test_flagged_symbols(self, report):
        flagged = {f.symbol for f in by_rule(report.findings, "RL008")}
        assert flagged == {
            "bad_global_write",
            "bad_transitive_rng",
            "bad_lambda",
            "bad_closure",
        }

    def test_global_write_witness(self, report):
        (hit,) = [
            f
            for f in by_rule(report.findings, "RL008")
            if f.symbol == "bad_global_write"
        ]
        assert "writes module-global state" in hit.message
        assert "work.py" in hit.message

    def test_transitive_rng_witness_names_call_chain(self, report):
        (hit,) = [
            f
            for f in by_rule(report.findings, "RL008")
            if f.symbol == "bad_transitive_rng"
        ]
        assert "unseeded RNG" in hit.message
        assert "via jittered_cell()" in hit.message

    def test_closure_capture_names_captured_variable(self, report):
        (hit,) = [
            f
            for f in by_rule(report.findings, "RL008")
            if f.symbol == "bad_closure"
        ]
        assert "scale" in hit.message

    def test_real_perf_work_functions_pass(self):
        # The shipped sweep/Monte-Carlo work functions must be pool-safe.
        report = lint_paths([default_target()])
        assert not by_rule(report.findings, "RL008"), report.render()


# ---------------------------------------------------------------------------
# RL009: parameter domains
# ---------------------------------------------------------------------------


class TestParameterDomain:
    def test_local_fixture_flags(self):
        report = lint_paths([DOMAIN_PKG / "local.py"])
        flagged = {f.symbol for f in by_rule(report.findings, "RL009")}
        assert flagged == {
            "bad_literal",
            "bad_positional",
            "bad_const_ref",
            "bad_mu",
            "bad_function_arg",
        }

    def test_real_cdb_profit_construction_sites(self):
        # Linted together with src/repro so the cross-module guard
        # lookup resolves against the shipped constructors.
        report = lint_paths([DOMAIN_PKG, default_target()])
        hits = by_rule(report.findings, "RL009")
        paper = {f.symbol for f in hits if f.path.endswith("paper.py")}
        assert paper == {"bad_cdb", "bad_profit", "bad_registry"}
        # Zero findings inside the shipped tree itself.
        assert not [f for f in hits if f.path.startswith("repro/")]

    def test_registry_indirection_message(self):
        report = lint_paths([DOMAIN_PKG, default_target()])
        (hit,) = [
            f
            for f in by_rule(report.findings, "RL009")
            if f.symbol == "bad_registry"
        ]
        assert "make_scheduler('cdb'" in hit.message
        assert "alpha <= 1" in hit.message


# ---------------------------------------------------------------------------
# RL010: heap key hygiene
# ---------------------------------------------------------------------------


class TestHeapKeyTypeMix:
    def test_mixed_queue_flagged_once(self):
        report = lint_paths([HEAP_PKG])
        hits = by_rule(report.findings, "RL010")
        assert len(hits) == 1, report.render()
        (hit,) = hits
        assert "slot 1" in hit.message
        assert "MixedQueue" in hit.symbol

    def test_clean_queue_not_flagged(self):
        report = lint_paths([HEAP_PKG])
        assert not [
            f
            for f in by_rule(report.findings, "RL010")
            if "CleanQueue" in f.symbol
        ]

    def test_engine_raw_tuple_heap_passes(self):
        report = lint_paths([default_target()])
        assert not by_rule(report.findings, "RL010"), report.render()


# ---------------------------------------------------------------------------
# Shipped tree: zero findings, no baseline growth
# ---------------------------------------------------------------------------


class TestShippedTree:
    def test_no_program_rule_findings_and_no_baseline(self):
        report = lint_paths([default_target()])
        assert not codes(report.findings) & PROGRAM_CODES, report.render()
        assert report.baselined == 0  # no baseline, no suppressions needed
        # The scheduler hierarchy is actually being analysed (the
        # cleanliness is a verdict, not a vacuous pass).
        assert report.files_scanned > 50

    def test_program_assembles_all_shipped_schedulers(self):
        from repro.lint.runner import _analyze_one, discover_files

        files = discover_files([default_target()])
        summaries = []
        for f in files:
            record = _analyze_one((str(f), str(f), []))
            if record["summary"] is not None:
                summaries.append(FileSummary.from_dict(record["summary"]))
        program = Program(summaries)
        scheds = {c.rsplit(".", 1)[-1] for c in program.scheduler_classes()}
        assert {"ClassifyByDurationBatchPlus", "Profit", "Batch"} <= scheds
        # Clairvoyance declarations are resolved over the MRO.
        cdb = next(
            c for c in program.scheduler_classes() if c.endswith(".ClassifyByDurationBatchPlus")
        )
        assert program.requires_clairvoyance(cdb)


# ---------------------------------------------------------------------------
# Incremental cache
# ---------------------------------------------------------------------------


class TestIncrementalCache:
    def test_second_run_reanalyzes_zero_files(self, tmp_path):
        cache_file = tmp_path / "cache.json"
        cache = AnalysisCache(cache_file)
        first = lint_paths([POOL_PKG], cache=cache)
        assert first.files_reanalyzed == first.files_scanned > 0

        cache2 = AnalysisCache(cache_file)
        second = lint_paths([POOL_PKG], cache=cache2)
        assert second.files_reanalyzed == 0
        assert [f.render() for f in second.findings] == [
            f.render() for f in first.findings
        ]

    def test_touched_file_reanalyzed_alone(self, tmp_path):
        src_pkg = tmp_path / "pkg"
        src_pkg.mkdir()
        (src_pkg / "__init__.py").write_text("")
        (src_pkg / "a.py").write_text("A = 1\n")
        (src_pkg / "b.py").write_text("B = 2\n")
        cache_file = tmp_path / "cache.json"
        lint_paths([src_pkg], cache=AnalysisCache(cache_file))
        (src_pkg / "b.py").write_text("B = 3\n")
        report = lint_paths([src_pkg], cache=AnalysisCache(cache_file))
        assert report.files_reanalyzed == 1

    def test_cache_key_depends_on_rule_selection(self):
        content = b"X = 1\n"
        assert file_key(content, ["RL001"]) != file_key(content, ["RL002"])
        assert file_key(content, ["RL001"]) == file_key(content, ["RL001"])

    def test_corrupt_cache_is_ignored(self, tmp_path):
        cache_file = tmp_path / "cache.json"
        cache_file.write_text("{not json")
        report = lint_paths([POOL_PKG], cache=AnalysisCache(cache_file))
        assert report.files_reanalyzed == report.files_scanned

    def test_prune_drops_dead_entries(self, tmp_path):
        src_pkg = tmp_path / "pkg"
        src_pkg.mkdir()
        (src_pkg / "__init__.py").write_text("")
        (src_pkg / "a.py").write_text("A = 1\n")
        cache_file = tmp_path / "cache.json"
        lint_paths([src_pkg], cache=AnalysisCache(cache_file))
        (src_pkg / "a.py").unlink()
        lint_paths([src_pkg], cache=AnalysisCache(cache_file))
        entries = json.loads(cache_file.read_text())["entries"]
        assert not any(p.endswith("a.py") for p in entries)

    def test_cached_run_keeps_program_findings(self, tmp_path):
        # RL007-RL010 are recomputed from cached summaries — a warm
        # cache must not swallow whole-program findings.
        cache_file = tmp_path / "cache.json"
        lint_paths([LAUNDERED], cache=AnalysisCache(cache_file))
        warm = lint_paths([LAUNDERED], cache=AnalysisCache(cache_file))
        assert warm.files_reanalyzed == 0
        assert by_rule(warm.findings, "RL007")


# ---------------------------------------------------------------------------
# Parallel front-end
# ---------------------------------------------------------------------------


class TestParallelFrontEnd:
    def test_jobs_output_identical_to_serial(self):
        serial = lint_paths([POOL_PKG, HEAP_PKG, LAUNDERED])
        parallel = lint_paths([POOL_PKG, HEAP_PKG, LAUNDERED], jobs=2)
        assert [f.render() for f in parallel.findings] == [
            f.render() for f in serial.findings
        ]
        assert parallel.files_scanned == serial.files_scanned


# ---------------------------------------------------------------------------
# CLI: --explain, --jobs, cache flags
# ---------------------------------------------------------------------------


def _run_cli(*argv: str, cwd: Path | None = None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True,
        text=True,
        cwd=str(cwd or REPO_ROOT),
        env=env,
    )


class TestCLI:
    def test_explain_prints_rule_doc(self):
        proc = _run_cli("--explain", "RL007")
        assert proc.returncode == 0, proc.stderr
        assert "RL007 cross-module-clairvoyance-taint" in proc.stdout
        assert "Offending" in proc.stdout
        assert "helpers.peek(job)" in proc.stdout

    def test_explain_works_for_per_file_rules_too(self):
        proc = _run_cli("--explain", "RL001")
        assert proc.returncode == 0, proc.stderr
        assert "RL001" in proc.stdout

    def test_explain_unknown_rule_is_usage_error(self):
        proc = _run_cli("--explain", "RL999")
        assert proc.returncode == 2
        assert "RL999" in proc.stderr

    def test_list_rules_includes_program_rules(self):
        proc = _run_cli("--list-rules")
        assert proc.returncode == 0
        for code in sorted(PROGRAM_CODES):
            assert code in proc.stdout

    def test_jobs_auto_smoke(self, tmp_path):
        proc = _run_cli(
            "--jobs",
            "auto",
            "--cache-dir",
            str(tmp_path / "cache"),
            str(LAUNDERED),
        )
        assert proc.returncode == 1  # the laundered leak gates
        assert "RL007" in proc.stdout

    def test_cache_round_trip_via_cli(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first = _run_cli(
            "--format", "json", "--cache-dir", str(cache_dir), str(POOL_PKG)
        )
        second = _run_cli(
            "--format", "json", "--cache-dir", str(cache_dir), str(POOL_PKG)
        )
        d1, d2 = json.loads(first.stdout), json.loads(second.stdout)
        assert d1["files_reanalyzed"] == d1["files_scanned"] > 0
        assert d2["files_reanalyzed"] == 0
        assert d1["findings"] == d2["findings"]

    def test_no_cache_flag(self, tmp_path):
        cache_dir = tmp_path / "cache"
        _run_cli("--cache-dir", str(cache_dir), str(POOL_PKG))
        proc = _run_cli(
            "--format",
            "json",
            "--no-cache",
            "--cache-dir",
            str(cache_dir),
            str(POOL_PKG),
        )
        data = json.loads(proc.stdout)
        assert data["files_reanalyzed"] == data["files_scanned"]
