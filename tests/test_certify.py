"""Unit tests for competitive-ratio certification brackets."""

from __future__ import annotations

import pytest

from repro.analysis import bracket_optimum, measure_ratio
from repro.core import Instance, Job
from repro.offline import exact_optimal_span
from repro.schedulers import BatchPlus, Eager, Profit
from repro.workloads import poisson_instance, small_integral_instance


class TestBracketOptimum:
    def test_empty_instance(self):
        br = bracket_optimum(Instance([]))
        assert br.exact and br.lower == br.upper == 0.0

    def test_small_integral_is_exact(self):
        inst = small_integral_instance(6, seed=0)
        br = bracket_optimum(inst)
        assert br.method == "exact"
        assert br.lower == br.upper == pytest.approx(exact_optimal_span(inst))

    def test_small_float_uses_float_solver(self):
        inst = Instance(
            [Job(0, 0.0, 2.5, 1.25), Job(1, 0.5, 3.0, 0.75)], name="float"
        )
        br = bracket_optimum(inst)
        assert br.method == "exact-float"
        assert br.width == 0.0

    def test_large_instance_brackets(self):
        inst = poisson_instance(100, seed=0)
        br = bracket_optimum(inst)
        assert br.method == "bounds"
        assert br.lower <= br.upper
        assert not br.exact

    def test_bracket_contains_truth_when_both_available(self):
        for seed in range(6):
            inst = small_integral_instance(6, seed=seed)
            opt = exact_optimal_span(inst)
            br = bracket_optimum(inst)
            assert br.lower - 1e-9 <= opt <= br.upper + 1e-9


class TestMeasureRatio:
    def test_exact_ratio_point(self):
        inst = small_integral_instance(6, seed=1)
        rb = measure_ratio(BatchPlus(), inst)
        assert rb.exact
        assert rb.lower == pytest.approx(rb.upper)
        assert rb.lower >= 1.0 - 1e-9

    def test_bracket_ordering(self):
        inst = poisson_instance(80, seed=2)
        rb = measure_ratio(Profit(), inst)
        assert rb.lower <= rb.upper
        assert rb.lower >= 1.0 - 1e-6 or not rb.exact

    def test_respects_theorem_bound(self):
        for seed in range(6):
            inst = small_integral_instance(6, seed=seed)
            rb = measure_ratio(BatchPlus(), inst)
            assert rb.upper <= (inst.mu + 1) + 1e-9

    def test_clairvoyance_defaults(self):
        inst = small_integral_instance(5, seed=3)
        # Profit requires clairvoyance; measure_ratio must handle it.
        rb = measure_ratio(Profit(), inst)
        assert rb.span > 0

    def test_str_forms(self):
        inst = small_integral_instance(5, seed=4)
        assert "exact" in str(measure_ratio(Eager(), inst))
        big = poisson_instance(60, seed=0)
        assert "[" in str(measure_ratio(Eager(), big))


class TestLpStrengthening:
    def test_use_lp_never_weakens(self):
        from repro.workloads import WorkloadSpec, generate

        inst = generate(
            WorkloadSpec(n=20, arrival_rate=0.8, laxity_scale=1.0, integral=True),
            seed=5,
        )
        plain = bracket_optimum(inst)
        lp = bracket_optimum(inst, use_lp=True)
        assert lp.lower >= plain.lower - 1e-9
        assert lp.upper == plain.upper

    def test_lp_method_tag_when_it_binds(self):
        """Find an instance where the LP strictly improves the bracket and
        check the method tag flips."""
        from repro.workloads import WorkloadSpec, generate

        for seed in range(20):
            inst = generate(
                WorkloadSpec(
                    n=20, arrival_rate=0.8, laxity_scale=1.0, integral=True
                ),
                seed=seed,
            )
            plain = bracket_optimum(inst)
            if plain.exact:
                continue
            lp = bracket_optimum(inst, use_lp=True)
            if lp.lower > plain.lower + 1e-9:
                assert lp.method == "bounds+lp"
                return
        pytest.skip("no strictly-improving instance in this seed range")
