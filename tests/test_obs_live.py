"""Live telemetry plane: incremental structures + end-to-end properties.

The load-bearing claims (see ``docs/observability.md``):

* :class:`IntervalUnion` matches a brute-force union measure;
* :class:`OnlineOptLowerBound` is **monotone nondecreasing** under any
  feed order, equals the certified offline
  :func:`~repro.offline.lower_bounds.span_lower_bound` when fed in
  nondecreasing arrival order, and never exceeds it in any order;
* replaying real engine traces (all five paper schedulers × both
  engine cores) through :class:`TenantTelemetry` keeps the LB monotone
  at every record, ends ≤ the certified reference, reproduces the
  engine's span exactly, and therefore reports a ratio ≥ 1.
"""

from __future__ import annotations

import random

import pytest

from repro.obs import TraceRecorder
from repro.obs.live import (
    IntervalUnion,
    LiveAggregator,
    OnlineOptLowerBound,
    TenantTelemetry,
    render_prometheus,
    telemetry_addr,
    telemetry_enabled,
)
from repro.core.engine import Simulator
from repro.core.job import Instance, Job
from repro.offline import span_lower_bound
from repro.schedulers.registry import make_scheduler
from repro.workloads import WorkloadSpec, generate

#: The five schedulers the paper analyses (§3–§6).
PAPER_SCHEDULERS = ("batch", "batch+", "cdb", "epoch-batch", "profit")
CLAIRVOYANT = {"cdb", "profit"}
CORES = ("object", "columnar")


def _brute_union(intervals: list[tuple[float, float]]) -> float:
    events = sorted((s, e) for s, e in intervals if e > s)
    total = 0.0
    cur_s = cur_e = None
    for s, e in events:
        if cur_e is None or s > cur_e:
            if cur_e is not None:
                total += cur_e - cur_s
            cur_s, cur_e = s, e
        else:
            cur_e = max(cur_e, e)
    if cur_e is not None:
        total += cur_e - cur_s
    return total


class TestIntervalUnion:
    def test_empty(self):
        u = IntervalUnion()
        assert u.total == 0.0
        assert len(u) == 0
        assert u.measure_until(10.0) == 0.0

    def test_degenerate_interval_ignored(self):
        u = IntervalUnion()
        u.add(2.0, 2.0)
        u.add(3.0, 1.0)
        assert u.total == 0.0

    def test_touching_intervals_merge(self):
        u = IntervalUnion()
        u.add(0.0, 1.0)
        u.add(1.0, 2.0)
        assert u.total == pytest.approx(2.0)
        assert len(u) == 1

    @pytest.mark.parametrize("seed", range(20))
    def test_random_against_brute_force(self, seed):
        rng = random.Random(seed)
        u = IntervalUnion()
        intervals: list[tuple[float, float]] = []
        for _ in range(120):
            s = rng.uniform(0.0, 50.0)
            e = s + rng.uniform(0.0, 8.0)
            u.add(s, e)
            intervals.append((s, e))
            assert u.total == pytest.approx(_brute_union(intervals))
        t = rng.uniform(0.0, 60.0)
        clipped = [(s, min(e, t)) for s, e in intervals if s < t]
        assert u.measure_until(t) == pytest.approx(_brute_union(clipped))


def _random_jobs(rng: random.Random, n: int) -> list[Job]:
    jobs = []
    for i in range(n):
        arrival = rng.uniform(0.0, 40.0)
        length = rng.uniform(0.1, 6.0)
        laxity = rng.uniform(0.0, 8.0)
        jobs.append(
            Job(id=i, arrival=arrival, deadline=arrival + laxity, length=length)
        )
    return jobs


class TestOnlineOptLowerBound:
    def test_empty_is_zero(self):
        assert OnlineOptLowerBound().value == 0.0

    def test_single_job(self):
        lb = OnlineOptLowerBound()
        lb.add(0.0, 1.0, 5.0)  # laxity < p: mandatory [1, 5)
        assert lb.max_length == 5.0
        assert lb.mandatory == pytest.approx(4.0)
        assert lb.value == pytest.approx(5.0)

    def test_chain_of_tight_jobs(self):
        lb = OnlineOptLowerBound()
        # d(i) + p(i) = 2, next arrival 2: must be disjoint — chains.
        lb.add(0.0, 1.0, 1.0)
        lb.add(2.0, 3.0, 1.0)
        lb.add(4.0, 5.0, 1.0)
        assert lb.chain == pytest.approx(3.0)

    @pytest.mark.parametrize("seed", range(30))
    def test_sorted_feed_matches_offline_reference(self, seed):
        rng = random.Random(1000 + seed)
        jobs = _random_jobs(rng, rng.randrange(1, 60))
        lb = OnlineOptLowerBound()
        prev = 0.0
        for job in sorted(jobs, key=lambda j: j.arrival):
            lb.add(job.arrival, job.deadline, job.length)
            assert lb.value >= prev  # monotone at every arrival
            prev = lb.value
        offline = span_lower_bound(Instance(jobs, name=f"fuzz-{seed}"))
        assert lb.value == pytest.approx(offline, abs=1e-9)

    @pytest.mark.parametrize("seed", range(15))
    def test_shuffled_feed_stays_sound(self, seed):
        rng = random.Random(2000 + seed)
        jobs = _random_jobs(rng, rng.randrange(1, 60))
        shuffled = list(jobs)
        rng.shuffle(shuffled)
        lb = OnlineOptLowerBound()
        prev = 0.0
        for job in shuffled:
            lb.add(job.arrival, job.deadline, job.length)
            assert lb.value >= prev
            prev = lb.value
        offline = span_lower_bound(Instance(jobs, name=f"shuffle-{seed}"))
        assert lb.value <= offline + 1e-9


def _replay(records) -> tuple[TenantTelemetry, bool]:
    """Feed a trace through one telemetry instance, checking monotonicity."""
    telemetry = TenantTelemetry("t")
    monotone = True
    prev = 0.0
    for record in records:
        telemetry.observe(record)
        value = telemetry.lb.value
        if value < prev:
            monotone = False
        prev = value
    return telemetry, monotone


class TestTraceReplayProperties:
    """All five paper schedulers × both cores on seeded instances."""

    @pytest.mark.parametrize("core", CORES)
    @pytest.mark.parametrize("name", PAPER_SCHEDULERS)
    @pytest.mark.parametrize("seed", (7, 23))
    def test_lb_monotone_sound_and_span_exact(self, name, core, seed):
        inst = generate(WorkloadSpec(n=50, laxity_scale=1.5), seed=seed)
        recorder = TraceRecorder()
        result = Simulator(
            make_scheduler(name),
            instance=inst,
            core=core,
            recorder=recorder,
            clairvoyant=name in CLAIRVOYANT,
        ).run()
        telemetry, monotone = _replay(recorder.records)
        assert monotone, f"{name}/{core}: LB decreased during replay"
        reference = span_lower_bound(inst)
        assert telemetry.lb.value <= reference + 1e-9, (
            f"{name}/{core}: live LB {telemetry.lb.value} exceeds "
            f"certified reference {reference}"
        )
        assert telemetry.span == pytest.approx(result.span, rel=1e-9)
        assert telemetry.released == len(inst.jobs)
        assert telemetry.completed == len(inst.jobs)
        ratio = telemetry.ratio
        assert ratio is not None and ratio >= 1.0 - 1e-12

    @pytest.mark.parametrize("name", PAPER_SCHEDULERS)
    def test_decision_mix_stays_in_vocabulary(self, name):
        from repro.obs import decision_vocabulary

        inst = generate(WorkloadSpec(n=40, laxity_scale=1.5), seed=3)
        recorder = TraceRecorder()
        Simulator(
            make_scheduler(name),
            instance=inst,
            recorder=recorder,
            clairvoyant=name in CLAIRVOYANT,
        ).run()
        telemetry, _ = _replay(recorder.records)
        assert set(telemetry.decisions) <= decision_vocabulary()


class TestSnapshotAndExposition:
    def _armed(self) -> LiveAggregator:
        inst = generate(WorkloadSpec(n=30, laxity_scale=1.5), seed=5)
        live = LiveAggregator()
        recorder = TraceRecorder()
        Simulator(
            make_scheduler("batch"), instance=inst, recorder=recorder
        ).run()
        for record in recorder.records:
            live.observe("alpha", record)
        return live

    def test_snapshot_shape(self):
        snap = self._armed().snapshot()
        assert snap["kind"] == "telemetry"
        alpha = snap["tenants"]["alpha"]
        assert alpha["jobs"]["released"] == 30
        assert alpha["jobs"]["pending"] == 0
        assert alpha["span"] > 0.0
        assert alpha["opt_lb"]["value"] > 0.0
        assert alpha["ratio"] >= 1.0
        assert snap["aggregate"]["tenants"] == 1
        assert snap["aggregate"]["max_ratio"] == alpha["ratio"]

    def test_snapshot_merges_daemon_and_loopwatch_sections(self):
        snap = self._armed().snapshot(
            daemon={"lines_in": 4, "queued": {"alpha": 1}},
            loopwatch={"counters": {"loopwatch.stalls": 0.0}},
        )
        assert snap["daemon"]["lines_in"] == 4
        assert snap["loopwatch"]["counters"]["loopwatch.stalls"] == 0.0

    def test_prometheus_exposition(self):
        text = render_prometheus(
            self._armed().snapshot(daemon={"lines_in": 4, "queued": {"alpha": 1}})
        )
        assert text.endswith("\n")
        assert '# TYPE repro_tenant_span gauge' in text
        assert 'repro_tenant_span{tenant="alpha"} ' in text
        assert 'repro_tenant_jobs{tenant="alpha",state="completed"} 30' in text
        assert "repro_daemon_lines_in_total 4" in text
        assert 'repro_daemon_tenant_queue_depth{tenant="alpha"} 1' in text

    def test_prometheus_escapes_labels(self):
        live = LiveAggregator()
        live.tenant('we"ird')
        text = render_prometheus(live.snapshot())
        assert 'tenant="we\\"ird"' in text

    def test_empty_ratio_is_nan(self):
        live = LiveAggregator()
        live.tenant("idle")
        text = render_prometheus(live.snapshot())
        assert 'repro_tenant_ratio{tenant="idle"} NaN' in text


class TestKnobs:
    def test_telemetry_enabled_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert telemetry_enabled() is True

    @pytest.mark.parametrize("value", ["0", "off", "false", ""])
    def test_telemetry_disabled(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TELEMETRY", value)
        assert telemetry_enabled() is False

    def test_addr_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY_ADDR", "127.0.0.1:9100")
        assert telemetry_addr() == ("127.0.0.1", 9100)

    def test_addr_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY_ADDR", "127.0.0.1:9100")
        assert telemetry_addr("0.0.0.0:7077") == ("0.0.0.0", 7077)

    def test_addr_unset_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY_ADDR", raising=False)
        assert telemetry_addr() is None

    def test_addr_rejects_bare_port(self):
        with pytest.raises(ValueError):
            telemetry_addr("7077")
