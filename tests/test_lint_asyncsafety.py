"""Tests for the async-safety certifier (RL017–RL021).

Covers the five program rules on their fixture packages (offending and
clean, one package per rule), the coroutine-reachability and blocking
models' non-vacuity on the real serving layer, the shipped tree's
finding-free verdict, ruleset-digest coverage (adding/removing the
async rules invalidates the cache), ``--jobs`` bit-identity with the
new rules active, and the ``--explain`` CLI.  The runtime half of the
cross-validation contract — the same fixture packages driven under the
``REPRO_LOOPWATCH`` instrumented loop — lives in
``tests/test_serve_loopwatch.py``.
"""

from __future__ import annotations

import ast
import os
import subprocess
import sys
from pathlib import Path

from repro.lint import (
    ALL_RULES,
    Program,
    default_target,
    lint_paths,
    rule_by_code,
)
from repro.lint.asyncsafety import AsyncModel
from repro.lint.dataflow import extract_summary, module_name_for
from repro.lint.dataflow.cache import ruleset_digest

FIXTURES = Path(__file__).parent / "data" / "lint_fixtures"
BLOCK_PKG = FIXTURES / "async_block_pkg"
ORPHAN_PKG = FIXTURES / "async_orphan_pkg"
CHANNEL_PKG = FIXTURES / "async_channel_pkg"
CLEANUP_PKG = FIXTURES / "async_cleanup_pkg"
JOIN_PKG = FIXTURES / "async_join_pkg"
REPO_ROOT = Path(__file__).resolve().parents[1]

ASYNC_CODES = {"RL017", "RL018", "RL019", "RL020", "RL021"}


def codes(findings) -> set[str]:
    return {f.rule for f in findings}


def by_rule(findings, code: str):
    return [f for f in findings if f.rule == code]


def async_findings(report):
    return [f for f in report.findings if f.rule in ASYNC_CODES]


def _program_for(*files: Path) -> Program:
    summaries = []
    for f in files:
        src = f.read_text()
        summaries.append(
            extract_summary(str(f), src, ast.parse(src), module_name_for(f), None)
        )
    return Program(summaries)


def _run_cli(*argv: str):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
        env=env,
    )


# ---------------------------------------------------------------------------
# RL017 — blocking-call-in-coroutine
# ---------------------------------------------------------------------------


class TestBlockingCallRule:
    def test_laundered_blocking_call_flagged(self):
        report = lint_paths([BLOCK_PKG / "offending.py"])
        hits = by_rule(report.findings, "RL017")
        assert len(hits) == 1
        # The finding names the coroutine, why it is loop-reachable,
        # and the full sync chain down to the blocking external.
        assert "serve_forever" in hits[0].message
        assert "_persist" in hits[0].message
        assert "time.sleep" in hits[0].message

    def test_to_thread_by_reference_is_exempt(self):
        report = lint_paths([BLOCK_PKG / "clean.py"])
        assert by_rule(report.findings, "RL017") == []

    def test_model_charges_blocking_to_the_coroutine(self):
        program = _program_for(BLOCK_PKG / "offending.py")
        model = AsyncModel(program)
        (coro_id,) = [k for k in model.reachable if k.endswith("serve_forever")]
        assert model.reachable[coro_id] == "public coroutine API"
        assert coro_id in model.blocking
        # The sync helper itself blocks too, but is not a coroutine.
        (helper,) = [k for k in model.blocking if k.endswith("_persist")]
        assert helper not in model.reachable


# ---------------------------------------------------------------------------
# RL018 — orphaned-task
# ---------------------------------------------------------------------------


class TestOrphanedTaskRule:
    def test_discarded_handle_flagged(self):
        report = lint_paths([ORPHAN_PKG / "offending.py"])
        hits = by_rule(report.findings, "RL018")
        assert len(hits) == 1
        assert "_worker" in hits[0].message
        assert "never retrieved" in hits[0].message

    def test_owned_handle_is_clean(self):
        report = lint_paths([ORPHAN_PKG / "clean.py"])
        assert by_rule(report.findings, "RL018") == []

    def test_spawn_target_becomes_reachable(self):
        program = _program_for(ORPHAN_PKG / "offending.py")
        model = AsyncModel(program)
        (worker,) = [k for k in model.reachable if k.endswith("_worker")]
        assert "spawned via create_task" in model.reachable[worker]


# ---------------------------------------------------------------------------
# RL019 — unbounded-channel
# ---------------------------------------------------------------------------


class TestUnboundedChannelRule:
    def test_default_constructors_flagged(self):
        report = lint_paths([CHANNEL_PKG / "offending.py"])
        hits = by_rule(report.findings, "RL019")
        assert len(hits) == 2
        kinds = {("queue" if "queue" in f.message else "stream reader") for f in hits}
        assert kinds == {"queue", "stream reader"}

    def test_bounded_constructors_clean(self):
        report = lint_paths([CHANNEL_PKG / "clean.py"])
        assert by_rule(report.findings, "RL019") == []


# ---------------------------------------------------------------------------
# RL020 — unshielded-cleanup-await
# ---------------------------------------------------------------------------


class TestUnshieldedCleanupRule:
    def test_bare_finally_await_flagged(self):
        report = lint_paths([CLEANUP_PKG / "offending.py"])
        hits = by_rule(report.findings, "RL020")
        assert len(hits) == 1
        assert "courier.flush" in hits[0].message
        assert "deliver" in hits[0].symbol

    def test_shielded_finally_await_clean(self):
        report = lint_paths([CLEANUP_PKG / "clean.py"])
        assert by_rule(report.findings, "RL020") == []


# ---------------------------------------------------------------------------
# RL021 — queue-join-protocol
# ---------------------------------------------------------------------------


class TestQueueJoinRule:
    def test_all_four_protocol_breaks_flagged(self):
        report = lint_paths([JOIN_PKG / "offending.py"])
        hits = by_rule(report.findings, "RL021")
        assert len(hits) == 4
        messages = "\n".join(f.message for f in hits)
        assert "can never complete" in messages  # Mill: no task_done at all
        assert "consume_leaky" in messages  # LeakyMill: one consumer leaks
        assert "finally" in messages  # BareMill: off the finally path
        assert "poison pill" in messages  # EagerMill: pill before join
        assert all(f.severity == "error" for f in hits)

    def test_balanced_protocol_clean(self):
        report = lint_paths([JOIN_PKG / "clean.py"])
        assert by_rule(report.findings, "RL021") == []


# ---------------------------------------------------------------------------
# The shipped tree: finding-free, and not vacuously so
# ---------------------------------------------------------------------------


class TestShippedTree:
    def test_shipped_tree_is_finding_free(self):
        report = lint_paths([default_target()])
        offenders = async_findings(report)
        assert offenders == [], [f.render() for f in offenders]
        assert report.files_scanned > 50

    def test_daemon_coroutines_are_modelled(self):
        # Non-vacuity: the clean verdict above is a real comparison.
        # The daemon's private workers are loop-reachable in the model,
        # the checkpoint writer's sync closure is known-blocking, and
        # the two sets are disjoint only because the daemon routes every
        # persistence call through asyncio.to_thread.
        serve = REPO_ROOT / "src" / "repro" / "serve"
        program = _program_for(
            serve / "daemon.py",
            serve / "checkpoint.py",
            REPO_ROOT / "src" / "repro" / "obs" / "jsonl.py",
        )
        model = AsyncModel(program)
        reachable = set(model.reachable)
        assert "repro.serve.daemon.ServeDaemon._tenant_loop" in reachable
        assert "repro.serve.daemon.ServeDaemon._on_connection" in reachable
        assert "repro.serve.daemon._Connection._write_loop" in reachable
        assert "repro.serve.checkpoint.save_checkpoint" in model.blocking
        assert not reachable & set(model.blocking)


# ---------------------------------------------------------------------------
# Cache digest, --jobs bit-identity, --explain
# ---------------------------------------------------------------------------


class TestIntegration:
    def test_digest_covers_async_rules(self):
        without = [r for r in ALL_RULES if r.code not in ASYNC_CODES]
        assert ruleset_digest(list(ALL_RULES)) != ruleset_digest(without)

    def test_rules_registered_with_docs(self):
        for code in sorted(ASYNC_CODES):
            rule = rule_by_code(code)
            assert rule is not None
            doc = type(rule).__doc__ or ""
            assert "Offending::" in doc and "Clean::" in doc

    def test_parallel_report_identical_to_serial(self):
        serial = lint_paths([FIXTURES])
        parallel = lint_paths([FIXTURES], jobs=2)
        assert serial.render_json() == parallel.render_json()
        # The comparison exercises the new rules, not an empty report.
        assert ASYNC_CODES <= codes(serial.findings)

    def test_explain_cli_covers_async_rules(self):
        proc = _run_cli("--explain", "RL017")
        assert proc.returncode == 0
        assert "blocking-call-in-coroutine" in proc.stdout
        assert "Offending::" in proc.stdout
        proc = _run_cli("--explain", "RL021")
        assert proc.returncode == 0
        assert "queue-join-protocol" in proc.stdout
