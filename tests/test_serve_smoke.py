"""End-to-end smoke: the real ``python -m repro serve`` process.

Everything here drives the installed CLI through a subprocess — the
SIGTERM drain, SIGKILL + ``--restore`` recovery, and checkpoint
verification exactly as an operator would run them.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

from repro.cli import main
from repro.serve.checkpoint import save_checkpoint
from repro.serve.session import TenantSession

REPO = Path(__file__).resolve().parent.parent
TIMEOUT = 30.0


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def _spawn(*argv, stdin=None):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", *argv],
        cwd=REPO, env=_env(), stdin=stdin,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )


def _wait_for_socket(path, proc, deadline=10.0):
    t0 = time.monotonic()
    while time.monotonic() - t0 < deadline:
        if Path(path).exists():
            return
        if proc.poll() is not None:
            out, err = proc.communicate(timeout=5)
            raise AssertionError(
                f"daemon exited early ({proc.returncode}): {out!r} {err!r}"
            )
        time.sleep(0.05)
    raise AssertionError(f"socket {path} never appeared")


class _Client:
    """Blocking JSONL client over a Unix socket."""

    def __init__(self, path):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.settimeout(10.0)
        self.sock.connect(str(path))
        self.rfile = self.sock.makefile("r", encoding="utf-8")

    def send(self, obj):
        self.sock.sendall((json.dumps(obj) + "\n").encode())

    def recv(self):
        line = self.rfile.readline()
        return json.loads(line) if line else None

    def recv_until(self, predicate):
        seen = []
        while True:
            rec = self.recv()
            assert rec is not None, f"EOF before match; saw {seen[-5:]}"
            seen.append(rec)
            if predicate(rec):
                return seen

    def drain_to_eof(self):
        seen = []
        while True:
            rec = self.recv()
            if rec is None:
                return seen
            seen.append(rec)

    def close(self):
        try:
            self.rfile.close()
            self.sock.close()
        except OSError:
            pass


def job_op(tenant, jid, arrival, deadline, length=1.0):
    return {
        "op": "job", "tenant": tenant, "id": jid, "arrival": arrival,
        "deadline": deadline, "length": length,
    }


def test_sigterm_drain_closes_tenants_and_reconciles(tmp_path):
    sock = tmp_path / "serve.sock"
    traces = tmp_path / "traces"
    ckpt = tmp_path / "ckpt"
    proc = _spawn(
        "--unix", str(sock), "--trace-dir", str(traces),
        "--checkpoint-dir", str(ckpt), "--drain-timeout", "10",
    )
    try:
        _wait_for_socket(sock, proc)
        client = _Client(sock)
        assert client.recv()["kind"] == "serve.ready"
        for tenant in ("alpha", "beta"):
            client.send(job_op(tenant, 0, 0.0, 2.0))
            client.send(job_op(tenant, 1, 0.5, 1.5, 3.0))
        # Make sure every line is parsed before the signal arrives.
        client.send({"op": "stats"})
        stats = client.recv_until(lambda r: r["kind"] == "serve.stats")[-1]
        assert stats["lines_in"] == 5
        proc.send_signal(signal.SIGTERM)
        # The drain closes both sessions and flushes before exiting.
        seen = client.drain_to_eof()
        client.close()
        out, err = proc.communicate(timeout=TIMEOUT)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=TIMEOUT)
    assert proc.returncode == 0, (out, err)
    assert "serving on unix:" in out
    assert "drained: 2 tenant(s)" in out
    closed = {r["tenant"] for r in seen if r["kind"] == "serve.closed"}
    assert closed == {"alpha", "beta"}
    # Drained traces reconcile under the strict explain checker.
    for tenant in ("alpha", "beta"):
        trace = traces / f"{tenant}.trace.jsonl"
        assert trace.exists()
        assert main(["obs", "explain", str(trace), "--strict"]) == 0
    # Final checkpoints landed too.
    assert sorted(p.name for p in ckpt.iterdir()) == [
        "alpha.ckpt.jsonl", "beta.ckpt.jsonl"
    ]


def test_sigkill_then_restore_is_bit_identical(tmp_path):
    pre_ops = [job_op("t1", 0, 0.0, 5.0), job_op("t1", 1, 1.0, 6.0)]
    post_ops = [job_op("t1", 2, 2.0, 7.0, 2.0)]
    # Reference: one uninterrupted session, computed in-process.
    ref_session = TenantSession("t1")
    reference = list(ref_session.hello())
    for op in pre_ops + post_ops:
        reference += ref_session.apply(dict(op))
    reference += ref_session.apply({"op": "close", "tenant": "t1"})

    ckpt = tmp_path / "ckpt"
    sock1 = tmp_path / "serve1.sock"
    proc1 = _spawn("--unix", str(sock1), "--checkpoint-dir", str(ckpt))
    delivered = []
    try:
        _wait_for_socket(sock1, proc1)
        client = _Client(sock1)
        assert client.recv()["kind"] == "serve.ready"
        for op in pre_ops:
            client.send(op)
        client.send({"op": "checkpoint", "tenant": "t1"})
        seen = client.recv_until(lambda r: r["kind"] == "serve.checkpoint")
        delivered += [r for r in seen if r["kind"] != "serve.checkpoint"]
        client.close()
    finally:
        proc1.kill()  # SIGKILL: no drain, no flush
        proc1.communicate(timeout=TIMEOUT)

    sock2 = tmp_path / "serve2.sock"
    proc2 = _spawn(
        "--unix", str(sock2), "--checkpoint-dir", str(ckpt), "--restore"
    )
    try:
        _wait_for_socket(sock2, proc2)
        client = _Client(sock2)
        ready = client.recv()
        assert ready["tenants"] == ["t1"]  # restored before serving
        for op in post_ops:
            client.send(op)
        client.send({"op": "close", "tenant": "t1"})
        seen = client.recv_until(lambda r: r["kind"] == "serve.closed")
        delivered += seen
        client.close()
        proc2.send_signal(signal.SIGTERM)
        out2, err2 = proc2.communicate(timeout=TIMEOUT)
        assert proc2.returncode == 0, (out2, err2)
    finally:
        if proc2.poll() is None:
            proc2.kill()
            proc2.communicate(timeout=TIMEOUT)

    # The full delivered stream equals the uninterrupted reference:
    # nothing replayed twice, nothing lost.
    assert delivered == reference
    started = [r["job"] for r in delivered if r["kind"] == "start"]
    assert sorted(started) == [0, 1, 2]


def test_verify_checkpoints_cli(tmp_path):
    for tenant in ("a", "b"):
        session = TenantSession(tenant)
        session.hello()
        session.apply(job_op(tenant, 0, 0.0, 2.0))
        save_checkpoint(session, tmp_path)
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro", "serve", "--verify-checkpoints",
            "--checkpoint-dir", str(tmp_path),
        ],
        cwd=REPO, env=_env(), capture_output=True, text=True, timeout=TIMEOUT,
    )
    assert proc.returncode == 0, proc.stderr
    assert "verified 2 checkpoint(s)" in proc.stdout
    assert "a: open" in proc.stdout


def test_stdio_mode_single_session(tmp_path):
    lines = "".join(
        json.dumps(op) + "\n"
        for op in [job_op("t1", 0, 0.0, 2.0), {"op": "close", "tenant": "t1"}]
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "serve", "--stdio"],
        cwd=REPO, env=_env(), input=lines, capture_output=True, text=True,
        timeout=TIMEOUT,
    )
    assert proc.returncode == 0, proc.stderr
    records = [
        json.loads(line)
        for line in proc.stdout.splitlines()
        if line.startswith("{")
    ]
    kinds = [r["kind"] for r in records]
    assert kinds[0] == "serve.ready"
    assert "serve.closed" in kinds
    # stdout is the protocol channel in stdio mode: nothing but JSONL
    # there, human-facing lines on stderr.
    assert all(line.startswith("{") for line in proc.stdout.splitlines())
    assert "drained: 1 tenant(s)" in proc.stderr


def test_stdio_mode_with_regular_file_redirection(tmp_path):
    # ``repro serve --stdio < jobs.jsonl > out.jsonl`` hands the daemon
    # regular files, which asyncio's pipe transports reject outright
    # ("Pipe transport is only for pipes, sockets and character
    # devices").  The daemon bridges those ends through a real pipe —
    # the whole stream must land in the output file before exit.
    in_path = tmp_path / "jobs.jsonl"
    out_path = tmp_path / "out.jsonl"
    in_path.write_text(
        "".join(
            json.dumps(op) + "\n"
            for op in [
                job_op("t1", 0, 0.0, 2.0),
                job_op("t1", 1, 0.5, 3.0),
                {"op": "close", "tenant": "t1"},
            ]
        )
    )
    with in_path.open("rb") as fin, out_path.open("wb") as fout:
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--stdio"],
            cwd=REPO, env=_env(), stdin=fin, stdout=fout,
            stderr=subprocess.PIPE, text=False, timeout=TIMEOUT,
        )
    assert proc.returncode == 0, proc.stderr
    records = [
        json.loads(line)
        for line in out_path.read_text().splitlines()
        if line
    ]
    kinds = [r["kind"] for r in records]
    assert kinds[0] == "serve.ready"
    assert kinds[-1] == "serve.closed"
    assert [r["job"] for r in records if r["kind"] == "start"] == [0, 1]
    assert b"drained: 1 tenant(s)" in proc.stderr
