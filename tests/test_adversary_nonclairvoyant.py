"""Unit tests for the §3.1 non-clairvoyant lower-bound adversary."""

from __future__ import annotations

import pytest

from repro.adversaries import (
    AdversaryProfile,
    IterationSpec,
    NonClairvoyantLowerBoundAdversary,
    geometric_profile,
    paper_profile,
)
from repro.analysis import nonclairvoyant_lower_bound
from repro.core import simulate
from repro.schedulers import Batch, BatchPlus, Eager, Lazy


def play(scheduler, mu, profile):
    adv = NonClairvoyantLowerBoundAdversary(mu, profile)
    result = simulate(scheduler, adversary=adv, clairvoyant=False)
    witness = adv.paper_optimal_schedule(result.instance)
    return adv, result, witness


class TestProfiles:
    def test_paper_profile_k1(self):
        p = paper_profile(1)
        assert [it.count for it in p.iterations] == [16]
        assert [it.threshold for it in p.iterations] == [4]
        assert p.final_count == 4

    def test_paper_profile_k2(self):
        p = paper_profile(2)
        assert [it.count for it in p.iterations] == [2**16, 2**8]
        assert [it.threshold for it in p.iterations] == [2**8, 2**4]
        assert p.final_count == 16

    def test_paper_profile_k3_infeasible(self):
        with pytest.raises(ValueError):
            paper_profile(3)

    def test_geometric_profile(self):
        p = geometric_profile(4, m=10)
        assert all(it.count == 100 and it.threshold == 10 for it in p.iterations)
        assert p.k == 4
        assert p.final_count == 10
        assert p.total_jobs_max == 410

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            IterationSpec(count=0, threshold=1)
        with pytest.raises(ValueError):
            IterationSpec(count=4, threshold=5)
        with pytest.raises(ValueError):
            AdversaryProfile(iterations=(), final_count=1)
        with pytest.raises(ValueError):
            geometric_profile(0)


class TestAdversaryParams:
    def test_mu_must_exceed_one(self):
        with pytest.raises(ValueError):
            NonClairvoyantLowerBoundAdversary(mu=1.0)

    def test_alpha_must_exceed_mu_plus_one(self):
        with pytest.raises(ValueError):
            NonClairvoyantLowerBoundAdversary(mu=3.0, alpha=3.5)

    def test_laxities_increase_then_cap(self):
        adv = NonClairvoyantLowerBoundAdversary(mu=2.0, laxity_cap=100.0)
        lax = [adv._laxity(j) for j in range(1, 10)]
        assert lax[0] == pytest.approx(4.0)  # α = μ+2 = 4
        assert lax[1] == pytest.approx(16.0)
        assert lax[2] == pytest.approx(64.0)
        assert all(v == 100.0 for v in lax[3:])  # capped


class TestMechanics:
    def test_eager_gets_earmarked_every_iteration(self):
        """Eager floods each iteration instantly: the adversary earmarks
        every iteration and the scheduler serialises k·μ + 1."""
        mu, k, m = 4.0, 3, 6
        adv, result, witness = play(Eager(), mu, geometric_profile(k, m))
        assert len(adv.earmarked_ids) == k
        assert adv.final_released
        assert result.span == pytest.approx(k * mu + 1.0)
        assert witness.span == pytest.approx(mu + k)

    def test_lazy_never_crosses_threshold(self):
        """Lazy's concurrency stays at 1 below the threshold... until the
        laxity cap pins many jobs to the same deadline; with a small m the
        adversary still catches it, with m > capped-cluster Lazy pays the
        Lemma 3.1 price instead.  Either way the run completes and the
        witness is feasible."""
        adv, result, witness = play(Lazy(), 3.0, geometric_profile(2, 8))
        witness.validate()
        assert result.span / witness.span > 1.0

    def test_earmarked_job_has_length_mu(self):
        mu = 5.0
        adv, result, _ = play(Batch(), mu, geometric_profile(2, 5))
        for jid in adv.earmarked_ids:
            assert result.instance[jid].length == pytest.approx(mu)

    def test_non_earmarked_jobs_have_length_one(self):
        adv, result, _ = play(Batch(), 5.0, geometric_profile(2, 5))
        earmarked = set(adv.earmarked_ids)
        for job in result.instance:
            if job.id not in earmarked:
                assert job.length == pytest.approx(1.0)

    def test_iterations_released_in_sequence(self):
        adv, result, _ = play(Eager(), 2.0, geometric_profile(4, 4))
        assert adv.iterations_released == 4
        assert len(adv.release_times) == 5  # 4 adaptive + final
        assert adv.release_times == sorted(adv.release_times)

    def test_earmark_chosen_with_max_laxity(self):
        """The earmarked job is the running job with the largest laxity."""
        adv, result, _ = play(Eager(), 3.0, geometric_profile(1, 4))
        # Eager starts all 16 jobs at t=0; the threshold (4) is crossed at
        # the 5th start, so jobs 0..(at least 4) are running; the max
        # laxity among them belongs to the highest-index started job.
        earmark = adv.earmarked_ids[0]
        assert result.instance[earmark].length == 3.0
        # All jobs started at 0 simultaneously; the same-time wakeup must
        # have seen the whole batch, so the earmark is the last job (15).
        assert earmark == 15

    def test_mu_of_resolved_instance(self):
        mu = 6.0
        adv, result, _ = play(Batch(), mu, geometric_profile(2, 5))
        assert result.instance.mu == pytest.approx(mu)


class TestForcedRatios:
    @pytest.mark.parametrize("scheduler", [Eager, Batch, BatchPlus])
    def test_ratio_meets_theory_formula(self, scheduler):
        """When all k iterations earmark, the paper's final-branch ratio
        (kμ+1)/(μ+k) is forced exactly."""
        mu, k, m = 5.0, 6, 10
        adv, result, witness = play(scheduler(), mu, geometric_profile(k, m))
        assert len(adv.earmarked_ids) == k
        ratio = result.span / witness.span
        assert ratio >= (k * mu + 1) / (mu + k) - 1e-9

    def test_ratio_grows_with_k(self):
        mu, m = 8.0, 8
        ratios = []
        for k in (1, 3, 6, 12):
            adv, result, witness = play(Batch(), mu, geometric_profile(k, m))
            ratios.append(result.span / witness.span)
        assert all(b > a for a, b in zip(ratios, ratios[1:]))
        assert ratios[-1] > 4.0  # well on its way towards μ = 8

    def test_paper_profile_k1_run(self):
        mu = 3.0
        adv, result, witness = play(Batch(), mu, paper_profile(1))
        witness.validate()
        assert result.span / witness.span >= nonclairvoyant_lower_bound(
            1, mu, [16]
        ) - 1e-9

    def test_theory_formula_monotone(self):
        vals = [
            nonclairvoyant_lower_bound(k, 10.0, [400] * k) for k in (1, 2, 4, 8)
        ]
        assert all(b >= a - 1e-12 for a, b in zip(vals, vals[1:]))
