"""Unit tests for the Batch scheduler (Theorem 3.4 mechanics)."""

from __future__ import annotations

import pytest

from repro.adversaries import batch_tightness_instance
from repro.core import Instance, simulate
from repro.schedulers import Batch


class TestBatchMechanics:
    def test_batches_at_earliest_deadline(self, batchable_instance):
        # earliest deadline is J0's (a=0, laxity 4 → d=4): all four start at 4.
        result = simulate(Batch(), batchable_instance)
        for job in batchable_instance:
            assert result.schedule.start_of(job.id) == 4.0
        assert result.scheduler.flag_job_ids == [0]

    def test_multiple_iterations(self, serial_instance):
        # serial jobs: each becomes its own flag at its deadline.
        result = simulate(Batch(), serial_instance)
        assert result.scheduler.flag_job_ids == [0, 1, 2]
        for job in serial_instance:
            assert result.schedule.start_of(job.id) == job.deadline

    def test_pending_jobs_join_the_batch(self):
        # J1 arrives before J0's deadline and has a later deadline: it is
        # swept into J0's batch rather than waiting for its own.
        inst = Instance.from_triples([(0, 2, 5), (1, 8, 1)], name="join")
        result = simulate(Batch(), inst)
        assert result.schedule.start_of(0) == 2.0
        assert result.schedule.start_of(1) == 2.0
        assert result.scheduler.flag_job_ids == [0]

    def test_arrival_during_flag_run_waits(self):
        # Batch (unlike Batch+) buffers arrivals even while jobs run.
        inst = Instance.from_triples([(0, 0, 10), (1, 3, 1)], name="buffered")
        result = simulate(Batch(), inst)
        assert result.schedule.start_of(0) == 0.0
        assert result.schedule.start_of(1) == 4.0  # its own deadline
        assert result.scheduler.flag_job_ids == [0, 1]

    def test_tie_on_deadline_single_iteration(self):
        inst = Instance.from_triples([(0, 3, 1), (1, 2, 2)], name="tie")
        result = simulate(Batch(), inst)
        # both deadlines are 3: one flag, both started at 3.
        assert result.schedule.start_of(0) == 3.0
        assert result.schedule.start_of(1) == 3.0
        assert len(result.scheduler.flag_job_ids) == 1

    def test_clone_resets_state(self):
        proto = Batch()
        r1 = simulate(proto.clone(), Instance.from_triples([(0, 1, 1)]))
        r2 = simulate(proto.clone(), Instance.from_triples([(0, 1, 1)]))
        assert r1.scheduler.flag_job_ids == r2.scheduler.flag_job_ids == [0]
        assert proto.flag_job_ids == []


class TestBatchTheorems:
    @pytest.mark.parametrize("mu", [2.0, 5.0])
    @pytest.mark.parametrize("m", [1, 8, 32])
    def test_tightness_instance_ratio(self, m, mu):
        """On the Figure 2 family Batch pays exactly 2mμ and the forced
        ratio 2mμ/(m(1+ε)+μ) approaches 2μ."""
        fam = batch_tightness_instance(m=m, mu=mu, epsilon=1e-3)
        result = simulate(Batch(), fam.instance)
        assert result.span == pytest.approx(2 * m * mu, rel=1e-9)
        ratio = result.span / fam.optimal_span
        expected = 2 * m * mu / (m * (1 + 1e-3) + mu)
        assert ratio == pytest.approx(expected, rel=1e-9)
        assert ratio <= 2 * mu + 1  # Theorem 3.4 upper bound

    def test_upper_bound_on_flag_jobs(self, batchable_instance):
        """Span is bounded by (2μ+1)·Σ p over chosen flag jobs — we check
        the weaker practical form span <= (2μ+1)·Σ p over *all* flags."""
        result = simulate(Batch(), batchable_instance)
        mu = batchable_instance.mu
        total_flag_len = sum(
            batchable_instance[j].known_length
            for j in result.scheduler.flag_job_ids
        )
        assert result.span <= (2 * mu + 1) * total_flag_len + 1e-9
