"""Unit + property tests for the mutable interval set."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import Interval, IntervalUnion
from repro.core.intervalset import MutableIntervalSet

finite = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)
lengths = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


class TestBasics:
    def test_empty(self):
        s = MutableIntervalSet()
        assert s.measure == 0.0
        assert len(s) == 0
        assert not s.covers(0.0)

    def test_single_add(self):
        s = MutableIntervalSet()
        assert s.add(1.0, 3.0) == 2.0
        assert s.measure == 2.0
        assert s.covers(1.0) and s.covers(2.9) and not s.covers(3.0)

    def test_zero_width_ignored(self):
        s = MutableIntervalSet()
        assert s.add(1.0, 1.0) == 0.0
        assert len(s) == 0

    def test_disjoint_inserts_sorted(self):
        s = MutableIntervalSet()
        s.add(5.0, 6.0)
        s.add(1.0, 2.0)
        s.add(3.0, 4.0)
        assert [(iv.left, iv.right) for iv in s] == [(1, 2), (3, 4), (5, 6)]
        assert s.measure == 3.0

    def test_overlap_merge(self):
        s = MutableIntervalSet()
        s.add(0.0, 2.0)
        added = s.add(1.0, 4.0)
        assert added == 2.0
        assert len(s) == 1
        assert s.measure == 4.0

    def test_abutting_merge(self):
        s = MutableIntervalSet()
        s.add(0.0, 1.0)
        s.add(1.0, 2.0)
        assert len(s) == 1
        assert s.measure == 2.0

    def test_bridging_merge(self):
        s = MutableIntervalSet()
        s.add(0.0, 1.0)
        s.add(2.0, 3.0)
        s.add(4.0, 5.0)
        added = s.add(0.5, 4.5)
        assert len(s) == 1
        assert s.measure == 5.0
        assert added == pytest.approx(2.0)

    def test_contained_add_is_free(self):
        s = MutableIntervalSet()
        s.add(0.0, 10.0)
        assert s.add(2.0, 5.0) == 0.0
        assert len(s) == 1

    def test_intersection_length(self):
        s = MutableIntervalSet()
        s.add(0.0, 2.0)
        s.add(4.0, 6.0)
        assert s.intersection_length(1.0, 5.0) == pytest.approx(2.0)
        assert s.intersection_length(2.0, 4.0) == 0.0

    def test_added_measure_matches_add(self):
        s = MutableIntervalSet()
        s.add(0.0, 2.0)
        predicted = s.added_measure(1.0, 5.0)
        actual = s.add(1.0, 5.0)
        assert predicted == pytest.approx(actual)

    def test_covers_interval(self):
        s = MutableIntervalSet()
        s.add(0.0, 5.0)
        assert s.covers_interval(1.0, 4.0)
        assert not s.covers_interval(4.0, 6.0)

    def test_to_union_snapshot(self):
        s = MutableIntervalSet()
        s.add(0.0, 1.0)
        s.add(3.0, 4.0)
        u = s.to_union()
        assert u == IntervalUnion([Interval(0, 1), Interval(3, 4)])


class TestEquivalenceProperty:
    @given(
        st.lists(st.tuples(finite, lengths), max_size=40),
    )
    @settings(max_examples=60)
    def test_matches_interval_union(self, pairs):
        """The mutable set and the immutable union agree on every insert
        sequence: same components, same measure, same added measures."""
        s = MutableIntervalSet()
        u = IntervalUnion()
        for lo, w in pairs:
            iv = Interval(lo, lo + w)
            predicted = s.added_measure(lo, lo + w)
            assert predicted == pytest.approx(
                u.added_measure(iv), abs=1e-6
            )
            s.add(lo, lo + w)
            u = u.insert(iv)
        assert s.measure == pytest.approx(u.measure, abs=1e-6)
        assert s.to_union() == u

    @given(
        st.lists(st.tuples(finite, lengths), min_size=1, max_size=30),
        finite,
    )
    @settings(max_examples=60)
    def test_covers_matches(self, pairs, probe):
        s = MutableIntervalSet()
        u = IntervalUnion()
        for lo, w in pairs:
            s.add(lo, lo + w)
            u = u.insert(Interval(lo, lo + w))
        assert s.covers(probe) == u.contains(probe)

    @given(st.lists(st.tuples(finite, lengths), max_size=30))
    @settings(max_examples=60)
    def test_canonical_invariants(self, pairs):
        s = MutableIntervalSet()
        for lo, w in pairs:
            s.add(lo, lo + w)
        comps = list(s)
        for c in comps:
            assert c.length > 0
        for a, b in zip(comps, comps[1:]):
            assert a.right < b.left  # disjoint AND non-abutting
