"""Unit tests for the Profit scheduler (Theorem 4.11 mechanics)."""

from __future__ import annotations

import math

import pytest

from repro.analysis import optimal_profit_k, profit_ratio
from repro.core import Instance, simulate
from repro.offline import exact_optimal_span
from repro.schedulers import Profit
from repro.workloads import small_integral_instance


class TestProfitMechanics:
    def test_flag_starts_at_deadline(self):
        inst = Instance.from_triples([(0, 4, 2)], name="solo")
        result = simulate(Profit(), inst, clairvoyant=True)
        assert result.schedule.start_of(0) == 4.0
        assert result.scheduler.flag_job_ids == [0]

    def test_pending_profitable_job_joins_flag(self):
        # flag J0 (p=4) at d=2; pending J1 with p=3 <= k·4 joins at 2.
        inst = Instance.from_triples([(0, 2, 4), (0, 9, 3)], name="join")
        result = simulate(Profit(k=1.5), inst, clairvoyant=True)
        assert result.schedule.start_of(0) == 2.0
        assert result.schedule.start_of(1) == 2.0
        assert result.scheduler.flag_job_ids == [0]
        assert result.scheduler.attribution[1] == 0

    def test_pending_unprofitable_job_waits(self):
        # flag J0 (p=1) at d=2; pending J1 with p=10 > k·1 is not started
        # and becomes its own flag at d=9.
        inst = Instance.from_triples([(0, 2, 1), (0, 9, 10)], name="wait")
        result = simulate(Profit(k=2.0), inst, clairvoyant=True)
        assert result.schedule.start_of(1) == 9.0
        assert result.scheduler.flag_job_ids == [0, 1]

    def test_arrival_profitable_to_running_flag(self):
        # flag J0 runs [2, 10); J1 arrives at 4 with p=6 <= k·(10-4).
        inst = Instance.from_triples([(0, 2, 8), (4, 9, 6)], name="arrive")
        result = simulate(Profit(k=1.5), inst, clairvoyant=True)
        assert result.schedule.start_of(1) == 4.0
        assert result.scheduler.flag_job_ids == [0]

    def test_arrival_not_profitable_waits(self):
        # flag J0 runs [2, 10); J1 arrives at 8 with p=6 > k·(10-8)=3.
        inst = Instance.from_triples([(0, 2, 8), (8, 9, 6)], name="late")
        result = simulate(Profit(k=1.5), inst, clairvoyant=True)
        assert result.schedule.start_of(1) == 17.0  # its own deadline
        assert result.scheduler.flag_job_ids == [0, 1]

    def test_deadline_tie_longest_becomes_flag(self):
        # J0 (p=2) and J1 (p=5) share deadline 3: J1 is the flag, J0 is
        # profitable to it (2 <= k·5) and starts in the same iteration.
        inst = Instance.from_triples([(0, 3, 2), (0, 3, 5)], name="tie")
        result = simulate(Profit(k=1.2), inst, clairvoyant=True)
        assert result.scheduler.flag_job_ids == [1]
        assert result.schedule.start_of(0) == 3.0
        assert result.schedule.start_of(1) == 3.0

    def test_concurrent_flags(self):
        # J0 (p=1) flag at 0; J1 (p=100) unprofitable, becomes flag at its
        # deadline 0.5 while J0 still runs: two concurrent flags.
        inst = Instance(
            [
                __import__("repro").Job(0, 0.0, 0.0, 1.0),
                __import__("repro").Job(1, 0.0, 0.5, 100.0),
            ],
            name="concurrent",
        )
        result = simulate(Profit(k=2.0), inst, clairvoyant=True)
        assert result.scheduler.flag_job_ids == [0, 1]
        assert result.schedule.start_of(1) == 0.5

    def test_at_least_1_over_k_overlap_guarantee(self):
        """Every non-flag job overlaps its attributed flag's interval by at
        least 1/k of its own length (the 'profitable' guarantee)."""
        inst = small_integral_instance(12, seed=5, max_arrival=12)
        k = 1.8
        result = simulate(Profit(k=k), inst, clairvoyant=True)
        sched = result.schedule
        attribution = result.scheduler.attribution
        flags = set(result.scheduler.flag_job_ids)
        for job in inst:
            if job.id in flags:
                continue
            flag_id = attribution[job.id]
            own = sched.interval_of(job.id)
            flag_iv = sched.interval_of(flag_id)
            overlap = own.intersection_length(flag_iv)
            assert overlap >= own.length / k - 1e-9

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            Profit(k=1.0)

    def test_clone_preserves_k(self):
        assert Profit(k=2.5).clone().k == 2.5


class TestProfitTheorems:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k", [1.3, optimal_profit_k(), 2.5])
    def test_bound_vs_exact_opt(self, seed, k):
        """Theorem 4.11: span(Profit) <= (2k+2+1/(k-1))·span_min."""
        inst = small_integral_instance(6, seed=seed, max_length=6)
        result = simulate(Profit(k=k), inst, clairvoyant=True)
        opt = exact_optimal_span(inst)
        assert result.span <= profit_ratio(k) * opt + 1e-9

    def test_optimal_k_minimises_bound(self):
        k_star = optimal_profit_k()
        for k in (1.1, 1.3, 2.0, 3.0):
            assert profit_ratio(k_star) <= profit_ratio(k) + 1e-12
        assert profit_ratio(k_star) == pytest.approx(4 + 2 * math.sqrt(2))
