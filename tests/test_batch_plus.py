"""Unit tests for the Batch+ scheduler (Theorem 3.5 mechanics)."""

from __future__ import annotations

import pytest

from repro.adversaries import batchplus_tightness_instance
from repro.core import Instance, simulate
from repro.offline import exact_optimal_span
from repro.schedulers import BatchPlus
from repro.workloads import small_integral_instance


class TestBatchPlusMechanics:
    def test_batches_at_earliest_deadline(self, batchable_instance):
        result = simulate(BatchPlus(), batchable_instance)
        for job in batchable_instance:
            assert result.schedule.start_of(job.id) == 4.0
        assert result.scheduler.flag_job_ids == [0]

    def test_open_phase_starts_arrivals_immediately(self):
        # J0 (flag) runs [0,10); J1 arrives at 3 during the open phase.
        inst = Instance.from_triples([(0, 0, 10), (3, 5, 1)], name="open")
        result = simulate(BatchPlus(), inst)
        assert result.schedule.start_of(1) == 3.0  # immediate, not deadline 8
        assert result.scheduler.flag_job_ids == [0]

    def test_phase_closes_at_flag_completion(self):
        # J0 (flag) runs [0,2); J1 arrives at 2 (phase just closed) and
        # must wait for its own deadline to become the next flag.
        inst = Instance.from_triples([(0, 0, 2), (2, 3, 1)], name="closed")
        result = simulate(BatchPlus(), inst)
        assert result.schedule.start_of(1) == 5.0
        assert result.scheduler.flag_job_ids == [0, 1]

    def test_non_flag_completion_keeps_phase_open(self):
        # flag J0 runs [0,10); J1 starts at 1 and completes at 2 — the
        # phase must stay open so J2 (arriving at 5) still starts at once.
        inst = Instance.from_triples(
            [(0, 0, 10), (1, 4, 1), (5, 4, 1)], name="keep-open"
        )
        result = simulate(BatchPlus(), inst)
        assert result.schedule.start_of(1) == 1.0
        assert result.schedule.start_of(2) == 5.0
        assert result.scheduler.flag_job_ids == [0]

    def test_flag_arrival_during_its_own_open_phase(self):
        """A job arriving during an open phase is started immediately and
        therefore never becomes a flag."""
        inst = Instance.from_triples([(0, 0, 6), (1, 1, 2)], name="swallow")
        result = simulate(BatchPlus(), inst)
        assert result.scheduler.flag_job_ids == [0]

    def test_clone_resets(self):
        proto = BatchPlus()
        simulate(proto.clone(), Instance.from_triples([(0, 0, 1)]))
        fresh = proto.clone()
        assert fresh.flag_job_ids == []
        assert not fresh.open_phase


class TestBatchPlusTheorems:
    @pytest.mark.parametrize("mu", [2.0, 5.0])
    @pytest.mark.parametrize("m", [1, 8, 64])
    def test_tightness_instance_ratio(self, m, mu):
        """On the Figure 3 family Batch+ pays m(μ+1-ε) and the ratio
        approaches μ+1."""
        eps = 1e-3
        fam = batchplus_tightness_instance(m=m, mu=mu, epsilon=eps)
        result = simulate(BatchPlus(), fam.instance)
        assert result.span == pytest.approx(m * (mu + 1 - eps), rel=1e-9)
        ratio = result.span / fam.optimal_span
        assert ratio == pytest.approx(m * (mu + 1 - eps) / (m + mu), rel=1e-9)
        assert ratio <= mu + 1  # Theorem 3.5 tight bound

    @pytest.mark.parametrize("seed", range(8))
    def test_mu_plus_one_bound_vs_exact_opt(self, seed):
        """Theorem 3.5: span(Batch+) <= (μ+1)·span_min on random instances."""
        inst = small_integral_instance(6, seed=seed)
        result = simulate(BatchPlus(), inst)
        opt = exact_optimal_span(inst)
        assert result.span <= (inst.mu + 1) * opt + 1e-9

    def test_flag_jobs_cannot_overlap(self):
        """Consecutive flags satisfy a(J_{i+1}) > d(J_i) + p(J_i): their
        intervals are unoverlappable by any scheduler (Theorem 3.5)."""
        inst = small_integral_instance(12, seed=3, max_arrival=30)
        result = simulate(BatchPlus(), inst)
        flags = [result.instance[j] for j in result.scheduler.flag_job_ids]
        for f1, f2 in zip(flags, flags[1:]):
            assert f2.arrival > f1.deadline + f1.known_length - 1e-12
