"""Unit tests for the beam-search offline scheduler."""

from __future__ import annotations

import pytest

from repro.core import Instance
from repro.offline import (
    beam_search_schedule,
    beam_search_span,
    exact_optimal_span,
    greedy_overlap,
    span_lower_bound,
)
from repro.workloads import poisson_instance, small_integral_instance


class TestBeamSearch:
    def test_empty_instance(self):
        assert beam_search_span(Instance([])) == 0.0

    def test_single_job(self):
        inst = Instance.from_triples([(0, 4, 3)])
        assert beam_search_span(inst) == pytest.approx(3.0)

    def test_feasible_schedules(self):
        for seed in range(5):
            inst = poisson_instance(40, seed=seed)
            beam_search_schedule(inst).validate()

    @pytest.mark.parametrize("seed", range(12))
    def test_never_below_exact_opt(self, seed):
        inst = small_integral_instance(6, seed=seed)
        assert beam_search_span(inst) >= exact_optimal_span(inst) - 1e-9

    @pytest.mark.parametrize("seed", range(12))
    def test_never_below_chain_lb(self, seed):
        inst = small_integral_instance(8, seed=seed)
        assert beam_search_span(inst) >= span_lower_bound(inst) - 1e-9

    @pytest.mark.parametrize("seed", range(8))
    def test_often_optimal_on_tiny_instances(self, seed):
        """Width-8 beam finds the exact optimum on most tiny instances;
        regression net: within 30% always."""
        inst = small_integral_instance(6, seed=seed)
        opt = exact_optimal_span(inst)
        assert beam_search_span(inst, width=8) <= 1.3 * opt + 1e-9

    def test_wider_beam_never_worse_much(self):
        """Widening the beam is monotone in expectation; assert the weak
        form (width 16 <= width 1 + tolerance) per instance."""
        for seed in range(6):
            inst = small_integral_instance(8, seed=seed)
            narrow = beam_search_span(inst, width=1)
            wide = beam_search_span(inst, width=16)
            assert wide <= narrow + 1e-9

    def test_beats_arrival_order_greedy(self):
        """Beam search generalises arrival-order greedy (width 1, full
        branch ≈ its decision rule), so with a wide beam it should not
        lose to it.  (Deadline-order greedy processes in a different
        order and can win on some seeds — that's expected.)"""
        for seed in range(5):
            inst = poisson_instance(200, seed=seed)
            greedy_arrival = greedy_overlap(inst, "arrival").span
            assert beam_search_span(inst, width=8, branch=8) <= greedy_arrival + 1e-6

    def test_invalid_params(self):
        inst = small_integral_instance(3, seed=0)
        with pytest.raises(ValueError):
            beam_search_span(inst, width=0)
        with pytest.raises(ValueError):
            beam_search_span(inst, branch=0)
