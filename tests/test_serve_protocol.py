"""The serve line protocol: op parsing, job building, env knobs."""

from __future__ import annotations

import json

import pytest

from repro.serve.protocol import (
    CHECKPOINT_EVERY_ENV,
    DEFAULT_CHECKPOINT_EVERY,
    DEFAULT_MAX_LINE,
    DEFAULT_QUEUE_SIZE,
    MAX_LINE_ENV,
    QUEUE_ENV,
    ProtocolError,
    checkpoint_every,
    encode_record,
    error_record,
    job_from_op,
    max_line_bytes,
    parse_op,
    queue_size,
)


class TestParseOp:
    def test_valid_job_op(self):
        op = parse_op(
            '{"op": "job", "tenant": "t1", "id": 1, "arrival": 0.0,'
            ' "deadline": 2.0, "length": 1.0}'
        )
        assert op["op"] == "job"
        assert op["tenant"] == "t1"

    def test_bytes_input_decoded(self):
        op = parse_op(b'{"op": "stats"}')
        assert op["op"] == "stats"

    def test_non_utf8_bytes_rejected(self):
        with pytest.raises(ProtocolError, match="not UTF-8"):
            parse_op(b'{"op": "stats"\xff}')

    def test_blank_line_rejected(self):
        with pytest.raises(ProtocolError, match="blank"):
            parse_op("   \n")

    def test_invalid_json_rejected(self):
        with pytest.raises(ProtocolError, match="invalid JSON"):
            parse_op("{not json")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="not a JSON object"):
            parse_op("[1, 2, 3]")

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            parse_op('{"op": "frobnicate"}')
        with pytest.raises(ProtocolError, match="unknown op"):
            parse_op('{"tenant": "t"}')  # missing op entirely

    def test_tenant_required_for_tenant_ops(self):
        for op in ("open", "job", "advance", "close"):
            with pytest.raises(ProtocolError, match="requires a tenant"):
                parse_op(json.dumps({"op": op}))

    def test_tenant_optional_for_checkpoint(self):
        assert parse_op('{"op": "checkpoint"}')["op"] == "checkpoint"
        assert (
            parse_op('{"op": "checkpoint", "tenant": "t"}')["tenant"] == "t"
        )

    @pytest.mark.parametrize(
        "bad",
        [
            "../escape",  # path traversal
            ".hidden",  # leading dot (dotfile / '..' family)
            "a/b",  # separator
            "",  # empty
            "x" * 65,  # too long
            "sp ace",
            42,  # not a string
        ],
    )
    def test_bad_tenant_names_rejected(self, bad):
        with pytest.raises(ProtocolError, match="invalid tenant name"):
            parse_op(json.dumps({"op": "close", "tenant": bad}))

    @pytest.mark.parametrize(
        "good", ["t1", "tenant.v2", "a-b_c", "X" * 64, "_private"]
    )
    def test_good_tenant_names_accepted(self, good):
        op = parse_op(json.dumps({"op": "close", "tenant": good}))
        assert op["tenant"] == good

    def test_advance_requires_numeric_t(self):
        with pytest.raises(ProtocolError, match="numeric 't'"):
            parse_op('{"op": "advance", "tenant": "t"}')
        with pytest.raises(ProtocolError, match="numeric 't'"):
            parse_op('{"op": "advance", "tenant": "t", "t": "soon"}')
        with pytest.raises(ProtocolError, match="numeric 't'"):
            parse_op('{"op": "advance", "tenant": "t", "t": true}')
        assert (
            parse_op('{"op": "advance", "tenant": "t", "t": 3}')["t"] == 3
        )

    def test_error_carries_tenant_when_known(self):
        with pytest.raises(ProtocolError) as exc:
            parse_op('{"op": "advance", "tenant": "t9"}')
        assert exc.value.tenant == "t9"


class TestJobFromOp:
    def _op(self, **fields):
        base = {
            "op": "job", "tenant": "t", "id": 1, "arrival": 0.0,
            "deadline": 2.0, "length": 1.0,
        }
        base.update(fields)
        return {k: v for k, v in base.items() if v is not ...}

    def test_basic_job(self):
        job = job_from_op(self._op())
        assert (job.id, job.arrival, job.deadline, job.length, job.size) == (
            1, 0.0, 2.0, 1.0, 1.0,
        )

    def test_laxity_replaces_deadline(self):
        job = job_from_op(self._op(deadline=..., laxity=3.0, arrival=1.0))
        assert job.deadline == 4.0

    def test_deadline_wins_over_laxity(self):
        job = job_from_op(self._op(deadline=5.0, laxity=99.0))
        assert job.deadline == 5.0

    def test_size_optional(self):
        assert job_from_op(self._op(size=2.5)).size == 2.5
        assert job_from_op(self._op()).size == 1.0

    def test_missing_id_rejected(self):
        with pytest.raises(ProtocolError, match="integer 'id'"):
            job_from_op(self._op(id=...))
        with pytest.raises(ProtocolError, match="integer 'id'"):
            job_from_op(self._op(id="one"))
        with pytest.raises(ProtocolError, match="integer 'id'"):
            job_from_op(self._op(id=True))  # bool is not an id

    def test_missing_arrival_rejected(self):
        with pytest.raises(ProtocolError, match="requires 'arrival'"):
            job_from_op(self._op(arrival=...))

    def test_missing_window_rejected(self):
        with pytest.raises(ProtocolError, match="'deadline' or 'laxity'"):
            job_from_op(self._op(deadline=...))

    def test_missing_length_rejected(self):
        with pytest.raises(ProtocolError, match="requires 'length'"):
            job_from_op(self._op(length=...))

    def test_non_numeric_field_rejected(self):
        with pytest.raises(ProtocolError, match="must be a number"):
            job_from_op(self._op(arrival="now"))
        with pytest.raises(ProtocolError, match="must be a number"):
            job_from_op(self._op(length=True))

    def test_invalid_job_becomes_protocol_error(self):
        # deadline before arrival: the Job constructor rejects it and the
        # protocol layer re-raises with the tenant attached.
        with pytest.raises(ProtocolError) as exc:
            job_from_op(self._op(arrival=5.0, deadline=1.0))
        assert exc.value.tenant == "t"
        with pytest.raises(ProtocolError):
            job_from_op(self._op(length=-1.0))


class TestEnvKnobs:
    def test_defaults(self, monkeypatch):
        for env in (QUEUE_ENV, MAX_LINE_ENV, CHECKPOINT_EVERY_ENV):
            monkeypatch.delenv(env, raising=False)
        assert queue_size() == DEFAULT_QUEUE_SIZE
        assert max_line_bytes() == DEFAULT_MAX_LINE
        assert checkpoint_every() == DEFAULT_CHECKPOINT_EVERY

    def test_env_values(self, monkeypatch):
        monkeypatch.setenv(QUEUE_ENV, "8")
        monkeypatch.setenv(MAX_LINE_ENV, "128")
        monkeypatch.setenv(CHECKPOINT_EVERY_ENV, "0")
        assert queue_size() == 8
        assert max_line_bytes() == 128
        assert checkpoint_every() == 0  # 0 disables

    def test_overrides_beat_env(self, monkeypatch):
        monkeypatch.setenv(QUEUE_ENV, "8")
        assert queue_size(32) == 32

    def test_bad_env_values_rejected(self, monkeypatch):
        monkeypatch.setenv(QUEUE_ENV, "many")
        with pytest.raises(ValueError, match="must be an integer"):
            queue_size()
        monkeypatch.setenv(QUEUE_ENV, "0")
        with pytest.raises(ValueError, match=">= 1"):
            queue_size()

    def test_bad_overrides_rejected(self):
        with pytest.raises(ValueError):
            queue_size(0)
        with pytest.raises(ValueError):
            max_line_bytes(32)  # below the 64-byte floor
        with pytest.raises(ValueError):
            checkpoint_every(-1)


class TestRecords:
    def test_encode_record_compact_jsonl(self):
        line = encode_record({"kind": "start", "t": 1.0})
        assert line.endswith(b"\n")
        assert b" " not in line.strip()
        assert json.loads(line) == {"kind": "start", "t": 1.0}

    def test_error_record_shape(self):
        rec = error_record("boom", tenant="t1", op="job")
        assert rec == {
            "kind": "serve.error", "error": "boom", "tenant": "t1",
            "op": "job",
        }
        assert "tenant" not in error_record("boom")
