"""Property-based tests (hypothesis) for the interval algebra and core
data structures."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import Interval, IntervalUnion, union_measure
from repro.core.metrics import concurrency_profile

finite = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
lengths = st.floats(
    min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False
)


@st.composite
def interval_lists(draw, max_size=30):
    n = draw(st.integers(min_value=0, max_value=max_size))
    starts = [draw(finite) for _ in range(n)]
    lens = [draw(lengths) for _ in range(n)]
    return starts, lens


class TestUnionMeasureProperties:
    @given(interval_lists())
    def test_matches_object_union(self, data):
        starts, lens = data
        expected = IntervalUnion.from_starts_lengths(starts, lens).measure
        assert abs(union_measure(starts, lens) - expected) <= 1e-6 * max(
            1.0, expected
        )

    @given(interval_lists())
    def test_bounded_by_sum_and_max(self, data):
        starts, lens = data
        m = union_measure(starts, lens)
        assert m <= sum(lens) + 1e-9
        assert m >= (max(lens) if lens else 0.0) - 1e-9

    @given(interval_lists())
    def test_permutation_invariant(self, data):
        starts, lens = data
        m1 = union_measure(starts, lens)
        order = np.argsort(lens, kind="stable")
        m2 = union_measure(np.asarray(starts)[order], np.asarray(lens)[order])
        assert abs(m1 - m2) <= 1e-9 * max(1.0, m1)

    @given(interval_lists(), finite)
    def test_translation_invariant(self, data, shift):
        starts, lens = data
        m1 = union_measure(starts, lens)
        m2 = union_measure([s + shift for s in starts], lens)
        assert abs(m1 - m2) <= 1e-6 * max(1.0, m1)

    @given(interval_lists(max_size=15), interval_lists(max_size=15))
    def test_subadditive(self, a, b):
        sa, la = a
        sb, lb = b
        combined = union_measure(list(sa) + list(sb), list(la) + list(lb))
        assert combined <= union_measure(sa, la) + union_measure(sb, lb) + 1e-6

    @given(interval_lists(max_size=15), interval_lists(max_size=15))
    def test_monotone(self, a, b):
        sa, la = a
        sb, lb = b
        combined = union_measure(list(sa) + list(sb), list(la) + list(lb))
        assert combined >= union_measure(sa, la) - 1e-9


class TestIntervalUnionProperties:
    @given(interval_lists(max_size=20))
    def test_components_disjoint_sorted_nonabutting(self, data):
        starts, lens = data
        union = IntervalUnion.from_starts_lengths(starts, lens)
        comps = union.components
        for c in comps:
            assert c.length > 0
        for a, b in zip(comps, comps[1:]):
            assert a.right < b.left  # strictly separated

    @given(interval_lists(max_size=20))
    def test_idempotent(self, data):
        starts, lens = data
        u = IntervalUnion.from_starts_lengths(starts, lens)
        assert u.union(u) == u

    @given(interval_lists(max_size=20), finite, lengths)
    def test_added_measure_consistent(self, data, s, p):
        starts, lens = data
        union = IntervalUnion.from_starts_lengths(starts, lens)
        iv = Interval(s, s + p)
        grown = union.insert(iv)
        added = union.added_measure(iv)
        assert abs((union.measure + added) - grown.measure) <= 1e-6 * max(
            1.0, grown.measure
        )

    @given(interval_lists(max_size=20))
    def test_gaps_complement(self, data):
        starts, lens = data
        union = IntervalUnion.from_starts_lengths(starts, lens)
        if union.empty:
            return
        gap_total = sum(g.length for g in union.gaps())
        hull = union.right - union.left
        assert abs(hull - union.measure - gap_total) <= 1e-6 * max(1.0, hull)


class TestConcurrencyProperties:
    @given(interval_lists(max_size=25))
    @settings(max_examples=50)
    def test_integral_of_concurrency_equals_work(self, data):
        """∫ concurrency dt = Σ lengths (work conservation)."""
        starts, lens = data
        prof = concurrency_profile(starts, lens)
        if prof.times.size < 2:
            # Only possible when every interval's width underflows to a
            # point (length 0 or start + length == start in floats).
            assert sum(lens) <= 1e-6
            return
        widths = np.diff(prof.times)
        integral = float((widths * prof.counts[:-1]).sum())
        assert abs(integral - sum(lens)) <= 1e-6 * max(1.0, sum(lens))

    @given(interval_lists(max_size=25))
    @settings(max_examples=50)
    def test_span_is_time_at_least_one(self, data):
        starts, lens = data
        prof = concurrency_profile(starts, lens)
        assert abs(prof.time_at_least(1) - union_measure(starts, lens)) <= 1e-6 * max(
            1.0, sum(lens) + 1.0
        )
