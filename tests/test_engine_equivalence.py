"""Columnar-vs-object engine equivalence: the cores must be twins.

The object core (`repro.core.engine.Simulator._run_object`) defines the
semantics; the columnar core (`repro.core.columnar.ColumnarCore`) is the
struct-of-arrays hot path that must reproduce it **bit-for-bit**: every
trace record, every start time, the span, the event count, the audit
verdict, every `repro.obs` record and metric, and — on illegal inputs —
the same exception type and message, raised by the same job.

Every test here runs the same (scheduler, workload) pair through both
cores and diffs the observable output.  Coverage spans all five paper
schedulers (vectorised batch family *and* scalar-path CDB/Profit), the
uninstrumented eager/lazy baselines, static E2-style instances, the §3.1
adversarial E1 construction (the ASSIGN-cohort / inline-completion
shape), strict mode, armed recorders, and the 0-job / 1-job edge cases.
"""

from __future__ import annotations

import pytest

from repro.adversaries import (
    ClairvoyantLowerBoundAdversary,
    NonClairvoyantLowerBoundAdversary,
    batch_tightness_instance,
    geometric_profile,
)
from repro.core import Simulator, simulate
from repro.core.audit import audit
from repro.core.errors import SchedulingViolationError, SimulationError
from repro.core.job import Instance
from repro.obs import TraceRecorder, explain_trace
from repro.schedulers import make_scheduler
from repro.workloads import WorkloadSpec, generate

#: The five instrumented paper schedulers (ISSUE 6 acceptance set).
PAPER = ["batch", "batch+", "cdb", "profit", "epoch-batch"]
#: Schedulers that keep the scalar path (live per-job hooks).
SCALAR_BASELINES = ["eager", "lazy"]
#: Non-clairvoyant subset, eligible for the §3.1 adversary.
NONCLAIRVOYANT = ["batch", "batch+", "epoch-batch"]

CORES = ["object", "columnar"]


def e2_style_instance(n: int = 30, seed: int = 3) -> Instance:
    """Seeded synthetic workload with deadline cohorts (E2 flavour)."""
    return generate(
        WorkloadSpec(n=n, laxity_scale=2.0, length_high=10.0), seed=seed
    )


def run_core(name: str, core: str, instance: Instance, **kwargs):
    sched = make_scheduler(name)
    return simulate(
        sched,
        instance,
        clairvoyant=type(sched).requires_clairvoyance,
        trace=True,
        core=core,
        **kwargs,
    )


def trace_rows(result) -> list[tuple]:
    return [
        (r.time, r.kind.value, r.job_id, r.detail) for r in result.trace
    ]


def assert_results_identical(a, b, *, check_audit: bool = True) -> None:
    """Event-for-event, start-for-start, audit-for-audit equality."""
    assert trace_rows(a) == trace_rows(b)
    assert a.events_processed == b.events_processed
    assert a.span == b.span
    assert a.schedule.starts() == b.schedule.starts()
    assert [
        (j.id, j.arrival, j.deadline, j.length, j.size) for j in a.instance
    ] == [
        (j.id, j.arrival, j.deadline, j.length, j.size) for j in b.instance
    ]
    if check_audit:
        ra = audit(a.instance, a.schedule.starts())
        rb = audit(b.instance, b.schedule.starts())
        assert ra.feasible == rb.feasible
        assert ra.render() == rb.render()


# ---------------------------------------------------------------------------
# Static workloads: all seven schedulers, E2-style + tightness families
# ---------------------------------------------------------------------------


class TestStaticEquivalence:
    @pytest.mark.parametrize("name", PAPER + SCALAR_BASELINES)
    @pytest.mark.parametrize("seed", [0, 3])
    def test_synthetic_workload_bit_identical(self, name, seed):
        inst = e2_style_instance(seed=seed)
        a = run_core(name, "object", inst)
        b = run_core(name, "columnar", inst)
        assert_results_identical(a, b)

    @pytest.mark.parametrize("name", ["batch", "batch+"])
    @pytest.mark.parametrize("m", [1, 8])
    def test_e2_tightness_family_bit_identical(self, name, m):
        fam = batch_tightness_instance(m=m, mu=5.0)
        a = run_core(name, "object", fam.instance)
        b = run_core(name, "columnar", fam.instance)
        assert_results_identical(a, b)
        # the forced ratio (the E2 table entry) is identical too
        assert a.span / fam.optimal_span == b.span / fam.optimal_span


# ---------------------------------------------------------------------------
# Adversarial workloads: the §3.1 E1 construction and the §4.1 Profit one
# ---------------------------------------------------------------------------


class TestAdversarialEquivalence:
    @pytest.mark.parametrize("name", NONCLAIRVOYANT)
    @pytest.mark.parametrize("k", [1, 2])
    def test_e1_paper_adversary_bit_identical(self, name, k):
        """The ASSIGN-cohort + inline same-time-completion shape."""
        results = {}
        for core in CORES:
            adv = NonClairvoyantLowerBoundAdversary(
                5.0, geometric_profile(k, 6)
            )
            results[core] = simulate(
                make_scheduler(name),
                adversary=adv,
                clairvoyant=False,
                trace=True,
                core=core,
            )
        assert_results_identical(
            results["object"], results["columnar"], check_audit=False
        )

    def test_e4_clairvoyant_adversary_bit_identical(self):
        results = {}
        for core in CORES:
            adv = ClairvoyantLowerBoundAdversary(8)
            results[core] = simulate(
                make_scheduler("profit"),
                adversary=adv,
                clairvoyant=True,
                trace=True,
                core=core,
            )
        assert_results_identical(
            results["object"], results["columnar"], check_audit=False
        )


# ---------------------------------------------------------------------------
# Observability: armed recorders, decision records, explain --strict parity
# ---------------------------------------------------------------------------


def record_shape(rec: TraceRecorder) -> list[tuple]:
    """Records minus wall-clock attrs (the only nondeterministic field)."""
    return [
        (
            r.kind,
            r.name,
            {k: v for k, v in r.attrs.items() if k != "wall_s"},
        )
        for r in rec.records
    ]


class TestObsEquivalence:
    @pytest.mark.parametrize("name", PAPER)
    def test_armed_recorder_records_and_metrics_identical(self, name):
        inst = e2_style_instance()
        recs = {}
        for core in CORES:
            rec = TraceRecorder()
            run_core(name, core, inst, recorder=rec)
            recs[core] = rec
        a, b = recs["object"], recs["columnar"]
        assert record_shape(a) == record_shape(b)
        assert a.metrics.counters == b.metrics.counters
        assert a.metrics.gauges == b.metrics.gauges

    @pytest.mark.parametrize("name", PAPER)
    def test_explain_attributes_every_start_on_both_cores(self, name):
        """`repro obs explain --strict` parity: same stories, same rules."""
        inst = e2_style_instance()
        stories = {}
        for core in CORES:
            rec = TraceRecorder()
            run_core(name, core, inst, recorder=rec)
            explanation = explain_trace(rec)
            assert explanation.fully_attributed, (
                f"{name}/{core}: {explanation.unattributed} unattributed"
            )
            assert explanation.audit_feasible is True
            stories[core] = [
                (s.job_id, s.start, s.start_rule)
                for s in explanation.stories
            ]
        assert stories["object"] == stories["columnar"]


# ---------------------------------------------------------------------------
# Strict mode: the ClairvoyanceGuard must behave identically on both cores
# ---------------------------------------------------------------------------


class TestStrictEquivalence:
    @pytest.mark.parametrize("name", NONCLAIRVOYANT)
    def test_strict_static_runs_identical(self, name):
        inst = e2_style_instance()
        a = run_core(name, "object", inst, strict=True)
        b = run_core(name, "columnar", inst, strict=True)
        assert_results_identical(a, b)

    @pytest.mark.parametrize("name", NONCLAIRVOYANT)
    def test_repro_strict_env_runs_identical(self, name, monkeypatch):
        monkeypatch.setenv("REPRO_STRICT", "1")
        inst = e2_style_instance()
        a = run_core(name, "object", inst)
        b = run_core(name, "columnar", inst)
        assert_results_identical(a, b)

    def test_strict_adversarial_run_identical(self):
        results = {}
        for core in CORES:
            adv = NonClairvoyantLowerBoundAdversary(
                5.0, geometric_profile(1, 4)
            )
            results[core] = simulate(
                make_scheduler("batch"),
                adversary=adv,
                clairvoyant=False,
                strict=True,
                trace=True,
                core=core,
            )
        assert_results_identical(
            results["object"], results["columnar"], check_audit=False
        )


# ---------------------------------------------------------------------------
# Edge cases: 0 jobs and 1 job (the GridResult-style degenerate instances)
# ---------------------------------------------------------------------------


class TestDegenerateInstances:
    @pytest.mark.parametrize("name", PAPER + SCALAR_BASELINES)
    def test_empty_instance_identical(self, name):
        inst = Instance.from_triples([], name="empty")
        a = run_core(name, "object", inst)
        b = run_core(name, "columnar", inst)
        assert_results_identical(a, b)
        assert b.span == 0.0
        assert b.events_processed == 0
        assert b.schedule.starts() == {}

    @pytest.mark.parametrize("name", PAPER + SCALAR_BASELINES)
    def test_single_job_instance_identical(self, name):
        inst = Instance.from_triples([(0.0, 2.0, 1.5)], name="single")
        a = run_core(name, "object", inst)
        b = run_core(name, "columnar", inst)
        assert_results_identical(a, b)
        assert set(b.schedule.starts()) == {0}

    def test_empty_instance_metrics_identical(self, name="batch"):
        inst = Instance.from_triples([], name="empty")
        recs = {}
        for core in CORES:
            rec = TraceRecorder()
            run_core(name, core, inst, recorder=rec)
            recs[core] = rec
        assert record_shape(recs["object"]) == record_shape(recs["columnar"])
        assert (
            recs["object"].metrics.counters
            == recs["columnar"].metrics.counters
        )


# ---------------------------------------------------------------------------
# Error parity: illegal schedules must fail identically on both cores
# ---------------------------------------------------------------------------


class _StartsUnknownJob:
    """Starts a job id that was never admitted (batch route)."""

    name = "starts-unknown"
    requires_clairvoyance = False

    def on_deadline(self, ctx, job):
        ctx.start_batch([job.id, 10_000])

    def reset(self):
        pass


class _StartsTwice:
    name = "starts-twice"
    requires_clairvoyance = False

    def on_deadline(self, ctx, job):
        ctx.start_batch([job.id, job.id])

    def reset(self):
        pass


class TestErrorParity:
    @pytest.mark.parametrize(
        "scheduler_cls", [_StartsUnknownJob, _StartsTwice]
    )
    def test_violations_raise_identically(self, scheduler_cls):
        inst = Instance.from_triples([(0.0, 1.0, 1.0), (0.0, 1.0, 2.0)])
        errors = {}
        for core in CORES:
            with pytest.raises(SchedulingViolationError) as exc:
                simulate(scheduler_cls(), inst, core=core)
            errors[core] = str(exc.value)
        assert errors["object"] == errors["columnar"]


# ---------------------------------------------------------------------------
# Core selection plumbing
# ---------------------------------------------------------------------------


class TestCoreSelection:
    def test_env_var_selects_object_core(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_CORE", "object")
        sim = Simulator(
            make_scheduler("batch"),
            instance=Instance.from_triples([(0.0, 1.0, 1.0)]),
        )
        assert sim._core == "object"

    def test_explicit_core_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_CORE", "object")
        sim = Simulator(
            make_scheduler("batch"),
            instance=Instance.from_triples([(0.0, 1.0, 1.0)]),
            core="columnar",
        )
        assert sim._core == "columnar"

    def test_unknown_core_rejected(self):
        with pytest.raises(SimulationError, match="unknown engine core"):
            Simulator(
                make_scheduler("batch"),
                instance=Instance.from_triples([(0.0, 1.0, 1.0)]),
                core="vectorised",
            )

    def test_default_is_columnar(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE_CORE", raising=False)
        sim = Simulator(
            make_scheduler("batch"),
            instance=Instance.from_triples([(0.0, 1.0, 1.0)]),
        )
        assert sim._core == "columnar"
