"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core import Instance


@pytest.fixture
def simple_instance() -> Instance:
    """Four jobs mixing laxity, overlap potential and lengths (μ = 3)."""
    return Instance.from_triples(
        [
            (0, 5, 2),  # J0: a=0 d=5  p=2
            (1, 4, 3),  # J1: a=1 d=5  p=3
            (2, 0, 1),  # J2: a=2 d=2  p=1 (rigid)
            (6, 3, 2),  # J3: a=6 d=9  p=2
        ],
        name="simple",
    )


@pytest.fixture
def serial_instance() -> Instance:
    """Jobs that can never overlap: each arrives after the previous one's
    latest completion."""
    return Instance.from_triples(
        [(0, 1, 2), (4, 1, 2), (8, 1, 2)], name="serial"
    )


@pytest.fixture
def batchable_instance() -> Instance:
    """Jobs that can all be started together at t=4 (common window point)."""
    return Instance.from_triples(
        [(0, 4, 3), (1, 4, 2), (2, 4, 3), (3, 4, 1)], name="batchable"
    )


def feasible(schedule) -> bool:
    """Whether every start lies within its job's window (bool helper)."""
    try:
        schedule.validate()
        return True
    except Exception:
        return False
