"""Unit + property tests for the theorem-verification harness."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import verify_theorems
from repro.core import Instance, Job
from repro.workloads import poisson_instance, small_integral_instance


class TestVerifyTheorems:
    def test_empty_instance(self):
        report = verify_theorems(Instance([]))
        assert report.all_passed and report.checks == ()

    @pytest.mark.parametrize("seed", range(8))
    def test_all_checks_pass_on_random_instances(self, seed):
        inst = small_integral_instance(7, seed=seed)
        report = verify_theorems(inst)
        assert report.all_passed, report.render()
        assert {c.name for c in report.checks} == {
            "batch-upper",
            "batch-flag-chain",
            "batchplus-tight",
            "cdb-bound",
            "profit-bound",
            "profit-overlap",
            "lemma-4.6",
            "lemma-4.7",
            "lb-sound",
        }

    def test_passes_on_nonintegral_instances(self):
        inst = poisson_instance(20, seed=4)
        assert verify_theorems(inst).all_passed

    def test_custom_parameters(self):
        inst = small_integral_instance(6, seed=2)
        report = verify_theorems(inst, alpha=2.5, k=2.0)
        assert report.all_passed

    def test_render_mentions_checks(self):
        inst = small_integral_instance(5, seed=0)
        out = verify_theorems(inst).render()
        assert "batchplus-tight" in out and "lemma-4.7" in out

    @given(st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10),
            st.integers(min_value=0, max_value=4),
            st.integers(min_value=1, max_value=4),
        ),
        min_size=1,
        max_size=7,
    ))
    @settings(max_examples=20, deadline=None)
    def test_property_all_theorems_hold(self, triples):
        jobs = [
            Job(i, float(a), float(a + lax), float(p))
            for i, (a, lax, p) in enumerate(triples)
        ]
        report = verify_theorems(Instance(jobs, name="hyp"))
        assert report.all_passed, report.render()


class TestCliVerify:
    def test_cli_verify_passes(self, capsys):
        from repro.cli import main

        assert main(["verify", "--jobs", "6", "--instances", "2"]) == 0
        out = capsys.readouterr().out
        assert "all theorems verified" in out

    def test_cli_verify_saved_instance(self, capsys, tmp_path):
        from repro.cli import main

        path = str(tmp_path / "w.json")
        assert main(["workload", path, "--jobs", "7", "--integral"]) == 0
        assert main(["verify", "--instance", path]) == 0
