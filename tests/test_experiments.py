"""Unit tests for the interactive experiment runners."""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENTS, experiment_ids, run_experiment


class TestRunners:
    def test_ids_sorted_numerically(self):
        ids = experiment_ids()
        nums = [int(e[1:]) for e in ids]
        assert nums == sorted(nums)

    @pytest.mark.parametrize("exp_id", sorted(EXPERIMENTS))
    def test_every_runner_produces_a_table(self, exp_id):
        out = run_experiment(exp_id, quick=True)
        assert exp_id in out
        assert "|" in out  # rendered table

    def test_case_insensitive(self):
        assert "E4" in run_experiment("e4")

    def test_unknown_id(self):
        with pytest.raises(KeyError, match="E1"):
            run_experiment("E99")

    def test_e4_matches_theory_exactly(self):
        """The quick E4 runner reproduces the closed form in its table."""
        out = run_experiment("E4")
        # at n=2 the forced ratio is 2φ/(φ+1) = 1.23607
        assert out.count("1.23607") >= 2  # measured and theory columns agree

    def test_e2_monotone(self):
        out = run_experiment("E2")
        ratios = [
            float(line.split("|")[1])
            for line in out.splitlines()
            if line.strip() and line.lstrip()[0].isdigit()
        ]
        assert ratios == sorted(ratios)


class TestCliIntegration:
    def test_cli_experiment(self, capsys):
        from repro.cli import main

        assert main(["experiment", "E3"]) == 0
        assert "Batch+ tightness" in capsys.readouterr().out

    def test_cli_unknown_experiment(self, capsys):
        from repro.cli import main

        assert main(["experiment", "E42"]) == 2
        assert "available" in capsys.readouterr().err
