"""Tests for the parallel sweep engine (``repro.perf.parallel``).

The load-bearing property is *bit-identical determinism*: for the same
seeds, a parallel `run_grid`/Monte-Carlo run must produce exactly the
results of the serial run — same values, same order — whether the
process pool engaged or the runner degraded to serial.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis import estimate_expected_ratio
from repro.offline import span_lower_bound
from repro.perf import (
    WORKERS_ENV,
    ParallelRunner,
    chunked,
    derive_seed,
    get_default_runner,
    resolve_workers,
)
from repro.schedulers import Batch, BatchPlus, Eager, Profit, RandomStart
from repro.workloads import WorkloadSpec, generate, run_grid


class TestResolveWorkers:
    def test_none_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 1

    def test_none_reads_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers(None) == 3

    def test_auto_and_zero_mean_all_cores(self):
        assert resolve_workers("auto") >= 1
        assert resolve_workers(0) == resolve_workers("auto")

    def test_invalid_specs_raise(self):
        with pytest.raises(ValueError):
            resolve_workers("many")
        with pytest.raises(ValueError):
            resolve_workers(-2)


class TestSeedsAndChunks:
    def test_derive_seed_is_stable_and_spread(self):
        a = derive_seed(0, 0)
        assert a == derive_seed(0, 0)  # deterministic
        seeds = {derive_seed(0, i) for i in range(100)}
        seeds |= {derive_seed(1, i) for i in range(100)}
        assert len(seeds) == 200  # no collisions across base seeds

    def test_chunked_partitions_preserving_order(self):
        assert chunked([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]
        assert chunked([], 3) == []
        with pytest.raises(ValueError):
            chunked([1], 0)


class TestParallelRunner:
    def test_serial_map_preserves_order(self):
        runner = ParallelRunner(workers=1)
        assert runner.map(math.sqrt, [4.0, 9.0, 16.0]) == [2.0, 3.0, 4.0]
        assert runner.last_stats.mode == "serial"

    def test_parallel_map_matches_serial(self):
        tasks = list(range(32))
        serial = ParallelRunner(workers=1).map(math.sqrt, tasks)
        parallel = ParallelRunner(workers=4).map(math.sqrt, tasks)
        assert parallel == serial  # bit-identical, in order

    def test_unpicklable_callable_degrades_to_serial(self):
        captured = 10
        runner = ParallelRunner(workers=4)
        out = runner.map(lambda x: x + captured, [1, 2, 3, 4, 5, 6])
        assert out == [11, 12, 13, 14, 15, 16]
        assert runner.last_stats.mode == "serial"
        assert "picklable" in runner.last_stats.reason

    def test_tiny_grids_stay_serial(self):
        runner = ParallelRunner(workers=4, min_parallel_tasks=8)
        assert runner.map(math.sqrt, [1.0, 4.0]) == [1.0, 2.0]
        assert runner.last_stats.mode == "serial"

    def test_starmap(self):
        runner = ParallelRunner(workers=1)
        assert runner.starmap(math.pow, [(2, 3), (3, 2)]) == [8.0, 9.0]

    def test_default_runner_honours_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "2")
        assert get_default_runner().workers == 2
        monkeypatch.delenv(WORKERS_ENV)
        assert get_default_runner().workers == 1


def _family(n_instances: int, n_jobs: int = 25) -> list:
    spec = WorkloadSpec(n=n_jobs, laxity_scale=2.0, length_high=8.0)
    return [generate(spec, seed=seed) for seed in range(n_instances)]


class TestRunGridEquivalence:
    def test_parallel_grid_bit_identical_to_serial(self):
        protos = [Eager(), Batch(), BatchPlus(), Profit()]
        instances = _family(5)
        serial = run_grid(protos, instances, span_lower_bound, workers=1)
        parallel = run_grid(protos, instances, span_lower_bound, workers=4)
        assert serial == parallel  # GridResult is frozen: full value equality
        assert [r.span for r in serial] == [r.span for r in parallel]

    def test_explicit_runner_is_used(self):
        runner = ParallelRunner(workers=1)
        results = run_grid([Eager()], _family(2), span_lower_bound, runner=runner)
        assert len(results) == 2
        assert runner.last_stats.tasks == 2  # the cell map went through it

    def test_env_worker_knob(self, monkeypatch):
        protos = [Eager(), Batch()]
        instances = _family(3)
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        serial = run_grid(protos, instances, span_lower_bound)
        monkeypatch.setenv(WORKERS_ENV, "2")
        parallel = run_grid(protos, instances, span_lower_bound)
        assert serial == parallel


class TestMonteCarloEquivalence:
    def test_parallel_trials_bit_identical_to_serial(self):
        inst = _family(1, n_jobs=30)[0]
        ref = span_lower_bound(inst)
        kwargs = dict(trials=12, clairvoyant=False)
        serial = estimate_expected_ratio(
            RandomStart, inst, ref, workers=1, **kwargs
        )
        parallel = estimate_expected_ratio(
            RandomStart, inst, ref, workers=4, **kwargs
        )
        assert serial.ratios == parallel.ratios  # tuple equality, exact
        assert serial.mean == parallel.mean

    def test_lambda_factory_still_works(self):
        # Unpicklable factory products would break a naive pool; the
        # schedulers themselves are picklable, so this parallelises —
        # and a closure task would degrade to serial. Either way the
        # values must match the serial run.
        inst = _family(1, n_jobs=20)[0]
        ref = span_lower_bound(inst)
        serial = estimate_expected_ratio(
            lambda s: RandomStart(seed=s), inst, ref, trials=6, workers=1
        )
        parallel = estimate_expected_ratio(
            lambda s: RandomStart(seed=s), inst, ref, trials=6, workers=3
        )
        assert serial.ratios == parallel.ratios


def _record_and_maybe_boom(task):
    """Top-level (picklable) worker: leaves one uniquely-named marker
    file per execution, so a re-run of any task is detectable."""
    import os
    import uuid
    from pathlib import Path

    directory, i = task
    marker_dir = Path(directory)
    marker_dir.mkdir(parents=True, exist_ok=True)
    (marker_dir / f"{i}-{os.getpid()}-{uuid.uuid4().hex}").touch()
    if i == 5:
        raise ValueError(f"task {i} exploded")
    return i * 2


class TestWorkerExceptionPropagation:
    """Regressions for the narrowed pool-failure fallback: a *task*
    exception must propagate — not trigger a silent serial re-run that
    executes every side effect twice."""

    def test_task_exception_propagates_from_pool(self, tmp_path):
        tasks = [(str(tmp_path), i) for i in range(8)]
        runner = ParallelRunner(workers=2)
        with pytest.raises(ValueError, match="task 5 exploded"):
            runner.map(_record_and_maybe_boom, tasks)

    def test_no_task_executes_twice_after_worker_failure(self, tmp_path):
        tasks = [(str(tmp_path), i) for i in range(8)]
        runner = ParallelRunner(workers=2)
        with pytest.raises(ValueError):
            runner.map(_record_and_maybe_boom, tasks)
        executed = [p.name.split("-")[0] for p in tmp_path.iterdir()]
        assert executed.count("5") == 1  # the failing task ran exactly once
        for i in range(8):
            assert executed.count(str(i)) <= 1, f"task {i} re-ran"

    def test_task_exception_propagates_serially_too(self, tmp_path):
        tasks = [(str(tmp_path), i) for i in range(8)]
        runner = ParallelRunner(workers=1)
        with pytest.raises(ValueError, match="task 5 exploded"):
            runner.map(_record_and_maybe_boom, tasks)

    def test_pool_infrastructure_failure_still_degrades_to_serial(
        self, tmp_path, monkeypatch
    ):
        from concurrent.futures import BrokenExecutor

        runner = ParallelRunner(workers=2)

        def refuse(fn, chunks, workers):
            raise BrokenExecutor("host refuses to spawn processes")

        monkeypatch.setattr(runner, "_pool_map", refuse)
        tasks = [(str(tmp_path), i) for i in range(8) if i != 5]
        result = runner.map(_record_and_maybe_boom, tasks)
        assert result == [i * 2 for i in range(8) if i != 5]
        assert runner.last_stats.mode == "serial"
