"""Unit tests for the closed-form theory bounds."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    CLAIRVOYANT_LOWER_BOUND,
    batch_lower_bound,
    batch_upper_bound,
    batchplus_ratio,
    cdb_ratio,
    clairvoyant_adversary_ratio,
    nonclairvoyant_lower_bound,
    optimal_cdb_alpha,
    optimal_cdb_ratio,
    optimal_profit_k,
    optimal_profit_ratio,
    profit_ratio,
)


class TestConstants:
    def test_phi(self):
        assert CLAIRVOYANT_LOWER_BOUND == pytest.approx((1 + math.sqrt(5)) / 2)
        # φ satisfies φ² = φ + 1
        phi = CLAIRVOYANT_LOWER_BOUND
        assert phi * phi == pytest.approx(phi + 1)

    def test_optimal_cdb(self):
        assert optimal_cdb_alpha() == pytest.approx(1 + math.sqrt(2 / 3))
        assert optimal_cdb_ratio() == pytest.approx(7 + 2 * math.sqrt(6))
        assert cdb_ratio(optimal_cdb_alpha()) == pytest.approx(optimal_cdb_ratio())

    def test_optimal_profit(self):
        assert optimal_profit_k() == pytest.approx(1 + math.sqrt(2) / 2)
        assert optimal_profit_ratio() == pytest.approx(4 + 2 * math.sqrt(2))
        assert profit_ratio(optimal_profit_k()) == pytest.approx(
            optimal_profit_ratio()
        )


class TestBatchBounds:
    def test_values(self):
        assert batch_upper_bound(3.0) == 7.0
        assert batch_lower_bound(3.0) == 6.0
        assert batchplus_ratio(3.0) == 4.0

    def test_ordering(self):
        """Batch+ dominates Batch for every μ > 1."""
        for mu in (1.5, 2.0, 10.0, 100.0):
            assert batchplus_ratio(mu) < batch_lower_bound(mu)

    def test_invalid_mu(self):
        with pytest.raises(ValueError):
            batch_upper_bound(0.5)
        with pytest.raises(ValueError):
            batchplus_ratio(0.0)


class TestParametricBounds:
    def test_cdb_convex_around_optimum(self):
        a = optimal_cdb_alpha()
        assert cdb_ratio(a) < cdb_ratio(a - 0.2)
        assert cdb_ratio(a) < cdb_ratio(a + 0.2)

    def test_profit_convex_around_optimum(self):
        k = optimal_profit_k()
        assert profit_ratio(k) < profit_ratio(k - 0.1)
        assert profit_ratio(k) < profit_ratio(k + 0.1)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            cdb_ratio(1.0)
        with pytest.raises(ValueError):
            profit_ratio(1.0)


class TestAdversaryFormulas:
    def test_clairvoyant_ratio_approaches_phi(self):
        assert clairvoyant_adversary_ratio(1) == pytest.approx(
            CLAIRVOYANT_LOWER_BOUND / CLAIRVOYANT_LOWER_BOUND * 1.0
        )
        vals = [clairvoyant_adversary_ratio(n) for n in (1, 5, 50, 5000)]
        assert all(b >= a for a, b in zip(vals, vals[1:]))
        assert vals[-1] == pytest.approx(CLAIRVOYANT_LOWER_BOUND, rel=1e-3)
        with pytest.raises(ValueError):
            clairvoyant_adversary_ratio(0)

    def test_nonclairvoyant_paper_counts(self):
        """With doubly-exponential counts the final branch binds."""
        mu = 5.0
        for k in (1, 2, 3):
            assert nonclairvoyant_lower_bound(k, mu) == pytest.approx(
                (k * mu + 1) / (mu + k)
            )

    def test_nonclairvoyant_approaches_mu(self):
        mu = 7.0
        vals = [nonclairvoyant_lower_bound(k, mu) for k in (1, 10, 100, 10_000)]
        assert all(b >= a for a, b in zip(vals, vals[1:]))
        assert vals[-1] == pytest.approx(mu, rel=1e-2)

    def test_nonclairvoyant_explicit_counts(self):
        # with tiny counts the middle branch ((i-1)μ + √N_i)/(μ+i-1)
        # binds: i=2 gives (10 + 2)/11.
        assert nonclairvoyant_lower_bound(2, 10.0, [4, 4]) == pytest.approx(12 / 11)

    def test_nonclairvoyant_validation(self):
        with pytest.raises(ValueError):
            nonclairvoyant_lower_bound(0, 2.0)
        with pytest.raises(ValueError):
            nonclairvoyant_lower_bound(2, 2.0, [4])
