"""Failure injection: the engine must catch every class of misbehaviour.

A simulation that silently produces an infeasible schedule would poison
every measurement downstream, so these tests systematically inject buggy
schedulers and malicious adversaries and assert that the engine fails
*loudly* with the right exception — never with a corrupted result.
"""

from __future__ import annotations

import pytest

from repro.adversaries import BaseAdversary
from repro.core import (
    DeadlineMissedError,
    Instance,
    Job,
    SchedulingViolationError,
    SimulationError,
    simulate,
)
from repro.core.engine import AdversaryResponse
from repro.schedulers import Eager, OnlineScheduler


@pytest.fixture
def inst():
    return Instance.from_triples([(0, 3, 2), (1, 4, 1)], name="fi")


class TestBuggySchedulers:
    def test_never_starts(self, inst):
        class Sleeper(OnlineScheduler):
            pass

        with pytest.raises(DeadlineMissedError):
            simulate(Sleeper(), inst)

    def test_starts_only_some_jobs(self, inst):
        class Partial(OnlineScheduler):
            def on_arrival(self, ctx, job):
                if job.id == 0:
                    ctx.start(job.id)

        with pytest.raises(DeadlineMissedError):
            simulate(Partial(), inst)

    def test_deadline_handler_starts_wrong_job(self, inst):
        class WrongJob(OnlineScheduler):
            def on_deadline(self, ctx, job):
                other = [p for p in ctx.pending() if p.id != job.id]
                if other:
                    ctx.start(other[0].id)
                # leaves ``job`` unstarted at its own deadline

        with pytest.raises(DeadlineMissedError):
            simulate(WrongJob(), inst)

    def test_double_start_in_different_hooks(self, inst):
        class DoubleStarter(OnlineScheduler):
            def on_arrival(self, ctx, job):
                ctx.start(job.id)

            def on_completion(self, ctx, job):
                ctx.start(job.id)  # restart a finished job

        with pytest.raises(SchedulingViolationError):
            simulate(DoubleStarter(), inst)

    def test_start_before_arrival_via_ghost_id(self, inst):
        class Psychic(OnlineScheduler):
            def on_arrival(self, ctx, job):
                ctx.start(job.id)
                if job.id == 0:
                    ctx.start(1)  # job 1 arrives only at t=1

        with pytest.raises(SchedulingViolationError):
            simulate(Psychic(), inst)

    def test_timer_in_past(self, inst):
        class TimeTraveller(OnlineScheduler):
            def on_arrival(self, ctx, job):
                ctx.start(job.id)
                ctx.set_timer(ctx.now - 5.0)

        with pytest.raises(SchedulingViolationError):
            simulate(TimeTraveller(), inst)

    def test_exception_in_hook_propagates(self, inst):
        class Crasher(OnlineScheduler):
            def on_arrival(self, ctx, job):
                raise RuntimeError("scheduler bug")

        with pytest.raises(RuntimeError, match="scheduler bug"):
            simulate(Crasher(), inst)

    def test_livelock_caught_by_event_budget(self, inst):
        class Spinner(OnlineScheduler):
            def on_arrival(self, ctx, job):
                ctx.start(job.id)
                ctx.set_timer(ctx.now, "spin")

            def on_timer(self, ctx, tag):
                ctx.set_timer(ctx.now, tag)

        with pytest.raises(SimulationError, match="budget"):
            simulate(Spinner(), inst, max_events=500)


class TestMaliciousAdversaries:
    def test_duplicate_job_ids(self):
        class Duplicator(BaseAdversary):
            def initial_jobs(self):
                return [Job(0, 0.0, 1.0, 1.0), Job(0, 0.0, 2.0, 1.0)]

        with pytest.raises(SimulationError, match="duplicate"):
            simulate(Eager(), adversary=Duplicator(), clairvoyant=False)

    def test_release_in_past(self):
        class Retroactive(BaseAdversary):
            def initial_jobs(self):
                return [Job(0, 5.0, 6.0, 1.0)]

            def on_start(self, job, t):
                return AdversaryResponse(release=(Job(1, 0.0, 10.0, 1.0),))

        with pytest.raises(SimulationError, match="past"):
            simulate(Eager(), adversary=Retroactive(), clairvoyant=False)

    def test_wakeup_in_past(self):
        class SleepyRetro(BaseAdversary):
            def initial_jobs(self):
                return [Job(0, 1.0, 2.0, 1.0)]

            def on_start(self, job, t):
                return AdversaryResponse(wakeup=t - 1.0)

        with pytest.raises(SimulationError, match="past"):
            simulate(Eager(), adversary=SleepyRetro(), clairvoyant=False)

    def test_negative_length_assignment(self):
        class NegativeLength(BaseAdversary):
            def initial_jobs(self):
                return [Job(0, 0.0, 2.0, None)]

            def assign_length(self, job, t):
                return -1.0

        with pytest.raises(SimulationError, match="non-positive"):
            simulate(Eager(), adversary=NegativeLength(), clairvoyant=False)

    def test_length_decision_before_start(self):
        class EarlyDecider(BaseAdversary):
            def initial_jobs(self):
                return [Job(0, 1.0, 2.0, None)]

            def length_decision_time(self, job, start):
                return start - 0.5

        with pytest.raises(SimulationError, match="decision time"):
            simulate(Eager(), adversary=EarlyDecider(), clairvoyant=False)

    def test_completion_in_past_rejected(self):
        """A length so small the completion would precede the assignment
        instant (numerically) is rejected."""

        class Instantaneous(BaseAdversary):
            def initial_jobs(self):
                return [Job(0, 0.0, 2.0, None)]

            def length_decision_time(self, job, start):
                return start + 2.0

            def assign_length(self, job, t):
                return 1.0  # completion at start+1 < now=start+2

        with pytest.raises(SimulationError, match="past"):
            simulate(Eager(), adversary=Instantaneous(), clairvoyant=False)


class TestResultIntegrityAfterStress:
    def test_heavy_same_time_cascade(self):
        """Hundreds of identical-time events must still produce a valid,
        deterministic schedule."""
        jobs = [Job(i, 1.0, 1.0, 1.0) for i in range(300)]
        inst = Instance(jobs, name="cascade")
        r1 = simulate(Eager(), inst)
        r2 = simulate(Eager(), inst)
        r1.schedule.validate()
        assert r1.schedule.starts() == r2.schedule.starts()
        assert r1.span == pytest.approx(1.0)

    def test_zero_laxity_storm_with_batch(self):
        from repro.schedulers import Batch

        jobs = [Job(i, float(i % 5), float(i % 5), 1.0 + (i % 3)) for i in range(100)]
        inst = Instance(jobs, name="storm")
        result = simulate(Batch(), inst)
        result.schedule.validate()
