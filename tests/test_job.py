"""Unit tests for the Job and Instance model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Instance,
    InvalidInstanceError,
    InvalidJobError,
    Job,
    make_jobs,
)


class TestJob:
    def test_basic_construction(self):
        j = Job(id=0, arrival=1.0, deadline=3.0, length=2.0)
        assert j.laxity == 2.0
        assert j.known_length == 2.0
        assert j.latest_completion == 5.0

    def test_negative_id_rejected(self):
        with pytest.raises(InvalidJobError):
            Job(id=-1, arrival=0, deadline=1, length=1)

    def test_negative_arrival_rejected(self):
        with pytest.raises(InvalidJobError):
            Job(id=0, arrival=-1, deadline=1, length=1)

    def test_deadline_before_arrival_rejected(self):
        with pytest.raises(InvalidJobError):
            Job(id=0, arrival=5, deadline=4, length=1)

    def test_nonpositive_length_rejected(self):
        with pytest.raises(InvalidJobError):
            Job(id=0, arrival=0, deadline=1, length=0)
        with pytest.raises(InvalidJobError):
            Job(id=0, arrival=0, deadline=1, length=-2)

    def test_infinite_values_rejected(self):
        with pytest.raises(InvalidJobError):
            Job(id=0, arrival=float("inf"), deadline=float("inf"), length=1)

    def test_adversary_controlled_length(self):
        j = Job(id=0, arrival=0, deadline=1, length=None)
        with pytest.raises(InvalidJobError):
            j.known_length
        assert j.with_length(3.0).known_length == 3.0

    def test_feasible_start_window_closed(self):
        j = Job(id=0, arrival=1, deadline=4, length=2)
        assert j.feasible_start(1.0)
        assert j.feasible_start(4.0)  # deadline itself is a legal start
        assert not j.feasible_start(0.999)
        assert not j.feasible_start(4.001)

    def test_active_interval(self):
        j = Job(id=0, arrival=0, deadline=5, length=2)
        iv = j.active_interval(3.0)
        assert (iv.left, iv.right) == (3.0, 5.0)

    def test_invalid_size_rejected(self):
        with pytest.raises(InvalidJobError):
            Job(id=0, arrival=0, deadline=1, length=1, size=0)


class TestMakeJobs:
    def test_sequential_ids_and_laxity(self):
        jobs = make_jobs([(0, 2, 1), (3, 0, 5)])
        assert [j.id for j in jobs] == [0, 1]
        assert jobs[0].deadline == 2.0
        assert jobs[1].deadline == 3.0

    def test_start_id(self):
        jobs = make_jobs([(0, 1, 1)], start_id=10)
        assert jobs[0].id == 10


class TestInstance:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Instance([Job(0, 0, 1, 1), Job(0, 0, 2, 1)])

    def test_container_protocol(self, simple_instance):
        assert len(simple_instance) == 4
        assert simple_instance[0].arrival == 0.0
        assert 2 in simple_instance
        assert 99 not in simple_instance
        with pytest.raises(KeyError):
            simple_instance[99]

    def test_mu(self, simple_instance):
        assert simple_instance.mu == 3.0

    def test_mu_empty_instance(self):
        assert Instance([]).mu == 1.0

    def test_total_work(self, simple_instance):
        assert simple_instance.total_work == 8.0

    def test_max_min_length(self, simple_instance):
        assert simple_instance.max_length == 3.0
        assert simple_instance.min_length == 1.0

    def test_horizon(self, simple_instance):
        # max over d + p: J1 has d=5, p=3 → 8; J3 has d=9, p=2 → 11
        assert simple_instance.horizon == 11.0

    def test_is_integral(self):
        assert Instance.from_triples([(0, 1, 2)]).is_integral
        assert not Instance.from_triples([(0, 1, 2.5)]).is_integral

    def test_unknown_lengths_flag(self):
        inst = Instance([Job(0, 0, 1, None)])
        assert inst.has_unknown_lengths
        with pytest.raises(InvalidInstanceError):
            inst.mu

    def test_sorted_views(self, simple_instance):
        by_arr = simple_instance.sorted_by_arrival()
        assert [j.arrival for j in by_arr] == sorted(j.arrival for j in by_arr)
        by_dl = simple_instance.sorted_by_deadline()
        assert [j.deadline for j in by_dl] == sorted(j.deadline for j in by_dl)

    def test_arrays(self, simple_instance):
        arrays = simple_instance.arrays()
        assert arrays["arrival"].dtype == np.float64
        assert list(arrays["id"]) == [0, 1, 2, 3]
        assert arrays["length"].sum() == 8.0

    def test_subset(self, simple_instance):
        sub = simple_instance.subset([0, 3])
        assert len(sub) == 2
        assert 1 not in sub

    def test_scaled(self, simple_instance):
        scaled = simple_instance.scaled(2.0)
        assert scaled[1].arrival == 2.0
        assert scaled[1].deadline == 10.0
        assert scaled[1].length == 6.0
        assert scaled.mu == simple_instance.mu

    def test_scaled_invalid_factor(self, simple_instance):
        with pytest.raises(InvalidInstanceError):
            simple_instance.scaled(0)

    def test_from_triples_name(self):
        inst = Instance.from_triples([(0, 1, 1)], name="x")
        assert inst.name == "x"
