"""Property-based tests for MinUsageTime DBP packing invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Instance, Job
from repro.dbp import (
    ClassifyByDurationFirstFit,
    FirstFit,
    run_pipeline,
    usage_lower_bound,
)
from repro.schedulers import BatchPlus, Eager


@st.composite
def sized_instances(draw, max_jobs=15):
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    jobs = []
    for i in range(n):
        a = draw(st.floats(min_value=0, max_value=20, allow_nan=False))
        lax = draw(st.floats(min_value=0, max_value=8, allow_nan=False))
        p = draw(st.floats(min_value=0.1, max_value=6, allow_nan=False))
        size = draw(st.floats(min_value=0.05, max_value=1.0, allow_nan=False))
        jobs.append(
            Job(
                id=i,
                arrival=float(a),
                deadline=float(a + lax),
                length=float(p),
                size=float(size),
            )
        )
    return Instance(jobs, name="hyp-sized")


def load_never_exceeds_capacity(bins, capacity) -> bool:
    """Replay each bin's items with a sweep and check the peak load."""
    for b in bins:
        events = []
        for it in b.items:
            events.append((it.start, it.size))
            events.append((it.end, -it.size))
        # departures (negative deltas) before same-time arrivals: half-open
        # intervals free capacity at the instant they end.
        events.sort(key=lambda e: (e[0], np.sign(e[1])))
        load = 0.0
        for _, delta in events:
            load += delta
            if load > capacity + 1e-9:
                return False
    return True


class TestPackingInvariants:
    @given(sized_instances(), st.sampled_from([1.0, 2.0, 4.0]))
    @settings(max_examples=30, deadline=None)
    def test_firstfit_capacity_invariant(self, inst, cap):
        result = run_pipeline(BatchPlus(), FirstFit(cap), inst)
        assert load_never_exceeds_capacity(result.bins, cap)

    @given(sized_instances(), st.sampled_from([1.0, 2.0]))
    @settings(max_examples=30, deadline=None)
    def test_cdff_capacity_invariant(self, inst, cap):
        result = run_pipeline(
            BatchPlus(), ClassifyByDurationFirstFit(cap), inst
        )
        assert load_never_exceeds_capacity(result.bins, cap)

    @given(sized_instances())
    @settings(max_examples=30, deadline=None)
    def test_every_job_assigned_exactly_once(self, inst):
        result = run_pipeline(Eager(), FirstFit(1.0), inst)
        assert set(result.assignments) == set(inst.job_ids)
        placed = [it.item_id for b in result.bins for it in b.items]
        assert sorted(placed) == sorted(inst.job_ids)

    @given(sized_instances(), st.sampled_from([1.0, 2.0, 8.0]))
    @settings(max_examples=30, deadline=None)
    def test_usage_bounds(self, inst, cap):
        """span <= usage <= Σ per-job durations, and usage >= certified LB."""
        result = run_pipeline(BatchPlus(), FirstFit(cap), inst)
        assert result.total_usage_time >= result.span - 1e-6
        assert result.total_usage_time <= inst.total_work + 1e-6
        assert result.total_usage_time >= usage_lower_bound(inst, cap) - 1e-6

    @given(sized_instances())
    @settings(max_examples=30, deadline=None)
    def test_firstfit_prefers_low_indices(self, inst):
        """First Fit never opens a bin when an earlier one had room: bin
        i+1's first item must not have fitted into any bin <= i at its
        placement instant.  We verify the weaker sound invariant that bin
        indices appear in first-use order."""
        result = run_pipeline(Eager(), FirstFit(1.0), inst)
        first_use = {}
        rows = sorted(
            result.schedule.rows(), key=lambda r: (r.start, r.job.id)
        )
        for row in rows:
            b = result.assignments[row.job.id]
            first_use.setdefault(b, len(first_use))
        assert all(b == order for b, order in first_use.items())
